//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors a minimal, dependency-free benchmark harness with
//! criterion's spelling: [`Criterion::bench_function`], `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros. It measures a
//! simple trimmed mean over adaptive batches — good enough for the
//! relative comparisons the benches here make (e.g. sequential vs
//! parallel enumeration), with none of upstream's statistics machinery.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, adaptively batching until enough samples exist.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 10_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        // Sample batches sized to ~5 ms each, for ~250 ms total.
        let batch = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 100_000) as u32;
        let deadline = Instant::now() + Duration::from_millis(250);
        while Instant::now() < deadline && self.samples.len() < 100 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch);
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let mid = sorted[sorted.len() / 2];
    let lo = sorted[sorted.len() / 10];
    let hi = sorted[sorted.len() - 1 - sorted.len() / 10];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_dur(lo),
        fmt_dur(mid),
        fmt_dur(hi)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, matching criterion's
/// plain-list form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes harness flags (e.g. `--test-threads`);
            // running benchmarks under the test runner is pointless, so
            // detect that and exit quickly after a smoke pass.
            let smoke = std::env::args().any(|a| a == "--test" || a.starts_with("--test-threads"));
            if smoke {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn fmt_spans_units() {
        assert!(fmt_dur(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_dur(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).contains('s'));
    }
}
