//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses.
//!
//! The build environment has no network access to a crates.io mirror, so
//! the workspace vendors a tiny, dependency-free implementation of the
//! exact API surface it consumes: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`Rng`] methods `gen_range` (over half-open integer ranges) and
//! `gen_bool`. The generator is xoshiro256++ seeded through SplitMix64 —
//! high-quality, deterministic, and reproducible across platforms, which
//! is all the seeded simulations and fuzz tests here require. It is NOT
//! the same stream as upstream `StdRng` (ChaCha12); nothing in this
//! workspace depends on the upstream stream, only on determinism per
//! seed.

use std::ops::Range;

/// A seedable random number generator (the subset this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling support for `Rng::gen_range` arguments. Generic over the
/// produced type (like upstream) so the element type can be inferred
/// from the call site's expected result, letting unsuffixed range
/// literals (`0..2`) take the surrounding integer type.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform draw in `[0, n)` without modulo bias (Lemire-style rejection).
fn below(rng: &mut dyn RngCore, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * n as u128) >> 64) as u64;
        let lo = x.wrapping_mul(n);
        if lo >= n || lo >= n.wrapping_neg() % n {
            return hi;
        }
    }
}

/// Types `gen_range` can produce. The single blanket
/// `SampleRange<T> for Range<T>` below (rather than per-type impls) is
/// what lets the compiler unify an unsuffixed range literal with the
/// call site's expected result type, exactly like upstream.
pub trait SampleUniform: Copy + PartialOrd {
    /// `self - lo` widened to u64 (two's complement for signed types).
    fn offset_from(self, lo: Self) -> u64;
    /// `self + off` (wrapping in the signed representation).
    fn offset_by(self, off: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn offset_from(self, lo: Self) -> u64 {
                (self as u64).wrapping_sub(lo as u64)
            }
            fn offset_by(self, off: u64) -> Self {
                self.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end.offset_from(self.start);
        self.start.offset_by(below(rng, span))
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // Compare 53 uniform bits against p; exact for p in {0, 1}.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(32..127u8);
            assert!((32..127).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }
}
