//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors a small, dependency-free property-testing harness
//! with the same spelling as upstream proptest for everything the test
//! suite touches: the [`Strategy`] trait with `prop_map`, range/tuple/
//! `Just`/bool/vec strategies, `prop_oneof!`, the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and
//! `prop_assert!`/`prop_assert_eq!`/[`TestCaseError`].
//!
//! Differences from upstream: no shrinking (failures report the raw
//! inputs) and a fixed deterministic seed per test function, so runs are
//! reproducible. Both are acceptable here: the suite's properties are
//! universally quantified, so any deterministic sample set is a valid
//! (if weaker) check, and CI reproducibility is what the workspace
//! actually relies on.

use std::rc::Rc;

/// Deterministic generator for test-case production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a fixed seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.pick(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn pick(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn pick(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].pick(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy, spelled like upstream
    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn pick(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A `Vec` of values from `element`, with a length drawn from
    /// `size` (a plain `lo..hi` or `lo..=hi` range, like upstream).
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S: Strategy,
    {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for VecStrategy<S>
    where
        S: Strategy,
    {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// A collection-size specification: a half-open or inclusive range of
/// lengths. Mirrors upstream's `SizeRange` far enough that unsuffixed
/// range literals (`1..5`) infer `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    /// Re-export so `proptest::collection::vec` resolves through the
    /// prelude-imported crate name as well.
    pub use crate as proptest;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::all)]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Fixed seed derived from the test name: deterministic
                // across runs, distinct across tests.
                let mut seed = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x100_0000_01b3);
                }
                let mut rng = $crate::TestRng::seeded(seed);
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)+
                    let dbg_inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} for `{}` failed: {}\ninputs:\n{}",
                            case + 1,
                            cfg.cases,
                            stringify!($name),
                            e,
                            dbg_inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u64),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![Just(Shape::Dot), (1..10u64).prop_map(Shape::Line),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3..17u64, y in 0..2usize, b in proptest::bool::ANY) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 2);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn vec_sizes_respected(v in proptest::collection::vec(0..5u8, 2..=4)) {
            prop_assert!((2..=4).contains(&v.len()), "len {}", v.len());
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn oneof_hits_all_arms(shapes in proptest::collection::vec(arb_shape(), 32..33)) {
            // With 64 cases of 32 draws, both arms certainly appear.
            let _dots = shapes.iter().filter(|s| **s == Shape::Dot).count();
            prop_assert_eq!(shapes.len(), 32);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::seeded(5);
        let mut b = TestRng::seeded(5);
        let s = (0..100u64, 0..7usize);
        for _ in 0..50 {
            assert_eq!(s.pick(&mut a), s.pick(&mut b));
        }
    }
}
