//! Tier-1 contract for vrm-serve's worker supervision: a pathological
//! worker process — hung or crashing — must degrade to a sound
//! `Unknown{WorkerLost}` on a deadline, never wedge the daemon and
//! never flip a verdict.
//!
//! The workers here are deliberately broken `sh` one-liners, so the
//! supervision state machine is exercised without the real `serve`
//! binary (which `crates/serve/tests/` drives via `CARGO_BIN_EXE`).

use std::time::{Duration, Instant};

use vrm::explore::{TruncationReason, Verdict};
use vrm::serve::supervisor::execute_isolated;
use vrm::serve::{JobConfig, JobSpec, ServeConfig, Service, SubmitOutcome, WorkerIsolation};

fn armed() -> bool {
    // An injected WorkerKill (VRM_FAULT_SEED) turns hangs into crashes
    // and voids the exact supervision assertions below.
    std::env::var_os("VRM_FAULT_SEED").is_some()
}

fn sh(script: &str) -> Vec<String> {
    vec!["sh".into(), "-c".into(), script.into()]
}

fn fast_iso(worker_cmd: Vec<String>) -> WorkerIsolation {
    WorkerIsolation {
        worker_cmd,
        deadline: Duration::from_millis(300),
        grace: Duration::from_millis(100),
        restarts: 1,
        backoff_base: Duration::from_millis(10),
        ignore_deadline: false,
    }
}

fn unmap() -> JobSpec {
    JobSpec::Schedules {
        workload: "unmap".into(),
    }
}

fn worker_lost(verdict: &Verdict) -> bool {
    matches!(
        verdict,
        Verdict::Unknown { coverage } if coverage.reason == TruncationReason::WorkerLost
    )
}

#[test]
fn a_sleeping_worker_is_killed_within_its_deadline() {
    if armed() {
        return;
    }
    let started = Instant::now();
    let (res, blob) = execute_isolated(
        &fast_iso(sh("sleep 30")),
        &unmap(),
        &JobConfig::default(),
        None,
    )
    .expect("a hang degrades, it does not error");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "kill must land near the 300ms deadline, not after the sleep"
    );
    assert!(worker_lost(&res.verdict), "{:?}", res.verdict);
    assert_eq!(res.exit_code(), 3, "WorkerLost is an Unknown, exit 3");
    assert!(blob.is_none());
}

#[test]
fn a_crash_looping_worker_degrades_after_bounded_restarts() {
    if armed() {
        return;
    }
    let (res, _) = execute_isolated(
        &fast_iso(sh("exit 9")),
        &unmap(),
        &JobConfig::default(),
        None,
    )
    .expect("a crash loop degrades, it does not error");
    assert!(worker_lost(&res.verdict), "{:?}", res.verdict);
    assert!(
        res.detail.contains("worker lost after 2 attempts"),
        "restarts must be bounded: {}",
        res.detail
    );
}

#[test]
fn a_service_full_of_lost_workers_stays_up() {
    if armed() {
        return;
    }
    // Every worker process hangs; every job must still come back as a
    // sound Unknown, and the service must keep taking queries.
    let svc = Service::start(ServeConfig {
        workers: 2,
        isolation: Some(fast_iso(sh("sleep 30"))),
        ..Default::default()
    });
    let started = Instant::now();
    for cfg in [
        JobConfig {
            max_states: 40,
            jobs: 1,
            escalate: false,
        },
        JobConfig {
            max_states: 60,
            jobs: 1,
            escalate: false,
        },
    ] {
        let id = match svc.submit(unmap(), cfg).expect("submit") {
            SubmitOutcome::Queued(id) => id,
            SubmitOutcome::Cached { result, .. } => {
                // A WorkerLost Unknown may be cached; that is still a
                // sound degraded answer, not a wedge.
                assert!(worker_lost(&result.verdict));
                continue;
            }
        };
        let snap = svc.wait(id);
        let res = snap.result.expect("done").expect("job result");
        assert!(worker_lost(&res.verdict), "{:?}", res.verdict);
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "lost workers must not wedge the queue"
    );
    let (fast, slow) = svc.queue_depths();
    assert_eq!((fast, slow), (0, 0), "queues must drain");
    svc.shutdown();
}
