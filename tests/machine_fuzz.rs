//! Machine fuzzing: randomly generated (structurally valid) per-CPU
//! scripts must run cleanly under the contended scheduler, with zero wDRF
//! violations and intact security invariants on every seed.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use vrm::sekvm::layout::{PAGE_WORDS, VM_POOL_PFN};
use vrm::sekvm::machine::{Machine, Op, Script};
use vrm::sekvm::security::check_invariants;
use vrm::sekvm::wdrf::validate_log;
use vrm::sekvm::KCoreConfig;

/// Generates one CPU's script: boot a VM, then a random but legal mix of
/// faults, writes/reads, grants/revokes, vCPU quanta and IPIs, then
/// reclaim.
fn random_script(rng: &mut StdRng, cpu: u64) -> Script {
    // Disjoint page-frame budget per CPU.
    let base = VM_POOL_PFN.0 + cpu * 64;
    let mut script = vec![
        Op::RegisterVm,
        Op::RegisterVcpu,
        Op::RegisterVcpu,
        Op::StageImage {
            pfns: vec![base, base + 1],
        },
        Op::VerifyImage,
    ];
    // Tracked state for structural validity.
    let mut next_donor = base + 8;
    let mut mapped: Vec<u64> = Vec::new(); // gpas with data pages
    let mut granted: Vec<u64> = Vec::new();
    let mut written: Vec<(u64, u64)> = Vec::new();
    for _ in 0..rng.gen_range(8..24) {
        match rng.gen_range(0..7) {
            0 => {
                let gpa = (16 + mapped.len() as u64 + cpu * 1000) * PAGE_WORDS;
                script.push(Op::Fault {
                    gpa,
                    donor_pfn: next_donor,
                });
                next_donor += 1;
                mapped.push(gpa);
            }
            1 if !mapped.is_empty() => {
                let gpa = mapped[rng.gen_range(0..mapped.len())] + rng.gen_range(0..8);
                let val = rng.gen_range(1..1_000_000);
                script.push(Op::VmWrite { gpa, val });
                written.retain(|(g, _)| *g != gpa);
                written.push((gpa, val));
            }
            2 if !written.is_empty() => {
                let (gpa, val) = written[rng.gen_range(0..written.len())];
                script.push(Op::VmReadExpect { gpa, expect: val });
            }
            3 if !mapped.is_empty() => {
                // Grant a page not already granted.
                let candidates: Vec<u64> = mapped
                    .iter()
                    .copied()
                    .filter(|g| !granted.contains(g))
                    .collect();
                if let Some(&gpa) = candidates.first() {
                    script.push(Op::Grant { gpa });
                    granted.push(gpa);
                }
            }
            4 if !granted.is_empty() => {
                let gpa = granted.remove(rng.gen_range(0..granted.len()));
                script.push(Op::Revoke { gpa });
            }
            5 => {
                script.push(Op::RunQuantum {
                    vcpu: rng.gen_range(0..2),
                });
                script.push(Op::UartWrite {
                    byte: rng.gen_range(32..127),
                });
            }
            _ => {
                let vcpu = rng.gen_range(0..2);
                let irq = rng.gen_range(0..8);
                script.push(Op::SendIpi { to_vcpu: vcpu, irq });
                script.push(Op::WaitIrq { vcpu, irq });
            }
        }
    }
    // Revoke everything still granted, then tear down.
    for gpa in granted {
        script.push(Op::Revoke { gpa });
    }
    script.push(Op::Reclaim);
    script
}

/// Base seed for the campaign, overridable with `VRM_FUZZ_SEED` to
/// reproduce (or widen) a failing run.
fn base_seed() -> u64 {
    std::env::var("VRM_FUZZ_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn fuzzed_machine_runs_stay_clean() {
    let base = base_seed();
    for seed in base..base + 10 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ncpus = rng.gen_range(2..6);
        let scripts: Vec<Script> = (0..ncpus)
            .map(|c| random_script(&mut rng, c as u64))
            .collect();
        for levels in [3u32, 4u32] {
            let mut m = Machine::new(
                KCoreConfig {
                    s2_levels: levels,
                    ..Default::default()
                },
                scripts.clone(),
                seed * 31 + levels as u64,
            );
            let report = m.run(5_000_000);
            assert!(
                report.clean(),
                "VRM_FUZZ_SEED={seed} levels {levels}: {report:?}"
            );
            let wdrf = validate_log(&m.kcore.log);
            assert!(
                wdrf.is_empty(),
                "VRM_FUZZ_SEED={seed} levels {levels}: {wdrf:?}"
            );
            let inv = check_invariants(&m.kcore);
            assert!(
                inv.is_empty(),
                "VRM_FUZZ_SEED={seed} levels {levels}: {inv:?}"
            );
        }
    }
}
