//! Content-addressing invariants for the serve layer, pinned over the
//! real litmus corpus plus property-generated configs:
//!
//! 1. canonicalization is a fixed point — `parse → canonical_text` is
//!    idempotent, so a job digest computed from raw file text equals
//!    the digest computed from its canonical form;
//! 2. no two corpus programs (or job kinds, or budgets) collide;
//! 3. the `jobs` driver knob never moves the cache key, while the
//!    verdict-relevant fields (`max_states`, `escalate`) always do.

use proptest::prelude::*;
use vrm::memmodel::parser::parse;
use vrm::serve::digest::{canonical_program, hex32, job_digest, program_digest};
use vrm::serve::{JobConfig, JobSpec};

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 23, "expected a corpus, found {files:?}");
    files
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).unwrap();
            (name, text)
        })
        .collect()
}

#[test]
fn canonicalization_is_a_digest_fixed_point_over_the_corpus() {
    for (name, text) in corpus() {
        let first = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let canon = first.canonical_text();
        let second = parse(&canon).unwrap_or_else(|e| panic!("{name}: reparse: {e}\n{canon}"));
        assert_eq!(
            canon,
            second.canonical_text(),
            "{name}: canonical_text is not idempotent"
        );

        let raw_spec = JobSpec::Litmus { text: text.clone() };
        let canon_spec = JobSpec::Litmus { text: canon };
        assert_eq!(
            program_digest(&raw_spec).unwrap(),
            program_digest(&canon_spec).unwrap(),
            "{name}: raw and canonical text must share a program digest"
        );
        let cfg = JobConfig::default();
        assert_eq!(
            job_digest(&raw_spec, &cfg, true).unwrap(),
            job_digest(&canon_spec, &cfg, true).unwrap(),
            "{name}: raw and canonical text must share a cache key"
        );
    }
}

#[test]
fn no_digest_collisions_across_corpus_kinds_and_budgets() {
    let mut seen: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut insert = |digest: u128, what: String| {
        let key = hex32(digest);
        if let Some(prev) = seen.insert(key.clone(), what.clone()) {
            panic!("digest collision {key}: {prev} vs {what}");
        }
    };

    let base = JobConfig::default();
    let big = JobConfig {
        max_states: base.max_states * 2,
        ..base
    };
    let esc = JobConfig {
        escalate: true,
        ..base
    };
    for (name, text) in corpus() {
        let spec = JobSpec::Litmus { text };
        for (tag, cfg) in [("base", &base), ("big", &big), ("esc", &esc)] {
            insert(
                job_digest(&spec, cfg, true).unwrap(),
                format!("litmus/{name}@{tag}"),
            );
        }
    }
    // Registry-named kinds join the same namespace without colliding.
    for kind in ["wdrf", "schedules", "refinement"] {
        let spec = match kind {
            "wdrf" => JobSpec::Wdrf {
                name: "unmap".into(),
            },
            "schedules" => JobSpec::Schedules {
                workload: "unmap".into(),
            },
            _ => JobSpec::Refinement {
                workload: "unmap".into(),
            },
        };
        insert(
            job_digest(&spec, &base, true).unwrap(),
            format!("{kind}/unmap"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache key tracks exactly the verdict-relevant config: it is
    /// invariant under the `jobs` driver knob and under re-digesting,
    /// and moves iff `max_states` or `escalate` differ.
    #[test]
    fn job_digest_tracks_verdict_relevant_config_only(
        file_ix in 0..8usize,
        states_a in 1u64..1 << 20,
        states_b in 1u64..1 << 20,
        esc_a in proptest::bool::ANY,
        esc_b in proptest::bool::ANY,
        jobs_a in 1usize..8,
        jobs_b in 1usize..8,
    ) {
        let corpus = corpus();
        let (_, text) = &corpus[file_ix % corpus.len()];
        let spec = JobSpec::Litmus { text: text.clone() };
        let cfg_a = JobConfig {
            max_states: states_a as usize,
            jobs: jobs_a,
            escalate: esc_a,
        };
        let cfg_b = JobConfig {
            max_states: states_b as usize,
            jobs: jobs_b,
            escalate: esc_b,
        };
        let d_a = job_digest(&spec, &cfg_a, true).unwrap();
        let d_b = job_digest(&spec, &cfg_b, true).unwrap();

        // Deterministic: re-digesting never drifts.
        prop_assert_eq!(d_a, job_digest(&spec, &cfg_a, true).unwrap());
        // `jobs` is not part of the key; the verdict-relevant pair is.
        let same_verdict_cfg = states_a == states_b && esc_a == esc_b;
        prop_assert_eq!(
            d_a == d_b,
            same_verdict_cfg,
            "digests {} / {} for configs {:?} / {:?}",
            hex32(d_a), hex32(d_b), (states_a, esc_a, jobs_a), (states_b, esc_b, jobs_b)
        );
        // The checkpoint key ignores config entirely.
        prop_assert_eq!(program_digest(&spec).unwrap(), program_digest(&spec).unwrap());
        let canon = canonical_program(&spec).unwrap();
        prop_assert!(canon.starts_with("litmus\n"));
    }
}
