//! Cross-crate integration: the litmus battery conformance sweep.
//!
//! The reproduction's substitute for the paper's reliance on the
//! machine-checked Promising-Arm ≡ Armv8-axiomatic equivalence: our two
//! independent implementations must agree on every battery test, SC must
//! always be subsumed, and the expected architectural verdicts must hold.

use vrm::memmodel::litmus::{battery, check, check_with_jobs};

#[test]
fn battery_conformance_full() {
    let tests = battery();
    assert!(tests.len() >= 20, "battery should be substantial");
    for test in tests {
        let c = check(&test).unwrap();
        assert!(
            c.models_agree,
            "{}: operational and axiomatic disagree\noperational:\n{}\naxiomatic:\n{}",
            c.name, c.promising, c.axiomatic
        );
        assert!(
            c.sc_subsumed,
            "{}: SC produced an outcome RM cannot",
            c.name
        );
        assert!(c.verdicts_match, "{}: architectural verdict wrong", c.name);
    }
}

/// The parallel work-stealing driver must be observationally identical to
/// the sequential reference: same SC, promising, and axiomatic outcome
/// sets on every battery test.
#[test]
fn battery_parallel_driver_matches_sequential() {
    for test in battery() {
        let seq = check_with_jobs(&test, 1).unwrap();
        let par = check_with_jobs(&test, 4).unwrap();
        assert_eq!(seq.sc, par.sc, "{}: SC outcome sets differ", seq.name);
        assert_eq!(
            seq.promising, par.promising,
            "{}: promising outcome sets differ",
            seq.name
        );
        assert_eq!(
            seq.axiomatic, par.axiomatic,
            "{}: axiomatic outcome sets differ",
            seq.name
        );
        assert!(par.ok(), "{}: parallel conformance failed", par.name);
    }
}

#[test]
fn battery_covers_both_verdicts() {
    let tests = battery();
    let allowed = tests.iter().filter(|t| t.allowed_on_arm).count();
    let forbidden = tests.iter().filter(|t| !t.allowed_on_arm).count();
    assert!(allowed >= 5, "need relaxed-allowed shapes ({allowed})");
    assert!(
        forbidden >= 10,
        "need relaxed-forbidden shapes ({forbidden})"
    );
}
