//! Differential soundness gates for the reduced exploration drivers
//! (`docs/REDUCTION.md`): every reduced walk — sleep sets, ample
//! singletons, orbit canonicalization — must produce exactly the same
//! outcome sets and verdicts as the exhaustive walk it replaces, across
//! the whole litmus corpus, pinned-seed generated cycles, and the
//! machine-layer schedule workloads, at every driver (jobs 1/2/4).

use vrm::memmodel::gen::{generate, GenConfig};
use vrm::memmodel::parser::parse;
use vrm::memmodel::promising::enumerate_promising_with;
use vrm::memmodel::sc::{enumerate_sc_with, ScConfig};
use vrm::obs::Counter;
use vrm::sekvm::machine::{ExhaustiveConfig, Machine};
use vrm::sekvm::workloads;
use vrm::sekvm::KCoreConfig;

const JOBS: [usize; 3] = [1, 2, 4];

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 31, "expected a corpus, found {files:?}");
    files
        .into_iter()
        .map(|p| {
            (
                p.display().to_string(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect()
}

/// SC: the reduced walk (sleep sets + ample + orbits) must be
/// outcome-identical to the exhaustive one on every corpus program and
/// every driver.
#[test]
fn corpus_sc_reduction_preserves_outcomes() {
    for (name, text) in corpus() {
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        for jobs in JOBS {
            let on = enumerate_sc_with(
                &parsed.program,
                &ScConfig {
                    jobs,
                    reduction: true,
                    ..ScConfig::default()
                },
            )
            .unwrap();
            let off = enumerate_sc_with(
                &parsed.program,
                &ScConfig {
                    jobs,
                    reduction: false,
                    ..ScConfig::default()
                },
            )
            .unwrap();
            assert_eq!(on, off, "{name}: SC outcome sets differ at jobs={jobs}");
            assert!(
                on.stats.states <= off.stats.states,
                "{name}: reduction grew the SC walk at jobs={jobs}"
            );
        }
    }
}

/// Promising: same gate, including the truncation flag — a reduced walk
/// must never claim more (or less) completeness than the full one.
#[test]
fn corpus_promising_reduction_preserves_outcomes() {
    for (name, text) in corpus() {
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        for jobs in JOBS {
            let mut on = parsed.promising.clone();
            on.jobs = jobs;
            on.reduction = true;
            let mut off = on.clone();
            off.reduction = false;
            let a = enumerate_promising_with(&parsed.program, &on).unwrap();
            let b = enumerate_promising_with(&parsed.program, &off).unwrap();
            assert_eq!(
                a.outcomes, b.outcomes,
                "{name}: promising outcome sets differ at jobs={jobs}"
            );
            assert_eq!(
                a.truncated, b.truncated,
                "{name}: promising truncation flags differ at jobs={jobs}"
            );
        }
    }
}

/// Generated litmus cycles at pinned seeds: the generator reaches
/// symmetric shapes the curated corpus does not (identical threads in
/// a cycle), which is exactly where orbit collapse fires.
#[test]
fn generated_cycles_reduction_preserves_outcomes() {
    let cfg = GenConfig::default();
    for seed in 0..12u64 {
        let parsed = generate(seed, &cfg);
        for jobs in JOBS {
            let on = enumerate_sc_with(
                &parsed.program,
                &ScConfig {
                    jobs,
                    reduction: true,
                    ..ScConfig::default()
                },
            )
            .unwrap();
            let off = enumerate_sc_with(
                &parsed.program,
                &ScConfig {
                    jobs,
                    reduction: false,
                    ..ScConfig::default()
                },
            )
            .unwrap();
            assert_eq!(on, off, "gen seed {seed}: SC sets differ at jobs={jobs}");
            let mut pon = parsed.promising.clone();
            pon.jobs = jobs;
            pon.reduction = true;
            let mut poff = pon.clone();
            poff.reduction = false;
            let a = enumerate_promising_with(&parsed.program, &pon).unwrap();
            let b = enumerate_promising_with(&parsed.program, &poff).unwrap();
            assert_eq!(
                a.outcomes, b.outcomes,
                "gen seed {seed}: promising sets differ at jobs={jobs}"
            );
        }
    }
}

/// The symmetric two-CPU `mirror` workload must actually collapse
/// orbits (the counter moves) without changing a single outcome or
/// verdict; the asymmetric `unmap` workload must be left untouched by
/// the reduction machinery (its 117-state anchor is a bench baseline).
#[test]
fn machine_reduction_collapses_mirror_orbits_and_preserves_unmap() {
    let orbit = Counter::new("explore/orbit_collapsed");
    for name in ["mirror", "unmap"] {
        let scripts = workloads::by_name(name).expect("workload");
        for jobs in JOBS {
            let on = ExhaustiveConfig {
                jobs,
                reduction: true,
                ..ExhaustiveConfig::default()
            };
            let off = ExhaustiveConfig {
                jobs,
                reduction: false,
                ..ExhaustiveConfig::default()
            };
            let before = orbit.get();
            let a =
                Machine::explore_schedules(KCoreConfig::default(), scripts.clone(), &on).unwrap();
            let collapsed = orbit.get() - before;
            let b =
                Machine::explore_schedules(KCoreConfig::default(), scripts.clone(), &off).unwrap();
            assert_eq!(
                a.outcomes, b.outcomes,
                "{name}: schedule outcome sets differ at jobs={jobs}"
            );
            assert_eq!(a.verdict(), b.verdict(), "{name}: verdicts differ");
            match name {
                "mirror" => {
                    assert!(
                        collapsed > 0,
                        "mirror: symmetric workload collapsed no orbits at jobs={jobs}"
                    );
                    assert!(
                        a.stats.states < b.stats.states,
                        "mirror: reduction did not shrink the walk at jobs={jobs} \
                         ({} vs {})",
                        a.stats.states,
                        b.stats.states
                    );
                }
                _ => {
                    // No symmetry: the reduced walk is the same graph.
                    assert_eq!(
                        a.stats.states, b.stats.states,
                        "unmap: asymmetric workload changed size at jobs={jobs}"
                    );
                }
            }
            let ra =
                Machine::check_refinement(KCoreConfig::default(), scripts.clone(), &on).unwrap();
            let rb =
                Machine::check_refinement(KCoreConfig::default(), scripts.clone(), &off).unwrap();
            assert_eq!(ra.outcomes, rb.outcomes, "{name}: refinement outcomes");
            assert_eq!(
                ra.violations.is_empty(),
                rb.violations.is_empty(),
                "{name}: refinement verdict inputs diverged"
            );
            assert_eq!(ra.verdict(), rb.verdict(), "{name}: refinement verdicts");
        }
    }
}
