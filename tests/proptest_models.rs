//! Property-based tests over the core machinery.
//!
//! * For random litmus-scale programs: SC outcomes are always a subset of
//!   the Promising-model outcomes; the promise-free mode never exceeds
//!   the promising mode; and the Promising and axiomatic implementations
//!   agree exactly (the reproduction's stand-in for the published
//!   equivalence proof).
//! * For random page-table operation sequences: walks, mappings and the
//!   Transactional-Page-Table condition hold for every `set`/`clear`.

use proptest::prelude::*;

use vrm::memmodel::axiomatic::{enumerate_axiomatic_with, AxConfig};
use vrm::memmodel::builder::ProgramBuilder;
use vrm::memmodel::ir::{Fence, Inst, Program, Reg, RmwOp};
use vrm::memmodel::promising::{enumerate_promising_with, PromisingConfig};
use vrm::memmodel::sc::{enumerate_sc, enumerate_sc_with, ScConfig};

const LOCS: [u64; 2] = [0x10, 0x20];

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        // Loads into r0/r1, plain or acquire.
        (0..2usize, 0..2u8, proptest::bool::ANY).prop_map(|(l, r, acq)| Inst::Load {
            dst: Reg(r),
            addr: LOCS[l].into(),
            acq,
        }),
        // Stores of 1/2 or of a register, plain or release.
        (0..2usize, 1..3u64, proptest::bool::ANY).prop_map(|(l, v, rel)| Inst::Store {
            val: v.into(),
            addr: LOCS[l].into(),
            rel,
        }),
        (0..2usize, 0..2u8, proptest::bool::ANY).prop_map(|(l, r, rel)| Inst::Store {
            val: Reg(r).into(),
            addr: LOCS[l].into(),
            rel,
        }),
        Just(Inst::Fence(Fence::Sy)),
        Just(Inst::Fence(Fence::Ld)),
        Just(Inst::Fence(Fence::St)),
        (0..2usize).prop_map(|l| Inst::Rmw {
            dst: Reg(0),
            addr: LOCS[l].into(),
            op: RmwOp::Add,
            rhs: 1u64.into(),
            acq: false,
            rel: false,
        }),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_inst(), 1..=3),
        proptest::collection::vec(arb_inst(), 1..=3),
    )
        .prop_map(|(c0, c1)| {
            let mut p = ProgramBuilder::new("random");
            p.thread("T0", |t| {
                for i in &c0 {
                    t.inst(i.clone());
                }
            });
            p.thread("T1", |t| {
                for i in &c1 {
                    t.inst(i.clone());
                }
            });
            p.observe_reg("t0r0", 0, Reg(0));
            p.observe_reg("t0r1", 0, Reg(1));
            p.observe_reg("t1r0", 1, Reg(0));
            p.observe_reg("t1r1", 1, Reg(1));
            p.observe_mem("x", LOCS[0]);
            p.observe_mem("y", LOCS[1]);
            p.build()
        })
}

fn promising_cfg(promises: bool) -> PromisingConfig {
    PromisingConfig {
        promises,
        max_promises_per_thread: 1,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sc_subset_of_promising(prog in arb_program()) {
        let sc = enumerate_sc(&prog).unwrap();
        let rm = enumerate_promising_with(&prog, &promising_cfg(true)).unwrap();
        prop_assert!(
            sc.is_subset(&rm.outcomes),
            "SC-only outcomes: {:?}\nprogram: {prog:?}",
            sc.difference(&rm.outcomes)
        );
    }

    #[test]
    fn promise_free_subset_of_promising(prog in arb_program()) {
        let weak = enumerate_promising_with(&prog, &promising_cfg(false)).unwrap();
        let full = enumerate_promising_with(&prog, &promising_cfg(true)).unwrap();
        prop_assert!(weak.outcomes.is_subset(&full.outcomes));
    }

    /// The work-stealing driver is a pure scheduling change: at every
    /// worker count it must produce exactly the sequential outcome sets
    /// on both operational models.
    #[test]
    fn parallel_drivers_match_sequential(prog in arb_program()) {
        let sc_seq = enumerate_sc_with(&prog, &ScConfig { jobs: 1, ..ScConfig::default() }).unwrap();
        let mut pcfg = promising_cfg(true);
        pcfg.jobs = 1;
        let rm_seq = enumerate_promising_with(&prog, &pcfg).unwrap();
        for jobs in [2usize, 4, 8] {
            let sc_par =
                enumerate_sc_with(&prog, &ScConfig { jobs, ..ScConfig::default() }).unwrap();
            prop_assert_eq!(&sc_seq, &sc_par, "SC differs at jobs={}", jobs);
            let mut pcfg = promising_cfg(true);
            pcfg.jobs = jobs;
            let rm_par = enumerate_promising_with(&prog, &pcfg).unwrap();
            prop_assert_eq!(
                &rm_seq.outcomes, &rm_par.outcomes,
                "promising differs at jobs={}", jobs
            );
            prop_assert_eq!(rm_seq.violations.len(), rm_par.violations.len());
        }
    }

    #[test]
    fn promising_agrees_with_axiomatic(prog in arb_program()) {
        let rm = enumerate_promising_with(&prog, &PromisingConfig::default()).unwrap();
        let ax = enumerate_axiomatic_with(&prog, &AxConfig::default()).unwrap();
        if ax.truncated || rm.truncated {
            // Bounded enumerations (e.g. RMW chains exploding the value
            // domain) may be incomplete on either side; completeness
            // claims are only made for untruncated runs. A truncated
            // axiomatic set must still be sound (subset of the complete
            // operational set) when the operational side is complete.
            if !rm.truncated {
                prop_assert!(
                    ax.outcomes.is_subset(&rm.outcomes),
                    "truncated axiomatic produced impossible outcomes:\n{}\nvs\n{}",
                    ax.outcomes,
                    rm.outcomes
                );
            }
        } else {
            prop_assert!(
                rm.outcomes == ax.outcomes,
                "promising:\n{}\naxiomatic:\n{}\nprogram: {prog:?}",
                rm.outcomes,
                ax.outcomes
            );
        }
    }
}

mod virtual_memory {
    use super::*;
    use vrm::memmodel::ir::VmConfig;

    /// Random programs over a 1-level page table: a "kernel" thread doing
    /// raw PTE stores and TLBIs races a "user" thread doing virtual
    /// loads. SC must always be subsumed by the relaxed model.
    #[derive(Debug, Clone, Copy)]
    enum KOp {
        PteWrite { slot: u64, page: u64 },
        Barrier,
        Tlbi { slot: u64 },
    }

    fn arb_kop() -> impl Strategy<Value = KOp> {
        prop_oneof![
            (0..2u64, 0..3u64).prop_map(|(slot, page)| KOp::PteWrite { slot, page }),
            Just(KOp::Barrier),
            (0..2u64).prop_map(|slot| KOp::Tlbi { slot }),
        ]
    }

    fn build(kops: &[KOp], nloads: usize) -> Program {
        let vm = VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        };
        let mut p = ProgramBuilder::new("random-vm");
        p.vm(vm);
        // Slot 0 initially mapped to page 0x20 (all-1s); slot 1 empty.
        p.init(0x100, 0x20);
        p.init_range(0x20, 16, 1);
        p.init_range(0x30, 16, 2);
        p.init_range(0x40, 16, 3);
        let pages = [0u64, 0x30, 0x40]; // page "0" = unmap
        p.thread("kernel", |t| {
            for op in kops {
                match op {
                    KOp::PteWrite { slot, page } => {
                        t.store(0x100 + slot, pages[*page as usize], false);
                    }
                    KOp::Barrier => {
                        t.dmb();
                    }
                    KOp::Tlbi { slot } => {
                        t.tlbi_va(slot << 4);
                    }
                }
            }
        });
        p.thread("user", |t| {
            for i in 0..nloads {
                t.load_virt(Reg(i as u8), (i as u64 % 2) << 4, false);
            }
        });
        for i in 0..nloads {
            p.observe_reg(&format!("u{i}"), 1, Reg(i as u8));
        }
        p.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sc_subset_of_promising_with_mmu(
            kops in proptest::collection::vec(arb_kop(), 1..5),
            nloads in 1usize..3,
        ) {
            let prog = build(&kops, nloads);
            let sc = enumerate_sc(&prog).unwrap();
            let rm = enumerate_promising_with(&prog, &promising_cfg(false)).unwrap();
            prop_assert!(
                sc.is_subset(&rm.outcomes),
                "SC-only outcomes: {:?}\nkops: {kops:?}",
                sc.difference(&rm.outcomes)
            );
        }

        /// Unmap with barrier + TLBI, then a fresh walk after
        /// synchronization must fault — for every prefix of kernel noise.
        #[test]
        fn break_sequence_is_always_visible(
            noise in proptest::collection::vec(arb_kop(), 0..3),
        ) {
            let vm = VmConfig { levels: 1, root: 0x100, page_bits: 4, index_bits: 4 };
            let mut p = ProgramBuilder::new("bbm");
            p.vm(vm);
            p.init(0x100, 0x20);
            p.init_range(0x20, 16, 1);
            p.init_range(0x30, 16, 2);
            p.init_range(0x40, 16, 3);
            let pages = [0u64, 0x30, 0x40];
            p.thread("kernel", move |t| {
                // Noise touching only slot 1 (never slot 0).
                for op in &noise {
                    match op {
                        KOp::PteWrite { page, .. } => {
                            t.store(0x101u64, pages[*page as usize], false);
                        }
                        KOp::Barrier => { t.dmb(); }
                        KOp::Tlbi { .. } => { t.tlbi_va(1u64 << 4); }
                    }
                }
                // The break sequence on slot 0 + publication.
                t.store(0x100u64, 0u64, false);
                t.dmb();
                t.tlbi_va(0u64);
                t.store(0x200u64, 1u64, true);
            });
            p.thread("user", |t| {
                t.load(Reg(0), 0x200u64, true);
                t.br(vrm::memmodel::ir::Cond::Ne, Reg(0), 1u64, "skip");
                t.load_virt(Reg(1), 0u64, false);
                t.label("skip");
                t.inst(Inst::Halt);
            });
            p.observe_reg("saw", 1, Reg(0));
            p.observe_reg("data", 1, Reg(1));
            let prog = p.build();
            let rm = enumerate_promising_with(&prog, &promising_cfg(false)).unwrap();
            // Once the post-TLBI publication is observed, no walk can read
            // the old mapping (it must fault instead).
            prop_assert!(
                !rm.outcomes.contains_binding(&[("saw", 1), ("data", 1)]),
                "stale walk after synchronized TLBI:\n{}",
                rm.outcomes
            );
        }
    }
}

mod page_tables {
    use proptest::prelude::*;
    use vrm::mmu::mem::PhysMem;
    use vrm::mmu::pool::PagePool;
    use vrm::mmu::pte::Perms;
    use vrm::mmu::table::{Geometry, PageTable, WalkOutcome};
    use vrm::mmu::transactional::check_writes_transactional;

    #[derive(Debug, Clone, Copy)]
    enum PtOp {
        Map { slot: u64, page: u64 },
        Unmap { slot: u64 },
    }

    fn arb_op() -> impl Strategy<Value = PtOp> {
        prop_oneof![
            (0..8u64, 0..8u64).prop_map(|(slot, page)| PtOp::Map { slot, page }),
            (0..8u64).prop_map(|slot| PtOp::Unmap { slot }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every successful map/unmap is transactional, the walker agrees
        /// with a shadow map, and `mappings()` stays consistent.
        #[test]
        fn random_op_sequences_preserve_invariants(
            ops in proptest::collection::vec(arb_op(), 1..24),
            levels in 2u32..4,
        ) {
            let mut mem = PhysMem::new();
            let geo = Geometry::tiny(levels);
            let mut pool = PagePool::new(&mut mem, 0x10000, geo.page_words(), 128);
            let root = pool.alloc(&mem).unwrap();
            let pt = PageTable::new(root, geo);
            let page_words = geo.page_words();
            let mut shadow: std::collections::BTreeMap<u64, u64> = Default::default();
            for op in ops {
                match op {
                    PtOp::Map { slot, page } => {
                        let va = slot * page_words;
                        let pa = 0x40000 + page * page_words;
                        let before = mem.clone();
                        match pt.map(&mut mem, &mut pool, va, pa, Perms::RW) {
                            Ok(writes) => {
                                prop_assert!(!shadow.contains_key(&slot));
                                check_writes_transactional(&pt, &before, &writes, &[va])
                                    .map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
                                shadow.insert(slot, pa);
                            }
                            Err(_) => prop_assert!(shadow.contains_key(&slot)),
                        }
                    }
                    PtOp::Unmap { slot } => {
                        let va = slot * page_words;
                        let before = mem.clone();
                        match pt.unmap(&mut mem, va) {
                            Ok(writes) => {
                                prop_assert!(shadow.remove(&slot).is_some());
                                check_writes_transactional(&pt, &before, &writes, &[va])
                                    .map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
                            }
                            Err(_) => prop_assert!(!shadow.contains_key(&slot)),
                        }
                    }
                }
                // Walker agrees with the shadow on every slot.
                for slot in 0..8u64 {
                    let va = slot * page_words + 3;
                    match (pt.walk(&mem, va), shadow.get(&slot)) {
                        (WalkOutcome::Mapped { pa, .. }, Some(&expect)) => {
                            prop_assert_eq!(pa, expect + 3);
                        }
                        (WalkOutcome::Fault { .. }, None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "slot {slot}: walk {got:?} vs shadow {want:?}"
                            )));
                        }
                    }
                }
                prop_assert_eq!(pt.mappings(&mem).len(), shadow.len());
            }
        }
    }
}

mod ticket_lock {
    use proptest::prelude::*;
    use vrm::sekvm::ticketlock::TicketLock;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under any interleaving of draws and enter attempts, tickets are
        /// served strictly FIFO and mutual exclusion holds.
        #[test]
        fn fifo_and_mutual_exclusion(schedule in proptest::collection::vec(0..4usize, 1..64)) {
            let mut lock = TicketLock::new();
            let mut tickets: Vec<Option<vrm::sekvm::ticketlock::Ticket>> = vec![None; 4];
            let mut served: Vec<u64> = Vec::new();
            for cpu in schedule {
                match tickets[cpu] {
                    None => tickets[cpu] = Some(lock.draw()),
                    Some(t) => {
                        if lock.holder() == Some(cpu) {
                            lock.release(cpu);
                            tickets[cpu] = None;
                        } else if lock.try_enter(cpu, t) {
                            prop_assert_eq!(lock.holder(), Some(cpu));
                            served.push(t.0);
                        }
                    }
                }
            }
            // FIFO: tickets were served in strictly increasing order.
            for w in served.windows(2) {
                prop_assert!(w[0] < w[1], "out of order: {served:?}");
            }
        }
    }
}
