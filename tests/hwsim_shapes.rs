//! Cross-crate integration: every table and figure regenerates with the
//! paper's qualitative shape.

use vrm::hwsim::{
    simulate_app, simulate_micro, simulate_multivm, workloads, HwConfig, HypConfig, HypKind,
    KernelVersion, VM_COUNTS,
};

#[test]
fn table3_shape() {
    // Paper Table 3 ratios: m400 high (1.76–2.30), Seattle low (1.17–1.28).
    for (hw, lo, hi) in [
        (HwConfig::m400(), 1.6, 2.6),
        (HwConfig::seattle(), 1.08, 1.45),
    ] {
        let kvm = simulate_micro(hw, HypConfig::new(HypKind::Kvm, KernelVersion::V4_18));
        let sek = simulate_micro(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18));
        for (k, s) in kvm.rows().iter().zip(sek.rows().iter()) {
            let ratio = s.1 as f64 / k.1 as f64;
            assert!(
                (lo..hi).contains(&ratio),
                "{} {}: ratio {ratio:.2} outside [{lo}, {hi}]",
                hw.name,
                k.0
            );
        }
    }
}

#[test]
fn table3_magnitudes_near_paper() {
    let paper: [(&str, HypKind, [u64; 4]); 4] = [
        ("m400", HypKind::Kvm, [2275, 3144, 7864, 7915]),
        ("m400", HypKind::SeKvm, [4695, 7235, 15501, 13900]),
        ("Seattle", HypKind::Kvm, [2896, 3831, 9288, 8816]),
        ("Seattle", HypKind::SeKvm, [3720, 4864, 10903, 10699]),
    ];
    for (hw_name, kind, expected) in paper {
        let hw = if hw_name == "m400" {
            HwConfig::m400()
        } else {
            HwConfig::seattle()
        };
        let m = simulate_micro(hw, HypConfig::new(kind, KernelVersion::V4_18));
        let got = [m.hypercall, m.io_kernel, m.io_user, m.virtual_ipi];
        for (g, e) in got.iter().zip(expected.iter()) {
            let rel = (*g as f64 - *e as f64).abs() / *e as f64;
            assert!(
                rel < 0.40,
                "{hw_name} {:?}: {g} vs paper {e} ({:.0}% off)",
                kind,
                rel * 100.0
            );
        }
    }
}

#[test]
fn fig8_shape() {
    for hw in [HwConfig::m400(), HwConfig::seattle()] {
        for kernel in [KernelVersion::V4_18, KernelVersion::V5_4] {
            for w in workloads() {
                let kvm = simulate_app(hw, HypConfig::new(HypKind::Kvm, kernel), &w).normalized;
                let sek = simulate_app(hw, HypConfig::new(HypKind::SeKvm, kernel), &w).normalized;
                assert!(kvm > sek, "{}: SeKVM should cost something", w.name);
                assert!(
                    sek / kvm >= 0.90,
                    "{} {} {}: SeKVM more than 10% below KVM",
                    hw.name,
                    kernel.name(),
                    w.name
                );
            }
        }
    }
}

#[test]
fn fig9_shape() {
    let hw = HwConfig::m400();
    let kvm = HypConfig::new(HypKind::Kvm, KernelVersion::V4_18);
    let sek = HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18);
    for w in workloads() {
        let mut prev_k = f64::INFINITY;
        let mut prev_s = f64::INFINITY;
        for n in VM_COUNTS {
            let k = simulate_multivm(hw, kvm, &w, n);
            let s = simulate_multivm(hw, sek, &w, n);
            // Both decrease and track each other.
            assert!(k <= prev_k && s <= prev_s, "{} n={n}", w.name);
            assert!(s / k >= 0.90, "{} n={n}: {:.3}", w.name, s / k);
            prev_k = k;
            prev_s = s;
        }
        // 32 VMs on 8 cores: heavily oversubscribed.
        assert!(simulate_multivm(hw, kvm, &w, 32) < 0.5 * simulate_multivm(hw, kvm, &w, 1));
    }
}

#[test]
fn three_level_tables_help_small_tlb_parts() {
    // §5.6's motivation: 3-level stage-2 reduces walk cost, which matters
    // most on the m400.
    let hw = HwConfig::m400();
    let v418 = simulate_micro(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18));
    let v54 = simulate_micro(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V5_4));
    // 5.4 uses 3-level tables: cheaper walks despite slightly more
    // instructions on exit paths.
    assert!(v54.io_kernel < v418.io_kernel);
}
