//! The `.litmus` corpus under `litmus/`: every file must parse, conform
//! across models, and satisfy its own `check` expectations.

use vrm::memmodel::axiomatic::{enumerate_axiomatic_with, AxConfig};
use vrm::memmodel::parser::{parse, CheckModel};
use vrm::memmodel::promising::enumerate_promising_with;
use vrm::memmodel::sc::enumerate_sc;

#[test]
fn corpus_parses_and_passes() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 5, "expected a corpus, found {files:?}");
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let prog = &parsed.program;
        assert!(!parsed.checks.is_empty(), "{}: no checks", path.display());
        let sc = enumerate_sc(prog).unwrap();
        let rm = enumerate_promising_with(prog, &parsed.promising)
            .unwrap()
            .outcomes;
        assert!(
            sc.is_subset(&rm),
            "{}: SC not subsumed by RM",
            path.display()
        );
        let ax = if parsed.run_axiomatic {
            enumerate_axiomatic_with(prog, &AxConfig::default())
                .ok()
                .filter(|r| !r.truncated)
                .map(|r| r.outcomes)
        } else {
            None
        };
        if let Some(ax) = &ax {
            // Only compare exactly when the promise search ran at full
            // strength; the promise-free fast path under-approximates.
            if parsed.promising.promises {
                assert_eq!(&rm, ax, "{}: model mismatch", path.display());
            } else {
                assert!(
                    rm.is_subset(ax),
                    "{}: promise-free RM must under-approximate",
                    path.display()
                );
            }
        }
        for c in &parsed.checks {
            let set = match c.model {
                CheckModel::Arm => ax.as_ref().unwrap_or(&rm),
                CheckModel::Sc => &sc,
            };
            let bindings: Vec<(&str, u64)> =
                c.bindings.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            assert_eq!(
                set.contains_binding(&bindings),
                c.allows,
                "{}: check {:?} {} failed",
                path.display(),
                c.bindings,
                if c.allows { "allows" } else { "forbids" },
            );
        }
    }
}
