//! The `.litmus` corpus under `litmus/`: every file must parse, conform
//! across models, and satisfy its own `check` expectations.

use vrm::memmodel::axiomatic::{enumerate_axiomatic_with, AxConfig};
use vrm::memmodel::parser::{parse, CheckModel};
use vrm::memmodel::promising::enumerate_promising_with;
use vrm::memmodel::sc::{enumerate_sc, enumerate_sc_with, ScConfig};

#[test]
fn corpus_parses_and_passes() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 31, "expected a corpus, found {files:?}");
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let prog = &parsed.program;
        assert!(!parsed.checks.is_empty(), "{}: no checks", path.display());
        let sc = enumerate_sc(prog).unwrap();
        let rm = enumerate_promising_with(prog, &parsed.promising)
            .unwrap()
            .outcomes;
        assert!(
            sc.is_subset(&rm),
            "{}: SC not subsumed by RM",
            path.display()
        );
        let ax = if parsed.run_axiomatic {
            enumerate_axiomatic_with(prog, &AxConfig::default())
                .ok()
                .filter(|r| !r.truncated)
                .map(|r| r.outcomes)
        } else {
            None
        };
        if let Some(ax) = &ax {
            // Only compare exactly when the promise search ran at full
            // strength; the promise-free fast path under-approximates.
            if parsed.promising.promises {
                assert_eq!(&rm, ax, "{}: model mismatch", path.display());
            } else {
                assert!(
                    rm.is_subset(ax),
                    "{}: promise-free RM must under-approximate",
                    path.display()
                );
            }
        }
        for c in &parsed.checks {
            let set = match c.model {
                CheckModel::Arm => ax.as_ref().unwrap_or(&rm),
                CheckModel::Sc => &sc,
            };
            let bindings: Vec<(&str, u64)> =
                c.bindings.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            assert_eq!(
                set.contains_binding(&bindings),
                c.allows,
                "{}: check {:?} {} failed",
                path.display(),
                c.bindings,
                if c.allows { "allows" } else { "forbids" },
            );
        }
    }
}

/// Both exploration drivers must produce identical outcome sets on every
/// corpus file (the parallel-engine correctness gate for `litmus/`).
#[test]
fn corpus_parallel_driver_matches_sequential() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let prog = &parsed.program;
        let run = |jobs: usize| {
            let sc = enumerate_sc_with(
                prog,
                &ScConfig {
                    jobs,
                    ..ScConfig::default()
                },
            )
            .unwrap();
            let mut pcfg = parsed.promising.clone();
            pcfg.jobs = jobs;
            let rm = enumerate_promising_with(prog, &pcfg).unwrap().outcomes;
            (sc, rm)
        };
        let (sc1, rm1) = run(1);
        let (sc4, rm4) = run(4);
        assert_eq!(sc1, sc4, "{}: SC outcome sets differ", path.display());
        assert_eq!(rm1, rm4, "{}: RM outcome sets differ", path.display());
    }
}
