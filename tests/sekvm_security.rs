//! Cross-crate integration: adversarial security scenarios against the
//! SeKVM model (§5.3's confidentiality and integrity guarantees).

use vrm::sekvm::layout::{page_addr, pfn_of, PAGE_WORDS, VM_POOL_PFN};
use vrm::sekvm::security::check_invariants;
use vrm::sekvm::{HypercallError, KCore, KCoreConfig, Owner};

fn boot_vm(k: &mut KCore, cpu: usize, base_pfn: u64) -> u32 {
    let pfns = vec![base_pfn, base_pfn + 1];
    let mut words = Vec::new();
    for &pfn in &pfns {
        for w in 0..PAGE_WORDS {
            let v = pfn * 13 + w;
            k.mem.write(page_addr(pfn) + w, v);
            words.push(v);
        }
    }
    let hash = KCore::image_hash(&words);
    let vmid = k.register_vm(cpu).unwrap();
    k.register_vcpu(cpu, vmid).unwrap();
    k.set_boot_info(cpu, vmid, pfns, hash).unwrap();
    k.remap_vm_image(cpu, vmid).unwrap();
    k.verify_vm_image(cpu, vmid).unwrap();
    vmid
}

#[test]
fn kserv_cannot_read_or_write_any_vm_page() {
    let mut k = KCore::boot(KCoreConfig::default());
    let vmid = boot_vm(&mut k, 0, VM_POOL_PFN.0);
    // Write a secret into every VM page.
    k.vm_write(0, vmid, 0, 111).unwrap();
    k.vm_write(0, vmid, PAGE_WORDS, 222).unwrap();
    for pfn in k.s2pages.owned_by(Owner::Vm(vmid)) {
        let pa = page_addr(pfn);
        assert_eq!(k.kserv_read(1, pa), Err(HypercallError::AccessDenied));
        assert_eq!(k.kserv_write(1, pa, 0), Err(HypercallError::AccessDenied));
    }
    assert_eq!(k.vm_read(0, vmid, 0).unwrap(), 111);
    assert_eq!(k.vm_read(0, vmid, PAGE_WORDS).unwrap(), 222);
}

#[test]
fn tampered_image_is_rejected() {
    let mut k = KCore::boot(KCoreConfig::default());
    let pfns = vec![VM_POOL_PFN.0];
    for w in 0..PAGE_WORDS {
        k.mem.write(page_addr(pfns[0]) + w, w);
    }
    let words: Vec<u64> = (0..PAGE_WORDS).collect();
    let hash = KCore::image_hash(&words);
    let vmid = k.register_vm(0).unwrap();
    k.set_boot_info(0, vmid, pfns.clone(), hash).unwrap();
    k.remap_vm_image(0, vmid).unwrap();
    // KServ tampers with the staged image after registering the hash.
    k.mem.write(page_addr(pfns[0]) + 7, 0xbad);
    assert!(matches!(
        k.verify_vm_image(0, vmid),
        Err(HypercallError::HashMismatch { .. })
    ));
}

#[test]
fn grant_gives_minimal_window_and_revoke_closes_it() {
    let mut k = KCore::boot(KCoreConfig::default());
    let vmid = boot_vm(&mut k, 0, VM_POOL_PFN.0);
    k.vm_write(0, vmid, 3, 77).unwrap();
    k.vm_write(0, vmid, PAGE_WORDS + 3, 88).unwrap();
    let pa0 = k.vm(vmid).unwrap().s2.translate(&k.mem, 3).unwrap();
    let pa1 = k
        .vm(vmid)
        .unwrap()
        .s2
        .translate(&k.mem, PAGE_WORDS + 3)
        .unwrap();
    // Grant only the first page.
    k.grant_page(0, vmid, 0).unwrap();
    assert_eq!(k.kserv_read(1, pa0).unwrap(), 77);
    // Second page remains protected.
    assert_eq!(k.kserv_read(1, pa1), Err(HypercallError::AccessDenied));
    // Revoke closes the window again.
    k.revoke_page(0, vmid, 0).unwrap();
    assert!(k.kserv_read(1, pa0).is_err());
    assert!(check_invariants(&k).is_empty());
}

#[test]
fn dma_cannot_touch_other_principals() {
    let mut k = KCore::boot(KCoreConfig::default());
    let a = boot_vm(&mut k, 0, VM_POOL_PFN.0);
    let b = boot_vm(&mut k, 1, VM_POOL_PFN.0 + 8);
    k.assign_smmu_dev(0, 0, Owner::Vm(a)).unwrap();
    let a_pfn = k.vm(a).unwrap().image_pfns[0];
    let b_pfn = k.vm(b).unwrap().image_pfns[0];
    // Device of VM a can map a's pages but not b's, KServ's, or KCore's.
    k.smmu_map(0, 0, 0, a_pfn).unwrap();
    assert_eq!(
        k.smmu_map(0, 0, 64, b_pfn),
        Err(HypercallError::AccessDenied)
    );
    assert_eq!(
        k.smmu_map(0, 0, 64, VM_POOL_PFN.1 - 1),
        Err(HypercallError::AccessDenied)
    );
    assert_eq!(k.smmu_map(0, 0, 64, 0), Err(HypercallError::AccessDenied));
    assert!(check_invariants(&k).is_empty());
}

#[test]
fn reclaimed_memory_is_scrubbed_before_reuse() {
    let mut k = KCore::boot(KCoreConfig::default());
    let vmid = boot_vm(&mut k, 0, VM_POOL_PFN.0);
    k.vm_write(0, vmid, 9, 0xfeed).unwrap();
    k.vm_write(0, vmid, PAGE_WORDS + 9, 0xbeef).unwrap();
    let pa0 = k.vm(vmid).unwrap().s2.translate(&k.mem, 9).unwrap();
    let pa1 = k
        .vm(vmid)
        .unwrap()
        .s2
        .translate(&k.mem, PAGE_WORDS + 9)
        .unwrap();
    k.reclaim_vm_pages(0, vmid).unwrap();
    // KServ regains the first page but sees zeros (this also maps it into
    // KServ's stage-2, so it can no longer be donated while mapped —
    // checked below via the second page instead).
    assert_eq!(k.kserv_read(1, pa0).unwrap(), 0);
    // A second VM faulting in the *other* reclaimed page also sees zeros.
    let vmid2 = boot_vm(&mut k, 0, VM_POOL_PFN.0 + 16);
    k.handle_s2_fault(0, vmid2, 64 * PAGE_WORDS, pfn_of(pa1))
        .unwrap();
    assert_eq!(
        k.vm_read(0, vmid2, 64 * PAGE_WORDS + (pa1 % PAGE_WORDS))
            .unwrap(),
        0
    );
    // And the page KServ mapped cannot be donated while still mapped.
    assert_eq!(
        k.handle_s2_fault(0, vmid2, 65 * PAGE_WORDS, pfn_of(pa0)),
        Err(HypercallError::AccessDenied)
    );
}

#[test]
fn stage2_faults_cannot_steal_mapped_or_shared_pages() {
    let mut k = KCore::boot(KCoreConfig::default());
    let a = boot_vm(&mut k, 0, VM_POOL_PFN.0);
    let b = boot_vm(&mut k, 1, VM_POOL_PFN.0 + 8);
    // VM b asks KCore to map a page already owned by VM a: refused.
    let a_pfn = k.vm(a).unwrap().image_pfns[0];
    assert_eq!(
        k.handle_s2_fault(1, b, 64 * PAGE_WORDS, a_pfn),
        Err(HypercallError::AccessDenied)
    );
    // Nor a KCore page.
    assert_eq!(
        k.handle_s2_fault(1, b, 64 * PAGE_WORDS, 0),
        Err(HypercallError::AccessDenied)
    );
}
