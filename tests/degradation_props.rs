//! Property-based tests for the engine's graceful degradation:
//!
//! * A budget-truncated walk's emission set is always a **subset** of
//!   the exhaustive emission set (partial results are sound — what was
//!   found is real, absence proves nothing).
//! * A truncated walk's checkpoint, round-tripped through the binary
//!   format and resumed to completion, reproduces the exhaustive
//!   emission set **bit-for-bit**, at `jobs` ∈ {1, 2, 4}.

use std::collections::BTreeSet;

use proptest::prelude::*;
use vrm::explore::{
    explore, explore_from, Completeness, ExploreConfig, ResumeState, Sink, StateSpace,
};

/// A seeded pseudo-random digraph over `0..modulus`: every expansion
/// emits its state, successors are splitmix-style hashes. Small enough
/// to enumerate exhaustively, irregular enough that truncation cuts it
/// at interesting places.
struct Maze {
    seed: u64,
    modulus: u64,
    branch: u64,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl StateSpace for Maze {
    type State = u64;
    type Emit = u64;

    fn initial(&self) -> Vec<u64> {
        vec![self.seed % self.modulus]
    }

    fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
        sink.emit(*state);
        for b in 0..self.branch {
            let next = mix(state ^ self.seed ^ (b << 32)) % self.modulus;
            // A self-loop would be deduplicated anyway; skip it so some
            // states are genuinely terminal.
            if next != *state {
                sink.push(next);
            }
        }
    }
}

fn emit_set(emits: &[u64]) -> BTreeSet<u64> {
    emits.iter().copied().collect()
}

fn exhaustive_set(space: &Maze) -> BTreeSet<u64> {
    let r = explore(space, &ExploreConfig::default()).expect("sequential walk cannot fail");
    assert!(r.stats.completeness.is_exhaustive());
    emit_set(&r.emits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partial results are sound: whatever a starved walk emits, the
    /// exhaustive walk also emits.
    #[test]
    fn truncated_emissions_are_a_subset_of_exhaustive(
        seed in 0u64..1_000_000,
        modulus in 2u64..300,
        branch in 1u64..4,
        budget in 1usize..64,
    ) {
        let space = Maze { seed, modulus, branch };
        let full = exhaustive_set(&space);
        let r = explore(&space, &ExploreConfig::with_max_states(budget))
            .expect("sequential walk cannot fail");
        let partial = emit_set(&r.emits);
        prop_assert!(
            partial.is_subset(&full),
            "truncated walk emitted states the exhaustive walk never saw: {:?}",
            partial.difference(&full).collect::<Vec<_>>()
        );
        // The walk either covered everything or honestly said it did not
        // (and then a resume checkpoint must be attached).
        match r.stats.completeness {
            Completeness::Exhaustive => prop_assert_eq!(&partial, &full),
            Completeness::Truncated { .. } => prop_assert!(r.resume.is_some()),
        }
    }

    /// Checkpoint → byte round-trip → resume reproduces the exhaustive
    /// emission set exactly, whatever worker count drives each leg.
    #[test]
    fn checkpoint_resume_reproduces_exhaustive_set(
        seed in 0u64..1_000_000,
        modulus in 2u64..300,
        branch in 1u64..4,
        budget in 1usize..32,
    ) {
        let space = Maze { seed, modulus, branch };
        let full = exhaustive_set(&space);
        for jobs in [1usize, 2, 4] {
            let mut acc: BTreeSet<u64> = BTreeSet::new();
            let first = explore(
                &space,
                &ExploreConfig::with_max_states(budget).jobs(jobs),
            )
            .expect("workers must survive");
            acc.extend(first.emits.iter().copied());
            let mut resume = first.resume;
            let mut legs = 0;
            while let Some(ckpt) = resume {
                // Serialize through the binary checkpoint format each
                // leg so the property also covers the encoding.
                let bytes = ckpt.to_bytes();
                let ckpt = ResumeState::<u64>::from_bytes(&bytes)
                    .expect("checkpoint must round-trip");
                let leg = explore_from(
                    &space,
                    &ExploreConfig::with_max_states(budget.max(8)).jobs(jobs),
                    Some(ckpt),
                )
                .expect("workers must survive");
                acc.extend(leg.emits.iter().copied());
                resume = leg.resume;
                legs += 1;
                prop_assert!(legs < 10_000, "resume loop failed to converge");
            }
            prop_assert_eq!(
                &acc,
                &full,
                "resumed union differs from exhaustive set at jobs={}",
                jobs
            );
        }
    }
}
