//! Tier-1 contract for vrm-serve's durability layer: a daemon given a
//! `state_dir` must come back from a restart serving the same answers
//! it computed before — verdicts *and* parked checkpoints — and must
//! refuse to resurrect a corrupted log record.
//!
//! These tests drive the in-process [`Service`] (graceful shutdown /
//! restart); the SIGKILL variant over a real daemon process lives in
//! `crates/serve/tests/crash_recovery.rs`.

use std::path::PathBuf;
use std::time::Duration;

use vrm::explore::Verdict;
use vrm::obs::{serve as counters, Counter};
use vrm::serve::{JobConfig, JobResult, JobSpec, ServeConfig, Service, SubmitOutcome};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("vrm-serve-store-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn unmap() -> JobSpec {
    JobSpec::Schedules {
        workload: "unmap".into(),
    }
}

fn budget(max_states: usize) -> JobConfig {
    JobConfig {
        max_states,
        jobs: 1,
        escalate: false,
    }
}

/// Submits and waits; returns the result plus whether it was cached.
fn submit_wait(svc: &Service, spec: JobSpec, cfg: JobConfig) -> (JobResult, bool) {
    match svc.submit(spec, cfg).expect("submit") {
        SubmitOutcome::Cached { result, .. } => (result, true),
        SubmitOutcome::Queued(id) => {
            let snap = svc.wait(id);
            (
                snap.result
                    .expect("done job has a result")
                    .expect("job result"),
                false,
            )
        }
    }
}

fn durable_cfg(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        workers: 1,
        state_dir: Some(dir.to_path_buf()),
        ..Default::default()
    }
}

fn armed() -> bool {
    // Injected WAL write failures (VRM_FAULT_SEED) deliberately drop
    // records, voiding the exact durability assertions below.
    std::env::var_os("VRM_FAULT_SEED").is_some()
}

#[test]
fn verdicts_and_checkpoints_survive_a_restart() {
    if armed() {
        return;
    }
    let dir = temp_dir("roundtrip");

    // First life: an under-budget Unknown (which parks a checkpoint)
    // and a full refinement Pass, both written ahead to the WAL. The
    // second job is deliberately checkpoint-free so the parked walk is
    // still on disk when the daemon dies.
    let refinement = JobSpec::Refinement {
        workload: "unmap".into(),
    };
    let svc = Service::start(durable_cfg(&dir));
    let (small, small_cached) = submit_wait(&svc, unmap(), budget(40));
    assert!(!small_cached);
    assert!(small.verdict.is_unknown(), "{:?}", small.verdict);
    let (full, full_cached) = submit_wait(&svc, refinement.clone(), JobConfig::default());
    assert!(!full_cached);
    assert_eq!(full.verdict, Verdict::Pass);
    svc.shutdown();
    drop(svc);

    // Second life, same state dir: both verdicts must be served from
    // the replayed cache, bit-identical to the first computation.
    let replayed = Counter::new(counters::WAL_REPLAYED);
    let r0 = replayed.get();
    let svc = Service::start(durable_cfg(&dir));
    assert!(replayed.get() > r0, "restart must replay the WAL");
    let (small2, cached) = submit_wait(&svc, unmap(), budget(40));
    assert!(cached, "warm re-query must hit the replayed cache");
    assert_eq!(small2.verdict, small.verdict);
    assert_eq!(small2.states, small.states);
    assert_eq!(small2.detail, small.detail);
    assert_eq!(
        small2.wall_ns, small.wall_ns,
        "cached replies report the original cost"
    );
    let (full2, cached) = submit_wait(&svc, refinement, JobConfig::default());
    assert!(cached);
    assert_eq!(full2.verdict, full.verdict);
    assert_eq!(full2.states, full.states);
    assert_eq!(full2.detail, full.detail);

    // The parked checkpoint survived serialization, the WAL, and the
    // restart: a doubled budget resumes the paid-for walk exactly
    // where the first life's budget cut it.
    let (doubled, cached) = submit_wait(&svc, unmap(), budget(80));
    assert!(!cached, "a new budget is a new digest");
    assert_eq!(doubled.verdict, Verdict::Pass, "{}", doubled.detail);
    assert!(
        doubled.resumed,
        "the replayed checkpoint must be resumed, not recomputed"
    );
    assert_eq!(
        small.states + doubled.states_new,
        doubled.states,
        "resume must continue exactly where the first life stopped"
    );
    svc.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupted_wal_record_is_skipped_not_served() {
    if armed() {
        return;
    }
    let dir = temp_dir("corrupt");

    let svc = Service::start(durable_cfg(&dir));
    let (small, _) = submit_wait(&svc, unmap(), budget(40));
    assert!(small.verdict.is_unknown());
    let (full, _) = submit_wait(&svc, unmap(), JobConfig::default());
    assert_eq!(full.verdict, Verdict::Pass);
    svc.shutdown();
    drop(svc);

    // Flip the last payload byte of the final record (the Pass
    // verdict), leaving its trailing 8-byte checksum intact.
    let wal = dir.join(vrm::serve::store::WAL_FILE);
    let mut bytes = std::fs::read(&wal).expect("wal exists");
    let n = bytes.len();
    bytes[n - 9] ^= 0x01;
    std::fs::write(&wal, &bytes).expect("rewrite wal");

    let skipped = Counter::new(counters::WAL_CORRUPT_SKIPPED);
    let s0 = skipped.get();
    let svc = Service::start(durable_cfg(&dir));
    assert!(
        skipped.get() > s0,
        "the checksum-bad record must be counted as skipped"
    );
    // The corrupted verdict is gone — recomputed, not resurrected…
    let (full2, cached) = submit_wait(&svc, unmap(), JobConfig::default());
    assert!(!cached, "a corrupted record must not be served from cache");
    assert_eq!(full2.verdict, Verdict::Pass);
    // …while every record before it replayed intact.
    let (small2, cached) = submit_wait(&svc, unmap(), budget(40));
    assert!(cached, "records before the corruption must survive");
    assert_eq!(small2.verdict, small.verdict);
    svc.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_unknown_is_reexplored_from_its_checkpoint() {
    // Satellite contract: a cached `Unknown` is not a fact, only the
    // best answer a past budget could buy — after its TTL it must be
    // re-explored (from the parked checkpoint) instead of re-served.
    let svc = Service::start(ServeConfig {
        workers: 1,
        unknown_ttl: Some(Duration::from_millis(50)),
        ..Default::default()
    });
    let (first, cached) = submit_wait(&svc, unmap(), budget(40));
    assert!(!cached);
    assert!(first.verdict.is_unknown());

    // Within the TTL the Unknown is served from cache.
    let (_, cached) = submit_wait(&svc, unmap(), budget(40));
    assert!(cached, "a fresh Unknown is still served");

    std::thread::sleep(Duration::from_millis(120));
    let expired = Counter::new(counters::UNKNOWN_EXPIRED);
    let e0 = expired.get();
    let (again, cached) = submit_wait(&svc, unmap(), budget(40));
    assert!(!cached, "an expired Unknown must not be served");
    assert!(expired.get() > e0, "the expiry must be counted");
    assert!(
        again.resumed,
        "the re-exploration must start from the parked checkpoint"
    );
    svc.shutdown();
}
