//! Randomized adversary: a KServ that throws every access and hypercall
//! it can at the hypervisor must never reach VM or KCore memory, and the
//! system invariants must hold after every attack.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use vrm::sekvm::layout::{self, page_addr, PAGE_WORDS, VM_POOL_PFN};
use vrm::sekvm::security::check_invariants;
use vrm::sekvm::wdrf::validate_log;
use vrm::sekvm::{HypercallError, KCore, KCoreConfig, Owner};

fn boot_vm(k: &mut KCore, cpu: usize, base_pfn: u64) -> u32 {
    let pfns = vec![base_pfn, base_pfn + 1];
    let mut words = Vec::new();
    for &pfn in &pfns {
        for w in 0..PAGE_WORDS {
            let v = pfn * 3 + w;
            k.mem.write(page_addr(pfn) + w, v);
            words.push(v);
        }
    }
    let hash = KCore::image_hash(&words);
    let vmid = k.register_vm(cpu).unwrap();
    k.register_vcpu(cpu, vmid).unwrap();
    k.set_boot_info(cpu, vmid, pfns, hash).unwrap();
    k.remap_vm_image(cpu, vmid).unwrap();
    k.verify_vm_image(cpu, vmid).unwrap();
    vmid
}

/// Secret marker written into every page the VM owns.
const SECRET: u64 = 0x5ec5ec5ec;

/// Base seed for every randomized run, overridable with `VRM_FUZZ_SEED`
/// to reproduce (or widen) a failing campaign; each test offsets from it.
fn base_seed() -> u64 {
    std::env::var("VRM_FUZZ_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn randomized_kserv_attacks_never_breach_isolation() {
    let base = base_seed();
    for seed in base..base + 6 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0, VM_POOL_PFN.0);
        // Mark the VM's pages with secrets.
        let gpa_data = 64 * PAGE_WORDS;
        k.handle_s2_fault(0, vmid, gpa_data, VM_POOL_PFN.0 + 4)
            .unwrap();
        k.vm_write(0, vmid, gpa_data, SECRET).unwrap();
        k.vm_write(0, vmid, 0, SECRET).unwrap();
        let vm_pfns = k.s2pages.owned_by(Owner::Vm(vmid));

        for _ in 0..400 {
            let attack = rng.gen_range(0..6);
            let vm_pfn = vm_pfns[rng.gen_range(0..vm_pfns.len())];
            let off = rng.gen_range(0..PAGE_WORDS);
            let pa = page_addr(vm_pfn) + off;
            match attack {
                // Direct reads/writes of VM memory through KServ's S2.
                0 => {
                    assert_eq!(k.kserv_read(1, pa), Err(HypercallError::AccessDenied));
                }
                1 => {
                    assert_eq!(
                        k.kserv_write(1, pa, 0xbad),
                        Err(HypercallError::AccessDenied)
                    );
                }
                // Reads/writes of KCore-private memory.
                2 => {
                    let kpa = page_addr(rng.gen_range(0..layout::EL2_POOL_PFN.1));
                    assert!(k.kserv_read(1, kpa).is_err());
                    assert!(k.kserv_write(1, kpa, 0xbad).is_err());
                }
                // Donating a VM page to another VM.
                3 => {
                    let r = k
                        .register_vm(1)
                        .and_then(|v2| k.handle_s2_fault(1, v2, 0, vm_pfn).map(|_| v2));
                    assert!(r.is_err(), "VRM_FUZZ_SEED={seed}: stole VM page via fault");
                }
                // Mapping VM or KCore pages for DMA via a KServ device.
                4 => {
                    assert_eq!(
                        k.smmu_map(1, 1, rng.gen_range(0..64) * PAGE_WORDS, vm_pfn),
                        Err(HypercallError::AccessDenied)
                    );
                    assert_eq!(
                        k.smmu_map(1, 1, 0, rng.gen_range(0..layout::KCORE_PFN.1)),
                        Err(HypercallError::AccessDenied)
                    );
                }
                // Re-registering boot info over the verified VM.
                _ => {
                    assert!(k
                        .set_boot_info(1, vmid, vec![VM_POOL_PFN.0 + 30], 0)
                        .is_err());
                }
            }
        }
        // After the barrage: secrets intact, invariants hold, no wDRF
        // violations were induced.
        assert_eq!(k.vm_read(0, vmid, gpa_data).unwrap(), SECRET);
        assert_eq!(k.vm_read(0, vmid, 0).unwrap(), SECRET);
        assert!(check_invariants(&k).is_empty(), "VRM_FUZZ_SEED={seed}");
        assert!(validate_log(&k.log).is_empty(), "VRM_FUZZ_SEED={seed}");
    }
}

#[test]
fn randomized_attacks_with_sharing_window() {
    // Even while one page is legitimately granted, everything else stays
    // protected, and revocation closes the window.
    let mut rng = StdRng::seed_from_u64(base_seed().wrapping_add(99));
    let mut k = KCore::boot(KCoreConfig::default());
    let vmid = boot_vm(&mut k, 0, VM_POOL_PFN.0);
    let gpa = 64 * PAGE_WORDS;
    k.handle_s2_fault(0, vmid, gpa, VM_POOL_PFN.0 + 4).unwrap();
    k.vm_write(0, vmid, gpa + 1, 42).unwrap();
    k.vm_write(0, vmid, 0, SECRET).unwrap();
    k.grant_page(0, vmid, gpa).unwrap();
    let shared_pa = k.vm(vmid).unwrap().s2.translate(&k.mem, gpa).unwrap();
    let image_pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 0).unwrap();
    for _ in 0..200 {
        // Shared page: readable.
        assert_eq!(k.kserv_read(1, shared_pa + 1).unwrap(), 42);
        // Unshared page: still protected.
        assert!(k.kserv_read(1, image_pa + rng.gen_range(0..8)).is_err());
    }
    k.revoke_page(0, vmid, gpa).unwrap();
    assert!(k.kserv_read(1, shared_pa + 1).is_err());
    assert!(check_invariants(&k).is_empty());
}
