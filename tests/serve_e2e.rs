//! End-to-end contract for the `vrm-serve` daemon, over a real TCP
//! socket with concurrent clients:
//!
//! * a cold pass of the full litmus corpus through 4 parallel clients
//!   returns exactly the verdicts the in-process `run_litmus` pipeline
//!   produces (at both 1 and 2 engine workers — verdicts are
//!   driver-independent, which is why `jobs` is not part of the cache
//!   key);
//! * an immediately repeated pass is answered entirely from the
//!   verdict cache: every reply is `cached:true` and the daemon
//!   explores **zero** new states (pinned via the process-global
//!   `serve/*` counters);
//! * an `Unknown` schedule walk re-queried with a doubled budget
//!   resumes from its parked checkpoint instead of starting over.
//!
//! vrm-obs counters are process-global, so everything lives in one
//! test function — parallel test binaries would tangle the deltas.

use std::sync::{Arc, Mutex};

use vrm::memmodel::parser::parse;
use vrm::memmodel::runner::{run_litmus, RunOverrides};
use vrm::obs::json::ObjWriter;
use vrm::obs::{serve as counters, Counter};
use vrm::serve::server::{serve, Endpoint};
use vrm::serve::{Client, ServeConfig, Service};

const CLIENTS: usize = 4;

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 23, "expected a corpus, found {files:?}");
    files
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).unwrap();
            (name, text)
        })
        .collect()
}

fn litmus_line(text: &str, jobs: u64) -> String {
    let mut w = ObjWriter::new();
    w.field_str("op", "submit")
        .field_str("kind", "litmus")
        .field_str("program", text)
        .field_u64("jobs", jobs);
    w.finish()
}

fn schedules_line(workload: &str, max_states: u64) -> String {
    let mut w = ObjWriter::new();
    w.field_str("op", "submit")
        .field_str("kind", "schedules")
        .field_str("workload", workload)
        .field_u64("max_states", max_states)
        .field_u64("jobs", 1);
    w.finish()
}

/// Replays `lines` through `CLIENTS` concurrent TCP clients
/// (round-robin split) and returns `(index, reply)` pairs in corpus
/// order.
fn replay(endpoint: &Endpoint, lines: &[String], jobs: u64) -> Vec<(usize, vrm::serve::Reply)> {
    let out = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let out = Arc::clone(&out);
            let endpoint = endpoint.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&endpoint).expect("connect");
                for (i, line) in lines.iter().enumerate().skip(c).step_by(CLIENTS) {
                    let line = litmus_line(line, jobs);
                    let reply = client.request(&line).expect("request");
                    out.lock().unwrap().push((i, reply));
                }
            });
        }
    });
    let mut replies = Arc::try_unwrap(out).unwrap().into_inner().unwrap();
    replies.sort_by_key(|(i, _)| *i);
    replies
}

#[test]
fn daemon_matches_cli_caches_repeats_and_resumes_unknowns() {
    if std::env::var_os("VRM_FAULT_SEED").is_some() {
        // Injected frame cuts would tear replies mid-line and void the
        // exact cache/counter pins below; the chaos CI job is what
        // drives a fault-armed daemon.
        return;
    }
    let corpus = corpus();

    // In-process baseline at both worker counts: the bit-match target.
    let mut direct = Vec::new();
    for (name, text) in &corpus {
        let parsed = parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let seq = run_litmus(
            &parsed,
            &RunOverrides {
                jobs: Some(1),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let par = run_litmus(
            &parsed,
            &RunOverrides {
                jobs: Some(2),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            seq.exit_code(),
            par.exit_code(),
            "{name}: verdict is not driver-independent"
        );
        direct.push(seq.exit_code());
    }

    let svc = Service::start(ServeConfig {
        workers: CLIENTS,
        ..Default::default()
    });
    let handle =
        serve(Arc::clone(&svc), &Endpoint::Tcp("127.0.0.1:0".into())).expect("bind 127.0.0.1:0");
    let endpoint = handle.local().clone();

    let texts: Vec<String> = corpus.iter().map(|(_, t)| t.clone()).collect();
    let hit = Counter::new(counters::CACHE_HIT);
    let miss = Counter::new(counters::CACHE_MISS);
    let explored = Counter::new(counters::STATES_EXPLORED);

    // Cold pass, sequential engine (jobs=1), 4 concurrent clients.
    let (hit0, miss0, explored0) = (hit.get(), miss.get(), explored.get());
    for (i, reply) in replay(&endpoint, &texts, 1) {
        let (name, _) = &corpus[i];
        assert_eq!(reply.status, "done", "{name}: {}", reply.raw);
        assert_eq!(
            reply.exit_code,
            Some(direct[i]),
            "{name}: daemon verdict diverged from run_litmus\n{}",
            reply.raw
        );
        assert!(!reply.cached, "{name}: cold pass must not be cached");
    }
    assert_eq!(miss.get() - miss0, corpus.len() as u64, "cold pass misses");
    assert_eq!(hit.get() - hit0, 0, "cold pass must not hit the cache");
    assert!(explored.get() > explored0, "cold pass explored nothing");

    // Warm pass at jobs=2: `jobs` is outside the cache key, so every
    // query is a hit and the daemon explores zero new states.
    let (hit1, explored1) = (hit.get(), explored.get());
    for (i, reply) in replay(&endpoint, &texts, 2) {
        let (name, _) = &corpus[i];
        assert_eq!(
            reply.exit_code,
            Some(direct[i]),
            "{name}: cached verdict diverged\n{}",
            reply.raw
        );
        assert!(reply.cached, "{name}: warm pass must be served from cache");
        assert_eq!(reply.states_new, 0, "{name}: cached reply explored states");
    }
    assert_eq!(hit.get() - hit1, corpus.len() as u64, "warm pass hits");
    assert_eq!(
        explored.get() - explored1,
        0,
        "warm pass must explore zero new states"
    );

    // Unknown + checkpoint resume: the unmap schedule walk needs 117
    // states; a 40-state budget parks a checkpoint, and the doubled
    // budget continues it (fresh states < total) instead of restarting.
    let resume = Counter::new(counters::CHECKPOINT_RESUME);
    let resume0 = resume.get();
    let mut client = Client::connect(&endpoint).expect("connect");
    let small = client
        .request(&schedules_line("unmap", 40))
        .expect("request");
    assert_eq!(small.exit_code, Some(3), "under-budget walk: {}", small.raw);
    assert_eq!(small.verdict.as_deref(), Some("unknown"));
    assert!(!small.resumed);

    let doubled = client
        .request(&schedules_line("unmap", 80))
        .expect("request");
    assert_eq!(
        doubled.exit_code,
        Some(0),
        "doubled budget: {}",
        doubled.raw
    );
    assert!(
        doubled.resumed,
        "doubled-budget re-query must resume the parked checkpoint: {}",
        doubled.raw
    );
    assert!(
        doubled.states_new < doubled.states,
        "resume re-explored everything: new {} of {}",
        doubled.states_new,
        doubled.states
    );
    assert_eq!(
        small.states + doubled.states_new,
        doubled.states,
        "resumed walk must continue exactly where the budget cut it"
    );
    assert_eq!(resume.get() - resume0, 1, "exactly one checkpoint resume");

    svc.shutdown();
    handle.stop();
}
