//! Round-trip: pretty-printing every parsed `.litmus` file back to
//! source and re-parsing it must reproduce the identical program,
//! checks, location map and config. This pins the `Display` impl to the
//! grammar so the two can never drift apart.

use proptest::prelude::*;

use vrm::memmodel::gen::{self, GenConfig};
use vrm::memmodel::parser::parse;

#[test]
fn corpus_round_trips_through_display() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 31, "expected a corpus, found {files:?}");
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let first = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let printed = first.to_string();
        let second = parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", path.display()));
        assert_eq!(
            first.program,
            second.program,
            "{}: program drifted\n--- printed ---\n{printed}",
            path.display()
        );
        assert_eq!(
            first.checks,
            second.checks,
            "{}: checks drifted\n{printed}",
            path.display()
        );
        assert_eq!(
            first.locations,
            second.locations,
            "{}: location map drifted\n{printed}",
            path.display()
        );
        assert_eq!(
            first.run_axiomatic,
            second.run_axiomatic,
            "{}",
            path.display()
        );
        assert_eq!(
            first.promising.promises,
            second.promising.promises,
            "{}",
            path.display()
        );
        assert_eq!(
            first.promising.max_promises_per_thread,
            second.promising.max_promises_per_thread,
            "{}",
            path.display()
        );
        assert_eq!(
            first.promising.value_cfg.max_rounds,
            second.promising.value_cfg.max_rounds,
            "{}",
            path.display()
        );

        // And the printer is a fixed point: print(parse(print(p))) == print(p).
        assert_eq!(printed, second.to_string(), "{}", path.display());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every program the litmus generator emits survives
    /// parse → print → reparse as a fixed point, over the generator's
    /// full shape space (2–4 threads, all edge/fence/decoration mixes).
    /// This pins the generator's emitted grammar to the parser the same
    /// way the corpus test pins the hand-written files.
    #[test]
    fn generated_cycles_round_trip_through_display(seed in 0u64..1_000_000) {
        let text = gen::render_text(&gen::sample_cycle(seed, &GenConfig::default()), &GenConfig::default());
        let first = parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        let printed = first.to_string();
        let second = parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&first.program, &second.program, "seed {} program drifted\n{}", seed, &printed);
        prop_assert_eq!(&first.locations, &second.locations, "seed {}", seed);
        prop_assert_eq!(first.promising.promises, second.promising.promises, "seed {}", seed);
        prop_assert_eq!(printed.clone(), second.to_string(), "seed {} not a fixed point", seed);
    }

    /// Same fixed-point property for generated page-table-walk programs
    /// (vm config, initrange-expanded page contents, tlbi/ldrv forms).
    #[test]
    fn generated_walks_round_trip_through_display(seed in 0u64..1_000_000) {
        let first = gen::sample_walk(seed).parsed;
        let printed = first.to_string();
        let second = parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&first.program, &second.program, "seed {} program drifted\n{}", seed, &printed);
        prop_assert_eq!(printed.clone(), second.to_string(), "seed {} not a fixed point", seed);
    }
}
