//! Round-trip: pretty-printing every parsed `.litmus` file back to
//! source and re-parsing it must reproduce the identical program,
//! checks, location map and config. This pins the `Display` impl to the
//! grammar so the two can never drift apart.

use vrm::memmodel::parser::parse;

#[test]
fn corpus_round_trips_through_display() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("litmus/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 23, "expected a corpus, found {files:?}");
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let first = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let printed = first.to_string();
        let second = parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", path.display()));
        assert_eq!(
            first.program,
            second.program,
            "{}: program drifted\n--- printed ---\n{printed}",
            path.display()
        );
        assert_eq!(
            first.checks,
            second.checks,
            "{}: checks drifted\n{printed}",
            path.display()
        );
        assert_eq!(
            first.locations,
            second.locations,
            "{}: location map drifted\n{printed}",
            path.display()
        );
        assert_eq!(
            first.run_axiomatic,
            second.run_axiomatic,
            "{}",
            path.display()
        );
        assert_eq!(
            first.promising.promises,
            second.promising.promises,
            "{}",
            path.display()
        );
        assert_eq!(
            first.promising.max_promises_per_thread,
            second.promising.max_promises_per_thread,
            "{}",
            path.display()
        );
        assert_eq!(
            first.promising.value_cfg.max_rounds,
            second.promising.value_cfg.max_rounds,
            "{}",
            path.display()
        );

        // And the printer is a fixed point: print(parse(print(p))) == print(p).
        assert_eq!(printed, second.to_string(), "{}", path.display());
    }
}
