//! The mutation campaign is only evidence if it stays at 100%: every
//! curated mutant must be killed by its designated oracle, and the JSON
//! report must name each one. CI runs this via `cargo test` and again
//! through the `mutate` binary.

use vrm::mutate::{curated, not_killed, run, to_json, to_table, CampaignConfig, Layer, Status};

#[test]
fn curated_campaign_kills_every_mutant() {
    let specs = curated();
    assert!(specs.len() >= 20, "campaign shrank to {}", specs.len());
    let report = run(&specs, &CampaignConfig::default());
    let missed: Vec<String> = not_killed(&report)
        .iter()
        .map(|r| format!("{} ({}): {}", r.name, r.status.as_str(), r.detail))
        .collect();
    assert!(
        report.all_killed(),
        "campaign kill rate {:.1}% — not killed:\n  {}\n\n{}",
        report.kill_rate() * 100.0,
        missed.join("\n  "),
        to_table(&report)
    );
    assert_eq!(report.kill_rate(), 1.0);
    assert_eq!(report.timeouts(), 0);

    // Every layer contributed, and the explorations actually ran.
    for layer in [
        Layer::Litmus,
        Layer::Kernel,
        Layer::Machine,
        Layer::Spec,
        Layer::Serve,
    ] {
        assert!(
            report.results.iter().any(|r| r.layer == layer),
            "no mutants in {layer:?}"
        );
    }
    // The spec layer's refinement oracle carries at least the three new
    // simulation-breaking mutants plus the rekeyed scrub mutant.
    assert!(
        report
            .results
            .iter()
            .filter(|r| r.layer == Layer::Spec && r.status == Status::Killed)
            .count()
            >= 3,
        "fewer than 3 killed spec-layer mutants"
    );
    assert!(report.stats.states > 0);

    // The JSON report names every mutant with its oracle and status.
    let json = to_json(&report);
    for r in &report.results {
        assert!(json.contains(&format!("\"name\":\"{}\"", r.name)), "{json}");
        assert!(json.contains(&format!("\"oracle\":\"{}\"", r.oracle.as_str())));
    }
    assert!(json.contains("\"kill_rate\": 1.0000"), "{json}");
}

#[test]
fn unmutated_subjects_pass_their_oracles() {
    // The campaign's kill signal is meaningless if the *unmutated*
    // subjects would fail too. Spot-check the cheapest oracle of each
    // layer on pristine inputs.
    use vrm::core::pushpull::check_pushpull;
    use vrm::core::{paper_examples, KernelSpec};
    use vrm::memmodel::litmus::{battery, check_with_jobs};
    use vrm::memmodel::promising::PromisingConfig;

    let sb = battery()
        .into_iter()
        .find(|t| t.name() == "SB+dmbs")
        .unwrap();
    assert!(check_with_jobs(&sb, 1).unwrap().verdicts_match);

    let lock = paper_examples::gen_vmid_program(true);
    let mut spec = KernelSpec::for_kernel_threads([0, 1]);
    spec.shared_data = [0x12].into();
    let cfg = PromisingConfig {
        promises: false,
        ..Default::default()
    };
    let r = check_pushpull(&lock, &spec, &cfg).unwrap();
    assert!(r.drf_kernel_holds() && r.no_barrier_misuse_holds());
}

#[test]
fn every_status_renders_in_reports() {
    // Status strings are part of the JSON schema consumed by CI.
    assert_eq!(Status::Killed.as_str(), "killed");
    assert_eq!(Status::Survived.as_str(), "survived");
    assert_eq!(Status::Timeout.as_str(), "timeout");
}
