//! Observability schema contract (docs/TELEMETRY.md): trace lines and
//! bench files must parse back under the pinned schemas, counters must
//! stay monotone, and the deterministic work counters must be identical
//! across the sequential and parallel drivers.
//!
//! All tests in this binary share one process-global trace sink, so
//! every test installs the in-memory sink first — whichever thread gets
//! there first wins, and the rest see tracing already on. Lines drained
//! from the sink may interleave across concurrently running tests;
//! assertions therefore filter by span/scope name rather than assuming
//! exclusive ownership of the stream.

use vrm::memmodel::litmus::battery;
use vrm::memmodel::sc::{enumerate_sc_with, ScConfig};
use vrm::obs::json::parse;
use vrm::obs::{BenchFile, BenchRecord, BENCH_SCHEMA};

/// The known trace line types, per docs/TELEMETRY.md.
const LINE_TYPES: [&str; 4] = ["span", "event", "metrics", "profile"];

fn mp_program() -> vrm::memmodel::Program {
    battery()
        .into_iter()
        .find(|t| t.program.name.contains("MP"))
        .expect("battery has an MP test")
        .program
}

#[test]
fn trace_lines_parse_back_under_the_pinned_schema() {
    vrm::obs::install_memory_sink();
    assert!(vrm::obs::enabled(), "memory sink should turn tracing on");
    let prog = mp_program();
    enumerate_sc_with(&prog, &ScConfig::default()).expect("SC enumeration");
    let lines = vrm::obs::drain_memory_sink();
    assert!(
        !lines.is_empty(),
        "an enumeration under tracing emits spans"
    );
    let mut saw_enumerate_span = false;
    for line in &lines {
        let v = parse(line).unwrap_or_else(|| panic!("unparseable trace line: {line}"));
        let ty = v
            .get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_else(|| panic!("trace line without type: {line}"));
        assert!(LINE_TYPES.contains(&ty), "unknown trace line type {ty:?}");
        match ty {
            "span" => {
                let name = v.get("name").and_then(|n| n.as_str()).expect("span.name");
                assert!(v.get("t_us").and_then(|t| t.as_u64()).is_some());
                assert!(v.get("dur_us").and_then(|t| t.as_u64()).is_some());
                assert!(v.get("thread").and_then(|t| t.as_str()).is_some());
                if name == "enumerate.sc" {
                    saw_enumerate_span = true;
                }
            }
            "event" => {
                assert!(v.get("name").and_then(|n| n.as_str()).is_some());
                assert!(v.get("t_us").and_then(|t| t.as_u64()).is_some());
            }
            "metrics" => {
                assert!(v.get("seq").and_then(|s| s.as_u64()).is_some());
                assert!(v.get("counters").and_then(|c| c.as_obj()).is_some());
            }
            "profile" => {
                assert!(v.get("scope").and_then(|s| s.as_str()).is_some());
                assert!(v.get("phases").and_then(|p| p.as_obj()).is_some());
            }
            _ => unreachable!(),
        }
    }
    assert!(
        saw_enumerate_span,
        "the SC enumeration's own span must be in the drained stream"
    );
}

#[test]
fn bench_file_round_trips_through_disk_and_pins_its_schema() {
    vrm::obs::install_memory_sink();
    // The schema tag is a contract with docs/TELEMETRY.md and with every
    // committed BENCH_*.json baseline: bumping it is a deliberate act.
    assert_eq!(BENCH_SCHEMA, "vrm-bench/v1");

    let mut f = BenchFile::new("explore");
    f.records.push(
        BenchRecord::new("litmus/MP")
            .param("jobs", 4)
            .metric("states", 139)
            .metric("wall_ns", 5_600_000)
            .metric("exit_code", 0),
    );
    let path = std::env::temp_dir().join(format!("vrm-obs-schema-{}.json", std::process::id()));
    f.write_to(&path).expect("write bench file");
    let back = BenchFile::read_from(&path).expect("read bench file back");
    std::fs::remove_file(&path).ok();
    assert_eq!(back, f);
    assert_eq!(
        back.get("litmus/MP").unwrap().get_metric("states"),
        Some(139)
    );

    // An unknown schema version must be rejected, not misread.
    let hacked = f.to_json().replace("vrm-bench/v1", "vrm-bench/v0");
    assert!(BenchFile::from_json(&hacked).is_none());
}

#[test]
fn global_counters_are_monotone_across_snapshots() {
    vrm::obs::install_memory_sink();
    let prog = mp_program();
    let before = vrm::obs::snapshot(vrm::obs::now_ns());
    enumerate_sc_with(&prog, &ScConfig::default()).expect("SC enumeration");
    let after = vrm::obs::snapshot(vrm::obs::now_ns());
    assert!(after.seq > before.seq, "snapshot sequence must advance");
    for (name, v) in &before.counters {
        let later = after
            .get(name)
            .unwrap_or_else(|| panic!("counter {name} disappeared between snapshots"));
        assert!(later >= *v, "counter {name} went backwards: {later} < {v}");
    }
    // The enumeration itself must be visible in the process-wide totals.
    let popped = |s: &vrm::obs::MetricsSnapshot| s.get("explore.states_popped").unwrap_or(0);
    assert!(
        popped(&after) > popped(&before),
        "an SC enumeration increments explore.states_popped"
    );
}

#[test]
fn work_counters_are_identical_across_jobs_1_and_4() {
    vrm::obs::install_memory_sink();
    // Injected worker panics requeue in-flight states, which legitimately
    // perturbs popped counts; this invariant only holds fault-free.
    if std::env::var("VRM_FAULT_SEED").is_ok() {
        return;
    }
    // The cross-driver identity is an *exhaustive*-walk invariant: the
    // reduced drivers prune differently per driver (the sequential one
    // adds sleep sets on top of ample sets — docs/REDUCTION.md), so the
    // pinned comparison runs with reduction off.
    let prog = mp_program();
    let seq = enumerate_sc_with(
        &prog,
        &ScConfig {
            jobs: 1,
            reduction: false,
            ..Default::default()
        },
    )
    .expect("sequential SC");
    let par = enumerate_sc_with(
        &prog,
        &ScConfig {
            jobs: 4,
            reduction: false,
            ..Default::default()
        },
    )
    .expect("parallel SC");
    // Counts are driver-independent for a full walk; timings and steals
    // are scheduling-dependent and deliberately not compared.
    assert_eq!(seq.stats.states, par.stats.states);
    assert_eq!(seq.stats.popped, par.stats.popped);
    assert_eq!(seq.stats.pushed, par.stats.pushed);
    assert_eq!(seq.stats.dedup_hits, par.stats.dedup_hits);
    assert_eq!(seq.len(), par.len(), "outcome sets must agree");
    assert_eq!(seq.stats.steals, 0, "the sequential driver never steals");
}

#[test]
fn reduced_work_counters_are_deterministic_per_driver() {
    vrm::obs::install_memory_sink();
    if std::env::var("VRM_FAULT_SEED").is_ok() {
        return;
    }
    // Under reduction (the default) counts are a per-driver anchor, not
    // a cross-driver one: re-running the same (program, jobs) config
    // must reproduce them exactly — that is what lets BENCH_explore.json
    // pin the jobs=1 `reduction/*` record pairs — and every driver must
    // still agree on the outcome set, never exceeding the full walk.
    let prog = mp_program();
    let full = enumerate_sc_with(
        &prog,
        &ScConfig {
            jobs: 1,
            reduction: false,
            ..Default::default()
        },
    )
    .expect("exhaustive SC");
    for jobs in [1, 4] {
        let cfg = ScConfig {
            jobs,
            ..Default::default()
        };
        let a = enumerate_sc_with(&prog, &cfg).expect("reduced SC");
        let b = enumerate_sc_with(&prog, &cfg).expect("reduced SC rerun");
        assert_eq!(a.stats.states, b.stats.states, "jobs={jobs}");
        assert_eq!(a.stats.popped, b.stats.popped, "jobs={jobs}");
        assert_eq!(a, full, "jobs={jobs}: reduced outcome set must match");
        assert!(
            a.stats.states <= full.stats.states,
            "jobs={jobs}: reduction must not grow the walk"
        );
    }
}
