//! Cross-crate integration: the end-to-end wDRF verification pipeline —
//! litmus-scale checks from `vrm-core` feeding the machine-scale
//! validation in `vrm-sekvm`, exactly the structure of the paper's §5.

use vrm::core::pushpull::check_pushpull;
use vrm::core::{check_wdrf, paper_examples, IsolationMode, KernelSpec, WdrfCheckConfig};
use vrm::memmodel::promising::PromisingConfig;
use vrm::sekvm::layout::VM_POOL_PFN;
use vrm::sekvm::machine::{lifecycle_script, Machine, Script};
use vrm::sekvm::security::check_invariants;
use vrm::sekvm::wdrf::validate_log;
use vrm::sekvm::KCoreConfig;

fn scripts(n: usize) -> Vec<Script> {
    (0..n)
        .map(|i| {
            lifecycle_script(
                i as u64,
                VM_POOL_PFN.0 + (i as u64) * 8,
                VM_POOL_PFN.0 + (i as u64) * 8 + 4,
            )
        })
        .collect()
}

#[test]
fn ticket_lock_satisfies_conditions_1_and_2() {
    let prog = paper_examples::gen_vmid_program(true);
    let mut spec = KernelSpec::for_kernel_threads([0, 1]);
    spec.shared_data = [0x12].into();
    let cfg = PromisingConfig {
        promises: false,
        ..Default::default()
    };
    let r = check_pushpull(&prog, &spec, &cfg).unwrap();
    assert!(r.drf_kernel_holds(), "{:?}", r.ownership_violations);
    assert!(r.no_barrier_misuse_holds(), "{:?}", r.barrier_violations);
    assert!(!r.truncated);
}

#[test]
fn barrierless_lock_fails_condition_2() {
    let prog = paper_examples::gen_vmid_program(false);
    let mut spec = KernelSpec::for_kernel_threads([0, 1]);
    spec.shared_data = [0x12].into();
    let cfg = PromisingConfig {
        promises: false,
        ..Default::default()
    };
    let r = check_pushpull(&prog, &spec, &cfg).unwrap();
    assert!(!r.no_barrier_misuse_holds());
}

#[test]
fn theorem_check_certifies_fixed_examples() {
    // Each repaired example passes the RM ⊆ SC comparison.
    let mut cfg = WdrfCheckConfig {
        skip_sync_conditions: true,
        ..Default::default()
    };
    cfg.promising.max_promises_per_thread = 1;
    cfg.promising.value_cfg.max_rounds = 3;
    for ex in paper_examples::all() {
        let Some(fixed) = ex.fixed else { continue };
        if fixed.uses_vm() {
            // The theorem comparison for VM examples runs via the model
            // outcome sets directly in the core tests; check_wdrf's
            // default condition set applies to plain-memory kernels here.
            continue;
        }
        let nthreads = fixed.threads.len();
        let spec = KernelSpec::for_kernel_threads(0..nthreads);
        let v = check_wdrf(&fixed, &spec, &cfg).unwrap();
        assert!(
            v.rm_subset_of_sc,
            "{}: fixed program has RM-only outcomes: {:?}",
            ex.name, v.counterexamples
        );
    }
}

#[test]
fn theorem_check_rejects_buggy_examples() {
    let mut cfg = WdrfCheckConfig {
        skip_sync_conditions: true,
        ..Default::default()
    };
    cfg.promising.max_promises_per_thread = 1;
    cfg.promising.value_cfg.max_rounds = 3;
    for ex in paper_examples::all() {
        if ex.buggy.uses_vm() {
            continue; // covered by outcome-set comparisons in vrm-core
        }
        let nthreads = ex.buggy.threads.len();
        let mut spec = KernelSpec::for_kernel_threads(0..nthreads);
        if ex.name.contains("Example 7") {
            // The kernel is only the last thread there.
            spec = KernelSpec::for_kernel_threads([nthreads - 1]);
            spec.kernel_observables = vec!["kernel_z".into()];
            spec.isolation = IsolationMode::Strong;
        }
        let v = check_wdrf(&ex.buggy, &spec, &cfg).unwrap();
        assert!(
            !v.rm_subset_of_sc,
            "{}: buggy program unexpectedly passed",
            ex.name
        );
    }
}

#[test]
fn machine_validation_clean_for_both_geometries() {
    for levels in [3u32, 4u32] {
        for seed in [0u64, 17, 91] {
            let mut m = Machine::new(
                KCoreConfig {
                    s2_levels: levels,
                    ..Default::default()
                },
                scripts(4),
                seed,
            );
            let report = m.run(2_000_000);
            assert!(report.clean(), "levels={levels} seed={seed}: {report:?}");
            assert!(validate_log(&m.kcore.log).is_empty());
            assert!(check_invariants(&m.kcore).is_empty());
        }
    }
}

#[test]
fn mutants_are_rejected() {
    use vrm::sekvm::mutants::{all, CaughtBy};
    for mutant in all() {
        match mutant.caught_by {
            CaughtBy::SequentialTlbi | CaughtBy::LockDiscipline => {
                let mut m = Machine::new(mutant.cfg, scripts(2), 5);
                m.run(1_000_000);
                assert!(
                    !validate_log(&m.kcore.log).is_empty(),
                    "{} not caught",
                    mutant.name
                );
            }
            CaughtBy::SecurityInvariants => {
                // Exercised by the dedicated scenarios in vrm-sekvm's
                // security tests and the verify_sekvm example; here we
                // confirm the mutant at least runs.
                let mut m = Machine::new(mutant.cfg, scripts(2), 5);
                let r = m.run(1_000_000);
                assert!(r.steps > 0);
            }
            CaughtBy::Refinement => {
                let mut m = Machine::new(mutant.cfg, scripts(2), 5);
                let (_, violations) = m.run_refined(1_000_000);
                assert!(
                    !violations.is_empty(),
                    "{} not caught by refinement",
                    mutant.name
                );
            }
        }
    }
}
