//! Property-based tests over VRM's core data structures.
//!
//! * Randomly generated *valid* push/pull executions: the Figure 6 SC
//!   construction must validate, topologically sort, and replay with
//!   identical execution results.
//! * The `s2page` ownership array against a shadow model.
//! * The TLB model's capacity and LRU behaviour.

use proptest::prelude::*;

mod scconstruct_props {
    use super::*;
    use std::collections::BTreeMap;
    use vrm::core::scconstruct::{
        construct_sc, replay_matches, CsEvent, PlEntry, PushPullExecution,
    };

    /// One randomly scheduled critical section: which CPU, which location,
    /// and a little program of reads/writes.
    #[derive(Debug, Clone)]
    struct Section {
        tid: usize,
        loc: u64,
        writes: Vec<u64>,
        read_first: bool,
    }

    fn arb_section(threads: usize) -> impl Strategy<Value = Section> {
        (
            0..threads,
            0..3u64,
            proptest::collection::vec(1..100u64, 0..3),
            proptest::bool::ANY,
        )
            .prop_map(|(tid, l, writes, read_first)| Section {
                tid,
                loc: 0x10 + l,
                writes,
                read_first,
            })
    }

    /// Serializes the sections into a *valid* push/pull execution: since
    /// sections run back-to-back in the promise list, reads see the values
    /// a sequential memory produces.
    fn build_execution(sections: &[Section], threads: usize) -> PushPullExecution {
        let mut exec = PushPullExecution {
            promise_list: Vec::new(),
            traces: vec![Vec::new(); threads],
            init: BTreeMap::new(),
        };
        let mut mem: BTreeMap<u64, u64> = BTreeMap::new();
        let mut cs_counter = vec![0usize; threads];
        for s in sections {
            let cs = cs_counter[s.tid];
            cs_counter[s.tid] += 1;
            exec.promise_list.push(PlEntry::Pull {
                tid: s.tid,
                cs,
                locs: vec![s.loc],
            });
            if s.read_first {
                exec.traces[s.tid].push(CsEvent {
                    cs,
                    is_write: false,
                    loc: s.loc,
                    val: mem.get(&s.loc).copied().unwrap_or(0),
                });
            }
            for &w in &s.writes {
                exec.promise_list.push(PlEntry::Write {
                    tid: s.tid,
                    loc: s.loc,
                    val: w,
                });
                exec.traces[s.tid].push(CsEvent {
                    cs,
                    is_write: true,
                    loc: s.loc,
                    val: w,
                });
                mem.insert(s.loc, w);
            }
            exec.promise_list.push(PlEntry::Push {
                tid: s.tid,
                cs,
                locs: vec![s.loc],
            });
        }
        exec
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn valid_executions_construct_and_replay(
            sections in proptest::collection::vec(arb_section(3), 1..10)
        ) {
            let exec = build_execution(&sections, 3);
            let sc = construct_sc(&exec).expect("valid execution");
            replay_matches(&exec, &sc)
                .map_err(TestCaseError::fail)?;
            // Every event appears exactly once in the SC order.
            let total: usize = exec.traces.iter().map(|t| t.len()).sum();
            prop_assert_eq!(sc.order.len(), total);
        }

        #[test]
        fn overlapping_pull_is_rejected(
            tid_a in 0..2usize,
        ) {
            // Two pulls of the same location with no intervening push.
            let exec = PushPullExecution {
                promise_list: vec![
                    PlEntry::Pull { tid: tid_a, cs: 0, locs: vec![0x10] },
                    PlEntry::Pull { tid: 1 - tid_a, cs: 0, locs: vec![0x10] },
                ],
                traces: vec![vec![], vec![]],
                init: BTreeMap::new(),
            };
            prop_assert!(construct_sc(&exec).is_err());
        }
    }
}

mod s2page_props {
    use super::*;
    use vrm::sekvm::s2page::{Owner, S2PageArray};

    #[derive(Debug, Clone, Copy)]
    enum OwnOp {
        Transfer { pfn_off: u64, to: u8 },
        IncMap { pfn_off: u64 },
        DecMap { pfn_off: u64 },
        Share { pfn_off: u64, on: bool },
    }

    fn arb_op() -> impl Strategy<Value = OwnOp> {
        prop_oneof![
            (0..16u64, 0..3u8).prop_map(|(pfn_off, to)| OwnOp::Transfer { pfn_off, to }),
            (0..16u64).prop_map(|pfn_off| OwnOp::IncMap { pfn_off }),
            (0..16u64).prop_map(|pfn_off| OwnOp::DecMap { pfn_off }),
            (0..16u64, proptest::bool::ANY).prop_map(|(pfn_off, on)| OwnOp::Share { pfn_off, on }),
        ]
    }

    fn owner(code: u8) -> Owner {
        match code {
            0 => Owner::KServ,
            1 => Owner::Vm(1),
            _ => Owner::Vm(2),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The array always agrees with a shadow model, and the safety
        /// rules hold: mapped pages never change owner, KCore pages are
        /// never transferable.
        #[test]
        fn ownership_agrees_with_shadow(ops in proptest::collection::vec(arb_op(), 1..40)) {
            let base = vrm::sekvm::layout::VM_POOL_PFN.0;
            let mut arr = S2PageArray::new();
            let mut shadow: Vec<(Owner, u32, bool)> =
                vec![(Owner::KServ, 0, false); 16];
            for op in ops {
                match op {
                    OwnOp::Transfer { pfn_off, to } => {
                        let pfn = base + pfn_off;
                        let cur = shadow[pfn_off as usize];
                        let r = arr.transfer(pfn, cur.0, owner(to));
                        if cur.1 == 0 {
                            prop_assert!(r.is_ok(), "{r:?}");
                            shadow[pfn_off as usize] = (owner(to), 0, false);
                        } else {
                            prop_assert!(r.is_err());
                        }
                    }
                    OwnOp::IncMap { pfn_off } => {
                        arr.inc_map(base + pfn_off).unwrap();
                        shadow[pfn_off as usize].1 += 1;
                    }
                    OwnOp::DecMap { pfn_off } => {
                        let r = arr.dec_map(base + pfn_off);
                        if shadow[pfn_off as usize].1 > 0 {
                            prop_assert!(r.is_ok());
                            shadow[pfn_off as usize].1 -= 1;
                        } else {
                            prop_assert!(r.is_err());
                        }
                    }
                    OwnOp::Share { pfn_off, on } => {
                        arr.set_shared(base + pfn_off, on).unwrap();
                        shadow[pfn_off as usize].2 = on;
                    }
                }
                for (off, &(o, m, sh)) in shadow.iter().enumerate() {
                    let page = arr.get(base + off as u64).unwrap();
                    prop_assert_eq!(page.owner, o);
                    prop_assert_eq!(page.map_count, m);
                    prop_assert_eq!(page.shared, sh);
                }
                // KCore pages stay KCore's whatever happens around them.
                prop_assert_eq!(arr.owner(0).unwrap(), Owner::KCore);
            }
        }
    }
}

mod tlb_props {
    use super::*;
    use vrm::mmu::tlb::Tlb;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Capacity is never exceeded; a fill is immediately visible; a
        /// full invalidation empties everything.
        #[test]
        fn tlb_capacity_and_visibility(
            capacity in 1usize..8,
            ops in proptest::collection::vec((0..16u64, 0..2u8), 1..64),
        ) {
            let mut tlb = Tlb::new(capacity);
            for (vpn, kind) in ops {
                match kind {
                    0 => {
                        tlb.fill(vpn, 0x1000 + vpn);
                        prop_assert_eq!(tlb.lookup(vpn), Some(0x1000 + vpn));
                    }
                    _ => {
                        tlb.invalidate(Some(vpn));
                        prop_assert_eq!(tlb.lookup(vpn), None);
                    }
                }
                prop_assert!(tlb.len() <= capacity);
            }
            tlb.invalidate(None);
            prop_assert!(tlb.is_empty());
        }
    }
}
