//! The refinement-spec layer, end to end.
//!
//! * The unbroken kernel refines the abstract ownership machine on every
//!   schedule of the unmap workload, exhaustively, at several job counts
//!   — and the refinement walk visits exactly the schedule-exploration
//!   graph, so their outcome sets and verdicts agree.
//! * The abstract projection is a function of what the machine *did*,
//!   not of how the scheduler interleaved it: any two seeds produce the
//!   same abstract state once VM registration order is pinned.
//! * Property-based single-trace oracle: random well-formed lifecycle
//!   traces (fresh fault targets, paired grant/revoke, reclaim last)
//!   project to legal abstract steps under random schedules.

use proptest::prelude::*;

use vrm::explore::Verdict;
use vrm::sekvm::layout::{page_addr, PAGE_WORDS, VM_POOL_PFN};
use vrm::sekvm::machine::{ExhaustiveConfig, Machine, Op, Script};
use vrm::sekvm::refine;
use vrm::sekvm::KCoreConfig;

/// The unmap workload from the bench/campaign suites: one full
/// map → grant → revoke path with VmId-lock contention from a second CPU.
fn unmap_scripts() -> Vec<Script> {
    let gpa = 64 * PAGE_WORDS;
    vec![
        vec![
            Op::RegisterVm,
            Op::RegisterVcpu,
            Op::StageImage {
                pfns: vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1],
            },
            Op::VerifyImage,
            Op::Fault {
                gpa,
                donor_pfn: VM_POOL_PFN.0 + 4,
            },
            Op::Grant { gpa },
            Op::Revoke { gpa },
        ],
        vec![Op::RegisterVm],
    ]
}

#[test]
fn unbroken_kernel_refines_exhaustively() {
    let ecfg = ExhaustiveConfig {
        max_states: 1 << 18,
        jobs: 1,
        ..ExhaustiveConfig::default()
    };
    let report = Machine::check_refinement(KCoreConfig::default(), unmap_scripts(), &ecfg)
        .expect("exploration");
    assert!(report.stats.completeness.is_exhaustive());
    assert!(
        report.refines(),
        "violations: {:?}",
        report.violations.iter().take(3).collect::<Vec<_>>()
    );
    assert_eq!(report.verdict(), Verdict::Pass);
    assert!(!report.outcomes.is_empty());
}

#[test]
fn refinement_walk_matches_explore_schedules_at_every_job_count() {
    for jobs in [1usize, 2, 4] {
        let ecfg = ExhaustiveConfig {
            max_states: 1 << 18,
            jobs,
            ..ExhaustiveConfig::default()
        };
        let r = Machine::check_refinement(KCoreConfig::default(), unmap_scripts(), &ecfg)
            .expect("refinement");
        let e = Machine::explore_schedules(KCoreConfig::default(), unmap_scripts(), &ecfg)
            .expect("schedules");
        // Same graph: the refinement space only adds per-transition
        // checks, never new states or outcomes.
        assert_eq!(r.outcomes, e.outcomes, "jobs={jobs}");
        assert_eq!(r.stats.states, e.stats.states, "jobs={jobs}");
        assert_eq!(
            r.verdict().exit_code(),
            e.verdict().exit_code(),
            "jobs={jobs}"
        );
        assert!(r.refines(), "jobs={jobs}");
    }
}

/// Two-VM scripts whose VM registration order is pinned by a rendezvous
/// barrier, so vmids are schedule-independent and only the interleaving
/// of the (commuting, frame-disjoint) lifecycle operations varies.
fn arb_pinned_scripts() -> impl Strategy<Value = Vec<Script>> {
    (proptest::bool::ANY, proptest::bool::ANY).prop_map(|(share, second_vm)| {
        let gpa = 64 * PAGE_WORDS;
        let mut cpu0 = vec![
            Op::RegisterVm,
            Op::Rendezvous { id: 1 },
            Op::RegisterVcpu,
            Op::StageImage {
                pfns: vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1],
            },
            Op::VerifyImage,
            Op::Fault {
                gpa,
                donor_pfn: VM_POOL_PFN.0 + 4,
            },
            Op::VmWrite {
                gpa: gpa + 3,
                val: 42,
            },
        ];
        if share {
            cpu0.push(Op::Grant { gpa });
            cpu0.push(Op::Revoke { gpa });
        }
        let mut cpu1 = vec![Op::Rendezvous { id: 1 }, Op::RegisterVm];
        if second_vm {
            cpu1.extend([
                Op::RegisterVcpu,
                Op::StageImage {
                    pfns: vec![VM_POOL_PFN.0 + 8, VM_POOL_PFN.0 + 9],
                },
                Op::VerifyImage,
                Op::Fault {
                    gpa,
                    donor_pfn: VM_POOL_PFN.0 + 12,
                },
            ]);
        }
        vec![cpu0, cpu1]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn abstract_projection_is_schedule_invariant(
        scripts in arb_pinned_scripts(),
        seed_a in 0u64..1_000,
        seed_b in 0u64..1_000,
    ) {
        let mut ma = Machine::new(KCoreConfig::default(), scripts.clone(), seed_a);
        let ra = ma.run(1_000_000);
        let mut mb = Machine::new(KCoreConfig::default(), scripts, seed_b);
        let rb = mb.run(1_000_000);
        prop_assert!(ra.clean(), "seed {seed_a}: {ra:?}");
        prop_assert!(rb.clean(), "seed {seed_b}: {rb:?}");
        prop_assert_eq!(
            refine::abstract_of(&ma.kcore),
            refine::abstract_of(&mb.kcore)
        );
    }
}

/// A well-formed random lifecycle trace: every fault targets a fresh
/// (gpa, donor) pair, every grant is revoked before teardown, and the
/// reclaim (if any) comes last — so every successful hypercall has the
/// full effect its abstract label claims, and every failed one is a
/// stutter.
fn arb_trace() -> impl Strategy<Value = (Vec<Script>, u64)> {
    (
        proptest::collection::vec((proptest::bool::ANY, proptest::bool::ANY), 1..=3),
        proptest::bool::ANY,
        proptest::bool::ANY,
        0u64..512,
    )
        .prop_map(|(faults, reclaim, contend, seed)| {
            let mut cpu0 = vec![
                Op::RegisterVm,
                Op::RegisterVcpu,
                Op::StageImage {
                    pfns: vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1],
                },
                Op::VerifyImage,
            ];
            for (i, &(write, share)) in faults.iter().enumerate() {
                let gpa = (64 + i as u64) * PAGE_WORDS;
                let donor = VM_POOL_PFN.0 + 8 + i as u64;
                cpu0.push(Op::Fault {
                    gpa,
                    donor_pfn: donor,
                });
                if write {
                    cpu0.push(Op::VmWrite {
                        gpa: gpa + 5,
                        val: 0x100 + i as u64,
                    });
                }
                if share {
                    cpu0.push(Op::Grant { gpa });
                    cpu0.push(Op::KservWrite {
                        pa: page_addr(donor) + 7,
                        val: 7,
                        expect_allowed: true,
                    });
                    cpu0.push(Op::Revoke { gpa });
                    // After revoke the page is private again: the denied
                    // read must be a stutter, not a state change.
                    cpu0.push(Op::KservRead {
                        pa: page_addr(donor) + 7,
                        expect_allowed: false,
                    });
                }
            }
            if reclaim {
                cpu0.push(Op::Reclaim);
            }
            let cpu1 = if contend {
                vec![Op::RegisterVm]
            } else {
                vec![]
            };
            (vec![cpu0, cpu1], seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_traces_project_to_legal_abstract_steps(trace in arb_trace()) {
        let (scripts, seed) = trace;
        let mut m = Machine::new(KCoreConfig::default(), scripts, seed);
        let (report, violations) = m.run_refined(1_000_000);
        prop_assert!(report.clean(), "{report:?}");
        prop_assert!(
            violations.is_empty(),
            "refinement violations: {:?}",
            violations.iter().take(3).collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn broken_kernels_fail_the_trace_oracle(trace in arb_trace()) {
        let (scripts, seed) = trace;
        // Every spec-layer mutant must trip the same single-trace oracle
        // whenever the trace exercises its operation (grant/revoke for
        // the revoke mutants, reclaim for the reclaim mutants).
        let shares = scripts[0].iter().any(|o| matches!(o, Op::Grant { .. }));
        let reclaims = scripts[0].iter().any(|o| matches!(o, Op::Reclaim));
        for mutant in vrm::sekvm::mutants::all() {
            if mutant.caught_by != vrm::sekvm::mutants::CaughtBy::Refinement {
                continue;
            }
            let relevant = match mutant.name {
                "revoke-keeps-share" | "revoke-skips-unmap" => shares,
                "skip-scrub-on-reclaim" | "reclaim-leaks-ownership" => reclaims,
                _ => true,
            };
            if !relevant {
                continue;
            }
            let mut m = Machine::new(mutant.cfg, scripts.clone(), seed);
            let (_, violations) = m.run_refined(1_000_000);
            prop_assert!(
                !violations.is_empty(),
                "{} survived the trace oracle",
                mutant.name
            );
        }
    }
}
