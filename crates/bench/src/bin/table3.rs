//! Reproduces Table 3 (microbenchmark cycles) and prints Table 2's
//! operation descriptions.
//!
//! A report generator: always exits `0` on success; a modelling
//! regression panics (non-zero exit). The 0/1/3 verdict contract lives
//! in the checking binaries (`litmus`, `mutate`, `bench`).

use vrm_bench::{row, rule};
use vrm_hwsim::{simulate_micro, HwConfig, HypConfig, HypKind, KernelVersion};

/// Paper Table 3 values, for side-by-side comparison.
const PAPER: [(&str, [u64; 4], [u64; 4]); 2] = [
    ("m400", [2275, 3144, 7864, 7915], [4695, 7235, 15501, 13900]),
    (
        "Seattle",
        [2896, 3831, 9288, 8816],
        [3720, 4864, 10903, 10699],
    ),
];

fn main() {
    println!("Table 2. Microbenchmarks.");
    println!("  Hypercall   — VM→hypervisor transition and return, no work.");
    println!("  I/O Kernel  — trap to the in-kernel emulated interrupt controller.");
    println!("  I/O User    — trap to the emulated UART in QEMU and return.");
    println!("  Virtual IPI — vCPU-to-vCPU IPI across physical CPUs.");
    println!();
    println!("Table 3. Microbenchmark performance (cycles), simulated vs paper.");
    println!();
    for (hw, paper_kvm, paper_sekvm) in [
        (HwConfig::m400(), PAPER[0].1, PAPER[0].2),
        (HwConfig::seattle(), PAPER[1].1, PAPER[1].2),
    ] {
        let kvm = simulate_micro(hw, HypConfig::new(HypKind::Kvm, KernelVersion::V4_18));
        let sekvm = simulate_micro(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18));
        println!("{} (Linux 4.18):", hw.name);
        println!(
            "{}",
            row(
                "  Benchmark",
                &[
                    "KVM sim".into(),
                    "KVM paper".into(),
                    "SeKVM sim".into(),
                    "SeKVM paper".into(),
                    "ratio sim".into(),
                    "ratio paper".into(),
                ]
            )
        );
        println!("{}", rule(100));
        let names = ["Hypercall", "I/O Kernel", "I/O User", "Virtual IPI"];
        let sim_kvm = [kvm.hypercall, kvm.io_kernel, kvm.io_user, kvm.virtual_ipi];
        let sim_sek = [
            sekvm.hypercall,
            sekvm.io_kernel,
            sekvm.io_user,
            sekvm.virtual_ipi,
        ];
        for i in 0..4 {
            println!(
                "{}",
                row(
                    &format!("  {}", names[i]),
                    &[
                        sim_kvm[i].to_string(),
                        paper_kvm[i].to_string(),
                        sim_sek[i].to_string(),
                        paper_sekvm[i].to_string(),
                        format!("{:.2}", sim_sek[i] as f64 / sim_kvm[i] as f64),
                        format!("{:.2}", paper_sekvm[i] as f64 / paper_kvm[i] as f64),
                    ]
                )
            );
        }
        println!();
    }
    println!(
        "Shape check: SeKVM overhead is much higher on the tiny-TLB m400 than on\n\
         Seattle, driven by 4 KB KServ stage-2 mappings (paper §6); Seattle ratios\n\
         stay below ~1.4x."
    );
}
