//! Litmus-file runner: parses `.litmus` files (see
//! `vrm_memmodel::parser` for the grammar), enumerates them on all three
//! models, cross-checks operational vs axiomatic, and evaluates the
//! file's `check` expectations.
//!
//! ```console
//! $ cargo run -p vrm-bench --bin litmus -- litmus/           # a directory
//! $ cargo run -p vrm-bench --bin litmus -- litmus/mp.litmus  # one file
//! $ cargo run -p vrm-bench --bin litmus -- --jobs 8 litmus/  # parallel drivers
//! $ cargo run -p vrm-bench --bin litmus -- --witness flag=1,data=0 litmus/mp.litmus
//! $ cargo run -p vrm-bench --bin litmus -- --max-states 100 litmus/  # under-budgeted
//! $ cargo run -p vrm-bench --bin litmus -- --emit-bench BENCH_litmus.json litmus/
//! ```
//!
//! Exit codes: `0` — every file PASSed; `1` — at least one FAIL;
//! `3` — no FAILs, but at least one UNKNOWN (an enumeration was cut
//! short by a budget, so the verdict would be unsound either way).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vrm_memmodel::parser::{parse, CheckModel};
use vrm_memmodel::promising::find_witness;
use vrm_memmodel::runner::{run_litmus, RunOverrides};
use vrm_obs::{BenchFile, BenchRecord};

fn collect_files(arg: &str) -> Vec<PathBuf> {
    let p = Path::new(arg);
    if p.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(p)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
                    .collect()
            })
            .unwrap_or_default();
        files.sort();
        files
    } else {
        vec![p.to_path_buf()]
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut witness_spec: Option<Vec<(String, u64)>> = None;
    let mut jobs: Option<usize> = None;
    let mut max_states: Option<usize> = None;
    let mut emit: Option<PathBuf> = None;
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let n = args.get(i + 1).expect("--jobs needs a worker count");
                jobs = Some(n.parse().expect("numeric worker count"));
                i += 2;
            }
            "--max-states" => {
                let n = args.get(i + 1).expect("--max-states needs a state budget");
                max_states = Some(n.parse().expect("numeric state budget"));
                i += 2;
            }
            "--emit-bench" => {
                let p = args.get(i + 1).expect("--emit-bench needs an output path");
                emit = Some(PathBuf::from(p));
                i += 2;
            }
            "--witness" => {
                let spec = args.get(i + 1).expect("--witness needs name=val,...");
                witness_spec = Some(
                    spec.split(',')
                        .map(|b| {
                            let (n, v) = b.split_once('=').expect("binding name=val");
                            (n.to_string(), v.parse().expect("numeric value"))
                        })
                        .collect(),
                );
                i += 2;
            }
            other => {
                paths.extend(collect_files(other));
                i += 1;
            }
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: litmus [--jobs N] [--max-states N] [--witness name=val,...] \
             [--emit-bench PATH] <file.litmus | dir> ...\n\
             exit codes: 0 all PASS, 1 any FAIL, 3 any UNKNOWN \
             (budget-truncated, no verdict)"
        );
        return ExitCode::FAILURE;
    }

    let mut bench_out = BenchFile::new("litmus");
    let mut failures = 0usize;
    let mut unknowns = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let parsed = match parse(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        print!("{:<28}", parsed.program.name);
        // The verdict itself comes from the shared pipeline — the same
        // one the bench harness and the serve daemon call — so every
        // front end's judgement of a program bit-matches.
        let run = run_litmus(&parsed, &RunOverrides { jobs, max_states }).expect("litmus pipeline");
        print!(
            " sc:{:<3} arm:{:<3} conform:{:<4}",
            run.sc_outcomes, run.rm_outcomes, run.conform
        );
        for c in &run.checks {
            print!(
                " [{} {} {}: {}]",
                match c.model {
                    CheckModel::Arm => "arm",
                    CheckModel::Sc => "sc",
                },
                if c.allows { "allows" } else { "forbids" },
                c.bindings
                    .iter()
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect::<Vec<_>>()
                    .join(","),
                if c.holds { "ok" } else { "FAIL" }
            );
        }
        match run.verdict {
            vrm_explore::Verdict::Unknown { coverage } => {
                println!("  UNKNOWN ({coverage})");
                unknowns += 1;
            }
            v => {
                println!("  {v}");
                if v == vrm_explore::Verdict::Fail {
                    failures += 1;
                }
            }
        }
        bench_out.records.push(
            BenchRecord::new(format!("litmus/{}", run.name))
                .param("jobs", run.stats.jobs)
                .param("conform", run.conform)
                .metric("sc_outcomes", run.sc_outcomes as u64)
                .metric("rm_outcomes", run.rm_outcomes as u64)
                .metric("ax_outcomes", run.ax_outcomes.unwrap_or(0) as u64)
                .metric("states", run.stats.states as u64)
                .metric("popped", run.stats.popped as u64)
                .metric("wall_ns", run.wall_ns)
                .metric("exit_code", run.exit_code() as u64),
        );
        if let Some(spec) = &witness_spec {
            let mut pm_cfg = parsed.promising.clone();
            if let Some(jobs) = jobs {
                pm_cfg.jobs = jobs;
            }
            if let Some(n) = max_states {
                pm_cfg.max_states = n;
            }
            let bindings: Vec<(&str, u64)> = spec.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            match find_witness(&parsed.program, &pm_cfg, &bindings).expect("witness search") {
                Some(w) => {
                    println!("  witness for {spec:?}:");
                    for step in w {
                        println!("    {step}");
                    }
                }
                None => println!("  no execution reaches {spec:?}"),
            }
        }
    }
    if let Some(path) = &emit {
        if let Err(e) = bench_out.write_to(path) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} record(s) to {} ({})",
            bench_out.records.len(),
            path.display(),
            bench_out.schema
        );
    }
    if failures > 0 {
        eprintln!("{failures} failure(s), {unknowns} unknown");
        ExitCode::FAILURE
    } else if unknowns > 0 {
        eprintln!("{unknowns} unknown (exploration truncated; no verdict)");
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}
