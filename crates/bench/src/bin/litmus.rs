//! Litmus-file runner: parses `.litmus` files (see
//! `vrm_memmodel::parser` for the grammar), enumerates them on all three
//! models, cross-checks operational vs axiomatic, and evaluates the
//! file's `check` expectations.
//!
//! ```console
//! $ cargo run -p vrm-bench --bin litmus -- litmus/           # a directory
//! $ cargo run -p vrm-bench --bin litmus -- litmus/mp.litmus  # one file
//! $ cargo run -p vrm-bench --bin litmus -- --jobs 8 litmus/  # parallel drivers
//! $ cargo run -p vrm-bench --bin litmus -- --witness flag=1,data=0 litmus/mp.litmus
//! $ cargo run -p vrm-bench --bin litmus -- --max-states 100 litmus/  # under-budgeted
//! $ cargo run -p vrm-bench --bin litmus -- --emit-bench BENCH_litmus.json litmus/
//! ```
//!
//! Exit codes: `0` — every file PASSed; `1` — at least one FAIL;
//! `3` — no FAILs, but at least one UNKNOWN (an enumeration was cut
//! short by a budget, so the verdict would be unsound either way).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use vrm_memmodel::axiomatic::{enumerate_axiomatic_with, AxConfig};
use vrm_memmodel::parser::{parse, CheckModel};
use vrm_memmodel::promising::{enumerate_promising_with, find_witness};
use vrm_memmodel::sc::{enumerate_sc_with, ScConfig};
use vrm_obs::{BenchFile, BenchRecord};

fn collect_files(arg: &str) -> Vec<PathBuf> {
    let p = Path::new(arg);
    if p.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(p)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
                    .collect()
            })
            .unwrap_or_default();
        files.sort();
        files
    } else {
        vec![p.to_path_buf()]
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut witness_spec: Option<Vec<(String, u64)>> = None;
    let mut jobs: Option<usize> = None;
    let mut max_states: Option<usize> = None;
    let mut emit: Option<PathBuf> = None;
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let n = args.get(i + 1).expect("--jobs needs a worker count");
                jobs = Some(n.parse().expect("numeric worker count"));
                i += 2;
            }
            "--max-states" => {
                let n = args.get(i + 1).expect("--max-states needs a state budget");
                max_states = Some(n.parse().expect("numeric state budget"));
                i += 2;
            }
            "--emit-bench" => {
                let p = args.get(i + 1).expect("--emit-bench needs an output path");
                emit = Some(PathBuf::from(p));
                i += 2;
            }
            "--witness" => {
                let spec = args.get(i + 1).expect("--witness needs name=val,...");
                witness_spec = Some(
                    spec.split(',')
                        .map(|b| {
                            let (n, v) = b.split_once('=').expect("binding name=val");
                            (n.to_string(), v.parse().expect("numeric value"))
                        })
                        .collect(),
                );
                i += 2;
            }
            other => {
                paths.extend(collect_files(other));
                i += 1;
            }
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: litmus [--jobs N] [--max-states N] [--witness name=val,...] \
             [--emit-bench PATH] <file.litmus | dir> ...\n\
             exit codes: 0 all PASS, 1 any FAIL, 3 any UNKNOWN \
             (budget-truncated, no verdict)"
        );
        return ExitCode::FAILURE;
    }

    let mut bench_out = BenchFile::new("litmus");
    let mut failures = 0usize;
    let mut unknowns = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let mut parsed = match parse(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        if let Some(jobs) = jobs {
            parsed.promising.jobs = jobs;
        }
        if let Some(n) = max_states {
            parsed.promising.max_states = n;
        }
        let prog = &parsed.program;
        print!("{:<28}", prog.name);
        let mut sc_cfg = ScConfig::default();
        if let Some(jobs) = jobs {
            sc_cfg.jobs = jobs;
        }
        if let Some(n) = max_states {
            sc_cfg.max_states = n;
        }
        let started = Instant::now();
        let sc = enumerate_sc_with(prog, &sc_cfg).expect("SC enumeration");
        let rm_res = enumerate_promising_with(prog, &parsed.promising).expect("promising");
        // A budget-truncated walk on either reference model makes every
        // comparison unsound in both directions: degrade to UNKNOWN.
        let truncated = sc.truncated() || rm_res.truncated;
        let mut stats = sc.stats;
        stats.absorb(&rm_res.outcomes.stats);
        let rm = rm_res.outcomes;
        // None for VM/TLB programs, disabled files, or truncated
        // (unroll-bounded) enumerations where comparison is unsound.
        let ax = if parsed.run_axiomatic {
            let mut ax_cfg = AxConfig::default();
            if let Some(jobs) = jobs {
                ax_cfg.jobs = jobs;
            }
            enumerate_axiomatic_with(prog, &ax_cfg)
                .ok()
                .filter(|r| !r.truncated)
                .map(|r| r.outcomes)
        } else {
            None
        };
        let wall_ns = started.elapsed().as_nanos() as u64;
        // Full promise search must agree exactly with the axiomatic model;
        // the promise-free fast path is a sound under-approximation.
        let conform = match &ax {
            Some(ax) if parsed.promising.promises => {
                if *ax == rm {
                    "yes"
                } else {
                    "NO"
                }
            }
            Some(ax) => {
                if rm.is_subset(ax) {
                    "sub"
                } else {
                    "NO"
                }
            }
            None => "n/a",
        };
        print!(
            " sc:{:<3} arm:{:<3} conform:{:<4}",
            sc.len(),
            rm.len(),
            conform
        );
        let mut ok = conform != "NO" && sc.is_subset(&rm);
        for c in &parsed.checks {
            // `arm` expectations are judged against the *complete* model
            // when available (the axiomatic set); `sc` against SC.
            let set = match c.model {
                CheckModel::Arm => ax.as_ref().unwrap_or(&rm),
                CheckModel::Sc => &sc,
            };
            let bindings: Vec<(&str, u64)> =
                c.bindings.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let holds = set.contains_binding(&bindings) == c.allows;
            if !holds {
                ok = false;
            }
            print!(
                " [{} {} {}: {}]",
                match c.model {
                    CheckModel::Arm => "arm",
                    CheckModel::Sc => "sc",
                },
                if c.allows { "allows" } else { "forbids" },
                c.bindings
                    .iter()
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect::<Vec<_>>()
                    .join(","),
                if holds { "ok" } else { "FAIL" }
            );
        }
        if truncated {
            let coverage =
                vrm_explore::Coverage::from_stats(&stats).unwrap_or(vrm_explore::Coverage {
                    states: stats.states,
                    frontier_len: 0,
                    reason: vrm_explore::TruncationReason::StateLimit,
                });
            println!("  UNKNOWN ({coverage})");
            unknowns += 1;
        } else {
            println!("  {}", if ok { "PASS" } else { "FAIL" });
            if !ok {
                failures += 1;
            }
        }
        let exit_code: u64 = if truncated {
            3
        } else if ok {
            0
        } else {
            1
        };
        bench_out.records.push(
            BenchRecord::new(format!("litmus/{}", prog.name))
                .param("jobs", stats.jobs)
                .param("conform", conform)
                .metric("sc_outcomes", sc.len() as u64)
                .metric("rm_outcomes", rm.len() as u64)
                .metric("ax_outcomes", ax.as_ref().map_or(0, |a| a.len()) as u64)
                .metric("states", stats.states as u64)
                .metric("popped", stats.popped as u64)
                .metric("wall_ns", wall_ns)
                .metric("exit_code", exit_code),
        );
        if let Some(spec) = &witness_spec {
            let bindings: Vec<(&str, u64)> = spec.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            match find_witness(prog, &parsed.promising, &bindings).expect("witness search") {
                Some(w) => {
                    println!("  witness for {spec:?}:");
                    for step in w {
                        println!("    {step}");
                    }
                }
                None => println!("  no execution reaches {spec:?}"),
            }
        }
    }
    if let Some(path) = &emit {
        if let Err(e) = bench_out.write_to(path) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} record(s) to {} ({})",
            bench_out.records.len(),
            path.display(),
            bench_out.schema
        );
    }
    if failures > 0 {
        eprintln!("{failures} failure(s), {unknowns} unknown");
        ExitCode::FAILURE
    } else if unknowns > 0 {
        eprintln!("{unknowns} unknown (exploration truncated; no verdict)");
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}
