//! Ablation studies over the reproduction's design knobs.
//!
//! 1. **TLB capacity sweep** — the paper attributes SeKVM's high m400
//!    overhead to its tiny TLB. Sweeping the modelled capacity shows the
//!    SeKVM/KVM hypercall ratio collapsing from m400-like (~2.3×) to
//!    Seattle-like (~1.3×) as capacity grows, with the crossover where
//!    capacity covers the working sets.
//! 2. **Stage-2 level ablation** — 3- vs 4-level tables (§5.6): nested
//!    walk cost and its effect on the microbenchmarks per machine.
//! 3. **Promise-search ablation** — which litmus verdicts *require*
//!    promise steps (store speculation) and what certification costs:
//!    outcome counts and states explored with promises off/on.
//!
//! A report generator: always exits `0` on success; a modelling
//! regression panics (non-zero exit). The 0/1/3 verdict contract lives
//! in the checking binaries (`litmus`, `mutate`, `bench`).

use vrm_bench::{row, rule};
use vrm_hwsim::cost::{profiles, CostModel};
use vrm_hwsim::{simulate_micro, HwConfig, HypConfig, HypKind, KernelVersion};
use vrm_memmodel::litmus::battery;
use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};

fn main() {
    // --- 1. TLB capacity sweep ------------------------------------------
    println!("Ablation 1: SeKVM/KVM overhead vs TLB capacity (hypercall, I/O kernel)");
    println!();
    println!(
        "{}",
        row(
            "TLB entries",
            &["hypercall".into(), "io_kernel".into(), "io_user".into()]
        )
    );
    println!("{}", rule(64));
    for tlb in [16u64, 32, 48, 64, 96, 128, 192, 256, 512, 1024] {
        let hw = HwConfig {
            tlb_entries: tlb,
            ..HwConfig::m400()
        };
        let kvm = simulate_micro(hw, HypConfig::new(HypKind::Kvm, KernelVersion::V4_18));
        let sek = simulate_micro(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18));
        println!(
            "{}",
            row(
                &tlb.to_string(),
                &[
                    format!("{:.2}x", sek.hypercall as f64 / kvm.hypercall as f64),
                    format!("{:.2}x", sek.io_kernel as f64 / kvm.io_kernel as f64),
                    format!("{:.2}x", sek.io_user as f64 / kvm.io_user as f64),
                ]
            )
        );
    }
    println!();
    println!(
        "Shape: overhead ratios decay towards the Seattle regime once the TLB\n\
         covers the (doubled, 4 KB-mapped) KServ working sets — the paper's\n\
         explanation for the m400/Seattle gap.\n"
    );

    // --- 2. Stage-2 levels -------------------------------------------------
    println!("Ablation 2: 3- vs 4-level stage-2 tables (SeKVM)");
    println!();
    println!(
        "{}",
        row(
            "machine",
            &[
                "walk(4lvl)".into(),
                "walk(3lvl)".into(),
                "iok(4lvl)".into(),
                "iok(3lvl)".into(),
            ]
        )
    );
    println!("{}", rule(76));
    for hw in [HwConfig::m400(), HwConfig::seattle()] {
        let four = HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18);
        let three = HypConfig::new(HypKind::SeKvm, KernelVersion::V5_4);
        let w4 = CostModel::new(hw, four).nested_walk_cycles();
        let w3 = CostModel::new(hw, three).nested_walk_cycles();
        let m4 = CostModel::new(hw, four).op_cycles(&profiles::io_kernel());
        let m3 = CostModel::new(hw, three).op_cycles(&profiles::io_kernel());
        println!(
            "{}",
            row(
                hw.name,
                &[
                    w4.to_string(),
                    w3.to_string(),
                    m4.to_string(),
                    m3.to_string(),
                ]
            )
        );
    }
    println!();
    println!(
        "Shape: 3-level tables cut the nested-walk refill cost, which matters\n\
         most on the small-TLB m400 (the §5.6 motivation for verifying the\n\
         3-level support).\n"
    );

    // --- 3. Promise search --------------------------------------------------
    println!("Ablation 3: promise steps in the Promising Arm model");
    println!();
    println!(
        "{}",
        row(
            "litmus test",
            &[
                "outcomes -p".into(),
                "outcomes +p".into(),
                "states -p".into(),
                "states +p".into(),
                "needs p?".into(),
            ]
        )
    );
    println!("{}", rule(88));
    let no_p = PromisingConfig {
        promises: false,
        ..Default::default()
    };
    let with_p = PromisingConfig::default();
    let mut need = 0;
    let tests = battery();
    for t in &tests {
        let a = enumerate_promising_with(&t.program, &no_p).unwrap();
        let b = enumerate_promising_with(&t.program, &with_p).unwrap();
        let needs = a.outcomes != b.outcomes;
        need += needs as usize;
        println!(
            "{}",
            row(
                t.name(),
                &[
                    a.outcomes.len().to_string(),
                    b.outcomes.len().to_string(),
                    a.states_explored.to_string(),
                    b.states_explored.to_string(),
                    if needs { "YES" } else { "no" }.into(),
                ]
            )
        );
    }
    println!();
    println!(
        "{need}/{} battery tests have outcomes reachable only via promises\n\
         (load-buffering shapes); for the rest, view-based stale reads suffice —\n\
         which is why the promise-free mode is a useful fast path.",
        tests.len()
    );
}
