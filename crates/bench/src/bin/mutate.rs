//! Mutation-campaign runner: executes the curated `vrm-mutate` mutant
//! set (or a name-filtered subset), prints a human table, optionally
//! writes a JSON report, and exits non-zero unless every mutant was
//! killed.
//!
//! ```console
//! $ cargo run -p vrm-bench --bin mutate --release
//! $ cargo run -p vrm-bench --bin mutate --release -- --jobs 4
//! $ cargo run -p vrm-bench --bin mutate --release -- --json report.json
//! $ cargo run -p vrm-bench --bin mutate --release -- --filter litmus
//! $ VRM_JOBS=8 cargo run -p vrm-bench --bin mutate --release
//! ```
//!
//! Exit codes: `0` — every mutant killed; `1` — at least one mutant
//! survived; `3` — the only misses were `Unknown` (a truncated oracle
//! returned no verdict, so the mutant is neither killed nor survived).

use std::process::ExitCode;

use vrm_mutate::{curated, not_killed, run, to_json, to_table, CampaignConfig, Status};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let n = args.get(i + 1).expect("--jobs needs a worker count");
                cfg.jobs = n.parse().expect("numeric worker count");
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).expect("--json needs a path").clone());
                i += 2;
            }
            "--filter" => {
                filter = Some(args.get(i + 1).expect("--filter needs a substring").clone());
                i += 2;
            }
            "--max-states" => {
                let n = args.get(i + 1).expect("--max-states needs a count");
                cfg.machine_max_states = n.parse().expect("numeric state cap");
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\n\
                     usage: mutate [--jobs N] [--json PATH] [--filter SUBSTR] [--max-states N]\n\
                     exit codes: 0 every mutant killed, 1 any mutant survived, \
                     3 only Unknown misses (truncated oracle, no verdict)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let mut specs = curated();
    if let Some(f) = &filter {
        specs.retain(|s| s.name.contains(f.as_str()) || s.layer.as_str() == f);
    }
    eprintln!(
        "running {} mutants with {} worker thread(s)...",
        specs.len(),
        cfg.jobs
    );
    let report = run(&specs, &cfg);
    print!("{}", to_table(&report));

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&report)).expect("write JSON report");
        eprintln!("JSON report written to {path}");
    }

    let missed = not_killed(&report);
    if missed.is_empty() {
        ExitCode::SUCCESS
    } else {
        // Unknown-only misses (truncated oracles, no verdict) use the
        // shared exit-code convention: 3 instead of a hard failure code.
        let all_unknown = missed.iter().all(|r| r.status == Status::Unknown);
        for r in missed {
            eprintln!(
                "NOT KILLED: {} ({}) — {}",
                r.name,
                r.status.as_str(),
                r.detail
            );
        }
        if all_unknown {
            ExitCode::from(3)
        } else {
            ExitCode::FAILURE
        }
    }
}
