//! Reproduces Figure 8: single-VM application benchmark performance
//! normalized to native, for KVM and SeKVM in Linux 4.18 and 5.4 on both
//! hardware configurations.
//!
//! A report generator: always exits `0` on success; a modelling
//! regression panics (non-zero exit). The 0/1/3 verdict contract lives
//! in the checking binaries (`litmus`, `mutate`, `bench`).

use vrm_bench::{row, rule};
use vrm_hwsim::{simulate_app, workloads, HwConfig, HypConfig, HypKind, KernelVersion};

fn main() {
    println!("Figure 8. Single-VM application benchmark performance");
    println!("(1.0 = native execution on the same hardware; higher is better)");
    println!();
    for hw in [HwConfig::m400(), HwConfig::seattle()] {
        println!("{}:", hw.name);
        println!(
            "{}",
            row(
                "  Benchmark",
                &[
                    "KVM 4.18".into(),
                    "SeKVM 4.18".into(),
                    "KVM 5.4".into(),
                    "SeKVM 5.4".into(),
                    "worst ratio".into(),
                ]
            )
        );
        println!("{}", rule(90));
        for w in workloads() {
            let vals: Vec<f64> = [
                (HypKind::Kvm, KernelVersion::V4_18),
                (HypKind::SeKvm, KernelVersion::V4_18),
                (HypKind::Kvm, KernelVersion::V5_4),
                (HypKind::SeKvm, KernelVersion::V5_4),
            ]
            .into_iter()
            .map(|(k, v)| simulate_app(hw, HypConfig::new(k, v), &w).normalized)
            .collect();
            let worst = (vals[1] / vals[0]).min(vals[3] / vals[2]);
            println!(
                "{}",
                row(
                    &format!("  {}", w.name),
                    &[
                        format!("{:.3}", vals[0]),
                        format!("{:.3}", vals[1]),
                        format!("{:.3}", vals[2]),
                        format!("{:.3}", vals[3]),
                        format!("{:.1}%", worst * 100.0),
                    ]
                )
            );
        }
        println!();
    }
    println!(
        "Shape check (paper): SeKVM performs comparably to unmodified KVM on all\n\
         application workloads — worst-case overhead below 10% versus KVM — and\n\
         there is no substantial relative change across kernel versions."
    );
}
