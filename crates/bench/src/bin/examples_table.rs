//! Reproduces the paper's §1–2 examples: for each of Examples 1–7, shows
//! the behaviour allowed on Arm relaxed memory (Promising model) but
//! forbidden on SC, and — where a repaired variant exists — that the fix
//! removes the relaxed behaviour.
//!
//! A report generator: always exits `0` on success; a modelling
//! regression panics (non-zero exit). The 0/1/3 verdict contract lives
//! in the checking binaries (`litmus`, `mutate`, `bench`).

use vrm_core::paper_examples::all;
use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};
use vrm_memmodel::sc::enumerate_sc;
use vrm_memmodel::values::ValueConfig;

fn cfg(needs_promises: bool) -> PromisingConfig {
    PromisingConfig {
        promises: needs_promises,
        max_promises_per_thread: 1,
        value_cfg: ValueConfig {
            max_rounds: 3,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    println!("Examples 1-7 (paper sections 1-2): RM-only behaviours");
    println!();
    for ex in all() {
        println!("=== {} ===", ex.name);
        println!("    violates: {}", ex.violated_condition);
        let rm_res = enumerate_promising_with(&ex.buggy, &cfg(ex.needs_promises))
            .expect("promising enumeration");
        let rm = rm_res.outcomes;
        let sc = enumerate_sc(&ex.buggy).expect("SC enumeration");
        let cond: Vec<String> = ex.rm_only.iter().map(|(n, v)| format!("{n}={v}")).collect();
        if rm_res.truncated || sc.truncated() {
            // An absent outcome from a truncated enumeration proves
            // nothing: refuse the ALLOWED/FORBIDDEN claims entirely.
            println!(
                "    condition {:?}: UNKNOWN (enumeration truncated after {} RM / {} SC outcomes)",
                cond.join(", "),
                rm.len(),
                sc.len()
            );
            println!();
            continue;
        }
        println!(
            "    condition {:?}: on Arm RM = {}, on SC = {}",
            cond.join(", "),
            if rm.contains_binding(&ex.rm_only) {
                "ALLOWED"
            } else {
                "forbidden (?)"
            },
            if sc.contains_binding(&ex.rm_only) {
                "allowed (?)"
            } else {
                "FORBIDDEN"
            },
        );
        println!(
            "    outcome counts: RM {} vs SC {} (SC subset of RM: {})",
            rm.len(),
            sc.len(),
            sc.is_subset(&rm)
        );
        if let Some(fixed) = &ex.fixed {
            let rm_fixed = enumerate_promising_with(fixed, &cfg(ex.needs_promises))
                .expect("promising enumeration")
                .outcomes;
            let sc_fixed = enumerate_sc(fixed).expect("SC enumeration");
            println!(
                "    fixed variant: RM behaviours subset of SC: {}{}",
                rm_fixed.is_subset(&sc_fixed),
                if ex.fixed_forbids {
                    format!(
                        ", bug outcome gone: {}",
                        !rm_fixed.contains_binding(&ex.rm_only)
                    )
                } else {
                    String::new()
                }
            );
        } else {
            println!("    fix: verification-side (Weak-Memory-Isolation data oracles, Thm 4)");
        }
        println!();
    }
}
