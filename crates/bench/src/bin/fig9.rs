//! Reproduces Figure 9: multi-VM application benchmark performance on the
//! m400 (Linux 4.18), 1 to 32 concurrent 2-vCPU VMs, normalized to one
//! native instance.
//!
//! A report generator: always exits `0` on success; a modelling
//! regression panics (non-zero exit). The 0/1/3 verdict contract lives
//! in the checking binaries (`litmus`, `mutate`, `bench`).

use vrm_bench::{row, rule};
use vrm_hwsim::{
    simulate_multivm, simulate_multivm_discrete, workloads, HwConfig, HypConfig, HypKind,
    KernelVersion, VM_COUNTS,
};

fn main() {
    println!("Figure 9. Multi-VM application benchmark performance (m400, Linux 4.18)");
    println!("(per-instance performance normalized to 1 native instance)");
    println!();
    let hw = HwConfig::m400();
    let kvm = HypConfig::new(HypKind::Kvm, KernelVersion::V4_18);
    let sekvm = HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18);
    for w in workloads() {
        println!("{}:", w.name);
        let header: Vec<String> = VM_COUNTS.iter().map(|n| format!("{n} VMs")).collect();
        println!("{}", row("  hypervisor", &header));
        println!("{}", rule(28 + 12 * VM_COUNTS.len()));
        for (name, hyp) in [("KVM", kvm), ("SeKVM", sekvm)] {
            let vals: Vec<String> = VM_COUNTS
                .iter()
                .map(|&n| format!("{:.3}", simulate_multivm(hw, hyp, &w, n)))
                .collect();
            println!("{}", row(&format!("  {name}"), &vals));
        }
        let ratios: Vec<String> = VM_COUNTS
            .iter()
            .map(|&n| {
                let k = simulate_multivm(hw, kvm, &w, n);
                let s = simulate_multivm(hw, sekvm, &w, n);
                format!("{:.1}%", s / k * 100.0)
            })
            .collect();
        println!("{}", row("  SeKVM/KVM", &ratios));
        // Cross-check: the discrete-event scheduler simulation.
        let discrete: Vec<String> = VM_COUNTS
            .iter()
            .map(|&n| format!("{:.3}", simulate_multivm_discrete(hw, kvm, &w, n, 4000, 7)))
            .collect();
        println!("{}", row("  KVM (discrete)", &discrete));
        println!();
    }
    println!(
        "Shape check (paper): running more concurrent VMs slows each instance\n\
         similarly under both hypervisors; even at 32 VMs SeKVM stays within 10%\n\
         of unmodified KVM on every workload."
    );
}
