//! §5.6: the wDRF conditions and security invariants hold for SeKVM
//! across kernel versions and both stage-2 table geometries.
//!
//! The paper verified eight KVM versions (Linux 4.18–5.5) with 3- and
//! 4-level stage-2 tables. The version ports differ in KServ (untrusted)
//! code; the verified KCore interface is the same, so this reproduction
//! validates the KCore model under both geometries for each version label
//! and reports the validator verdicts.
//!
//! A report generator: always exits `0` on success; a modelling
//! regression panics (non-zero exit). The 0/1/3 verdict contract lives
//! in the checking binaries (`litmus`, `mutate`, `bench`).

use vrm_bench::{row, rule};
use vrm_sekvm::layout::VM_POOL_PFN;
use vrm_sekvm::machine::{lifecycle_script, Machine};
use vrm_sekvm::security::check_invariants;
use vrm_sekvm::wdrf::validate_log;
use vrm_sekvm::KCoreConfig;

const VERSIONS: [&str; 8] = ["4.18", "4.20", "5.0", "5.1", "5.2", "5.3", "5.4", "5.5"];

fn main() {
    println!("Section 5.6: wDRF + security validation across KVM versions");
    println!();
    println!(
        "{}",
        row(
            "Linux version",
            &[
                "s2 levels".into(),
                "ops ok".into(),
                "wDRF".into(),
                "invariants".into(),
            ]
        )
    );
    println!("{}", rule(76));
    let mut all_pass = true;
    for (i, version) in VERSIONS.iter().enumerate() {
        // 4.18 shipped with 4-level tables; 3-level support came with the
        // later ports (we validate it for every version that has it).
        let geometries: &[u32] = if i == 0 { &[4] } else { &[3, 4] };
        for &levels in geometries {
            let scripts = (0..4)
                .map(|c| {
                    lifecycle_script(
                        c as u64,
                        VM_POOL_PFN.0 + (c as u64) * 8,
                        VM_POOL_PFN.0 + (c as u64) * 8 + 4,
                    )
                })
                .collect();
            let mut m = Machine::new(
                KCoreConfig {
                    s2_levels: levels,
                    ..Default::default()
                },
                scripts,
                0xC0FFEE + i as u64,
            );
            let report = m.run(1_000_000);
            let wdrf = validate_log(&m.kcore.log);
            let inv = check_invariants(&m.kcore);
            let pass = report.clean() && wdrf.is_empty() && inv.is_empty();
            all_pass &= pass;
            println!(
                "{}",
                row(
                    version,
                    &[
                        levels.to_string(),
                        report.ops_ok.to_string(),
                        if wdrf.is_empty() { "PASS" } else { "FAIL" }.into(),
                        if inv.is_empty() { "PASS" } else { "FAIL" }.into(),
                    ]
                )
            );
        }
    }
    println!();
    println!(
        "{}",
        if all_pass {
            "All versions and geometries validate — matching the paper's claim that\n\
             the weakened wDRF conditions hold for both 3- and 4-level stage-2\n\
             tables across all eight verified KVM versions."
        } else {
            "VALIDATION FAILURES — see rows above."
        }
    );
}
