//! Perf-trajectory harness: runs the repo's representative workloads —
//! the litmus corpus, the `check_wdrf` paper examples, a machine-layer
//! schedule exploration, and the spec suite (refinement checking plus
//! the abstract ownership machine) — and (optionally) writes one
//! schema-versioned `BENCH_*.json` perf record per workload.
//!
//! ```console
//! $ cargo run -rp vrm-bench --bin bench -- litmus/
//! $ cargo run -rp vrm-bench --bin bench -- --suite wdrf
//! $ cargo run -rp vrm-bench --bin bench -- --jobs 4 --emit-bench BENCH_explore.json litmus/
//! ```
//!
//! Metrics are counts and wall-clock nanoseconds only (see
//! `docs/TELEMETRY.md` for the field-by-field schema); derived ratios
//! belong to whoever reads the trajectory. State counts are
//! deterministic across drivers and machines; `wall_ns` is not —
//! compare trajectories on the same hardware.
//!
//! Exit codes: `0` — every workload PASSed; `1` — at least one FAIL;
//! `3` — no FAILs, but at least one UNKNOWN (an enumeration was cut
//! short by a budget); `2` — usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use vrm_core::paper_examples;
use vrm_core::{check_wdrf, KernelSpec, WdrfCheckConfig};
use vrm_explore::{explore, ExploreConfig, Verdict};
use vrm_memmodel::gen::{self, GenConfig};
use vrm_memmodel::parser::{parse, CheckModel, ParsedLitmus};
use vrm_memmodel::promising::enumerate_promising_with;
use vrm_memmodel::runner::{run_litmus, RunOverrides};
use vrm_memmodel::sc::{enumerate_sc_with, ScConfig};
use vrm_obs::{BenchFile, BenchRecord};
use vrm_sekvm::layout::VM_POOL_PFN;
use vrm_sekvm::machine::{ExhaustiveConfig, Machine, Script};
use vrm_sekvm::{refine, KCoreConfig};
use vrm_spec::{
    step as abs_step, AbsActor, AbsOutcome, AbsPerms, AbsProgram, AbsSpace, AbsState, AbsStep,
    Claim,
};

const USAGE: &str = "usage: bench [--jobs N] \
                     [--suite all|litmus|wdrf|schedules|reduction|spec|serve|fuzz] \
                     [--fuzz-count N] [--fuzz-seed S] [--fuzz-dump DIR] \
                     [--emit-bench PATH] [litmus-dir]\n\
                     exit codes: 0 all PASS, 1 any FAIL, 3 any UNKNOWN \
                     (budget-truncated, no verdict), 2 usage error";

/// Worst-verdict accumulator over the whole run: FAIL (1) dominates
/// UNKNOWN (3) dominates PASS (0) — [`Verdict::merge_exit_codes`], the
/// one lattice every CLI in this repo uses.
fn worse(acc: i32, next: i32) -> i32 {
    Verdict::merge_exit_codes(acc, next)
}

fn verdict_name(code: i32) -> &'static str {
    match code {
        0 => "PASS",
        1 => "FAIL",
        _ => "UNKNOWN",
    }
}

fn collect_litmus_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// One litmus file: SC + promising enumeration, the file's `check`
/// expectations, and the SC ⊆ RM sanity inclusion — the same verdict
/// rule as the `litmus` binary minus the axiomatic cross-check (which
/// has its own cost profile and is benched via `--suite litmus` on the
/// `litmus` binary itself).
fn bench_litmus_file(path: &Path, jobs: Option<usize>, out: &mut BenchFile) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    let mut parsed = match parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    if let Some(jobs) = jobs {
        parsed.promising.jobs = jobs;
    }
    let mut sc_cfg = ScConfig::default();
    if let Some(jobs) = jobs {
        sc_cfg.jobs = jobs;
    }
    let prog = &parsed.program;
    let started = Instant::now();
    let sc = enumerate_sc_with(prog, &sc_cfg).expect("SC enumeration");
    let rm_res = enumerate_promising_with(prog, &parsed.promising).expect("promising");
    let wall_ns = started.elapsed().as_nanos() as u64;
    let truncated = sc.truncated() || rm_res.truncated;
    let rm = rm_res.outcomes;
    let mut ok = sc.is_subset(&rm);
    for c in &parsed.checks {
        let set = match c.model {
            CheckModel::Arm => &rm,
            CheckModel::Sc => &sc,
        };
        let bindings: Vec<(&str, u64)> = c.bindings.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        if set.contains_binding(&bindings) != c.allows {
            ok = false;
        }
    }
    let exit_code = if truncated {
        3
    } else if ok {
        0
    } else {
        1
    };
    let mut stats = sc.stats;
    stats.absorb(&rm.stats);
    out.records.push(
        BenchRecord::new(format!("litmus/{}", prog.name))
            .param("jobs", stats.jobs)
            .metric("sc_outcomes", sc.len() as u64)
            .metric("rm_outcomes", rm.len() as u64)
            .metric("states", stats.states as u64)
            .metric("popped", stats.popped as u64)
            .metric("wall_ns", wall_ns)
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "litmus/{:<26} sc:{:<3} arm:{:<3} states:{:<7} {:>8.1}ms  {}",
        prog.name,
        sc.len(),
        rm.len(),
        stats.states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code)
    );
    exit_code
}

fn run_litmus_suite(dir: &Path, jobs: Option<usize>, out: &mut BenchFile) -> i32 {
    let files = collect_litmus_files(dir);
    if files.is_empty() {
        eprintln!("no .litmus files under {}", dir.display());
        return 1;
    }
    files
        .iter()
        .fold(0, |acc, f| worse(acc, bench_litmus_file(f, jobs, out)))
}

/// The `check_wdrf` workloads: the two repaired plain-memory paper
/// examples plus the Figure 7 ticket lock, under the same budgeted
/// config the mutation campaign uses.
fn run_wdrf_suite(jobs: Option<usize>, out: &mut BenchFile) -> i32 {
    let mut cfg = WdrfCheckConfig {
        skip_sync_conditions: true,
        ..Default::default()
    };
    if let Some(jobs) = jobs {
        cfg.jobs = jobs;
    }
    cfg.promising.max_promises_per_thread = 1;
    cfg.promising.value_cfg.max_rounds = 3;
    let workloads = [
        ("wdrf/example1", paper_examples::example1().fixed.unwrap()),
        ("wdrf/example3", paper_examples::example3().fixed.unwrap()),
        ("wdrf/ticket-lock", paper_examples::gen_vmid_program(true)),
    ];
    let mut acc = 0;
    for (name, prog) in workloads {
        let spec = KernelSpec::for_kernel_threads(0..prog.threads.len());
        let started = Instant::now();
        let v = check_wdrf(&prog, &spec, &cfg).expect("check_wdrf");
        let wall_ns = started.elapsed().as_nanos() as u64;
        let exit_code = v.verdict().exit_code();
        out.records.push(
            BenchRecord::new(name)
                .param("jobs", v.stats.jobs)
                .param("variant", "fixed")
                .param("budget", "campaign")
                .metric("states", v.stats.states as u64)
                .metric("popped", v.stats.popped as u64)
                .metric("counterexamples", v.counterexamples.len() as u64)
                .metric("wall_ns", wall_ns)
                .metric("exit_code", exit_code as u64),
        );
        println!(
            "{name:<33} states:{:<7} {:>8.1}ms  {}",
            v.stats.states,
            wall_ns as f64 / 1e6,
            verdict_name(exit_code)
        );
        acc = worse(acc, exit_code);
    }
    acc
}

/// A minimal two-CPU map → grant → revoke workload with VmId-lock
/// contention: the shared `unmap` workload from the sekvm registry,
/// so the bench records name the same programs the serve daemon runs.
fn unmap_scripts() -> Vec<Script> {
    vrm_sekvm::workloads::unmap()
}

fn run_schedules_suite(jobs: Option<usize>, out: &mut BenchFile) -> i32 {
    let mut ecfg = ExhaustiveConfig {
        max_states: 1 << 18,
        ..Default::default()
    };
    if let Some(jobs) = jobs {
        ecfg.jobs = jobs;
    }
    let started = Instant::now();
    let report = Machine::explore_schedules(KCoreConfig::default(), unmap_scripts(), &ecfg)
        .expect("explore_schedules");
    let wall_ns = started.elapsed().as_nanos() as u64;
    let exit_code = report.verdict().exit_code();
    out.records.push(
        BenchRecord::new("schedules/unmap")
            .param("jobs", report.stats.jobs)
            .param("max_states", ecfg.max_states)
            .metric("outcomes", report.outcomes.len() as u64)
            .metric("states", report.stats.states as u64)
            .metric("popped", report.stats.popped as u64)
            .metric("wall_ns", wall_ns)
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "{:<33} states:{:<7} {:>8.1}ms  {}",
        "schedules/unmap",
        report.stats.states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code)
    );
    exit_code
}

/// The reduction suite (`docs/REDUCTION.md`): reduced-vs-unreduced
/// record pairs on deterministic anchors — the unfenced ISA2 litmus
/// test for the SC sleep-set + ample walk, and the `unmap` / `mirror`
/// machine workloads for schedule-level orbit collapse. Every pair is
/// pinned to the sequential driver (jobs=1): its popped/states counts
/// are exactly reproducible, so CI can grep them as anchors; parallel
/// reduced walks use ample sets only and their counts vary with worker
/// interleaving. The records carry a `reduction=on|off` param, and the
/// suite FAILs outright if a reduced walk changes an outcome set.
fn run_reduction_suite(dir: &Path, out: &mut BenchFile) -> i32 {
    let mut acc = 0;
    let path = dir.join("isa2.litmus");
    let parsed = match std::fs::read_to_string(&path)
        .map_err(|e| e.to_string())
        .and_then(|t| parse(&t).map_err(|e| e.to_string()))
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    let mut sc_pair = Vec::new();
    for reduction in [true, false] {
        let cfg = ScConfig {
            jobs: 1,
            reduction,
            ..ScConfig::default()
        };
        let started = Instant::now();
        let sc = enumerate_sc_with(&parsed.program, &cfg).expect("SC enumeration");
        let wall_ns = started.elapsed().as_nanos() as u64;
        let mode = if reduction { "on" } else { "off" };
        let name = format!("reduction/{}/{mode}", parsed.program.name);
        out.records.push(
            BenchRecord::new(name.clone())
                .param("jobs", 1)
                .param("reduction", mode)
                .metric("sc_outcomes", sc.len() as u64)
                .metric("states", sc.stats.states as u64)
                .metric("popped", sc.stats.popped as u64)
                .metric("wall_ns", wall_ns),
        );
        println!(
            "{name:<33} states:{:<7} popped:{:<7} {:>8.1}ms",
            sc.stats.states,
            sc.stats.popped,
            wall_ns as f64 / 1e6,
        );
        sc_pair.push(sc);
    }
    if sc_pair[0] != sc_pair[1] {
        eprintln!(
            "reduction/{}: the reduced SC walk changed the outcome set",
            parsed.program.name
        );
        acc = 1;
    }
    for workload in ["unmap", "mirror"] {
        let scripts = vrm_sekvm::workloads::by_name(workload).expect("registered workload");
        let mut pair = Vec::new();
        for reduction in [true, false] {
            let ecfg = ExhaustiveConfig {
                jobs: 1,
                reduction,
                ..ExhaustiveConfig::default()
            };
            let started = Instant::now();
            let report = Machine::explore_schedules(KCoreConfig::default(), scripts.clone(), &ecfg)
                .expect("explore_schedules");
            let wall_ns = started.elapsed().as_nanos() as u64;
            let exit_code = report.verdict().exit_code();
            let mode = if reduction { "on" } else { "off" };
            let name = format!("reduction/{workload}/{mode}");
            out.records.push(
                BenchRecord::new(name.clone())
                    .param("jobs", 1)
                    .param("reduction", mode)
                    .metric("outcomes", report.outcomes.len() as u64)
                    .metric("states", report.stats.states as u64)
                    .metric("popped", report.stats.popped as u64)
                    .metric("wall_ns", wall_ns)
                    .metric("exit_code", exit_code as u64),
            );
            println!(
                "{name:<33} states:{:<7} popped:{:<7} {:>8.1}ms  {}",
                report.stats.states,
                report.stats.popped,
                wall_ns as f64 / 1e6,
                verdict_name(exit_code)
            );
            acc = worse(acc, exit_code);
            pair.push(report);
        }
        if pair[0].outcomes != pair[1].outcomes || pair[0].verdict() != pair[1].verdict() {
            eprintln!("reduction/{workload}: the reduced schedule walk changed the outcome set");
            acc = 1;
        }
    }
    acc
}

/// The spec suite: the same unmap workload checked twice.
///
/// 1. `spec/refinement-unmap` — the concrete every-schedule walk with
///    per-transition refinement checking (`Machine::check_refinement`).
/// 2. `spec/abstract-unmap` — the workload's abstract shadow explored
///    directly on the ownership machine: the two authenticated image
///    donations, the zeroed data donation, and the grant/revoke pair,
///    with no locks, tickets, logs or memory images in the state. The
///    `abstract_to_concrete_pct` metric records how much smaller the
///    spec-level walk is than the concrete one it certifies.
fn run_spec_suite(jobs: Option<usize>, out: &mut BenchFile) -> i32 {
    let mut ecfg = ExhaustiveConfig {
        max_states: 1 << 18,
        ..Default::default()
    };
    if let Some(jobs) = jobs {
        ecfg.jobs = jobs;
    }
    let started = Instant::now();
    let report = Machine::check_refinement(KCoreConfig::default(), unmap_scripts(), &ecfg)
        .expect("check_refinement");
    let wall_ns = started.elapsed().as_nanos() as u64;
    let exit_code = report.verdict().exit_code();
    let concrete_states = report.stats.states;
    out.records.push(
        BenchRecord::new("spec/refinement-unmap")
            .param("jobs", report.stats.jobs)
            .param("max_states", ecfg.max_states)
            .metric("outcomes", report.outcomes.len() as u64)
            .metric("violations", report.violations.len() as u64)
            .metric("states", report.stats.states as u64)
            .metric("popped", report.stats.popped as u64)
            .metric("wall_ns", wall_ns)
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "{:<33} states:{:<7} {:>8.1}ms  {}",
        "spec/refinement-unmap",
        report.stats.states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code)
    );
    let mut acc = exit_code;

    let vm = AbsActor::Vm(1);
    let data = VM_POOL_PFN.0 + 4;
    let steps = vec![
        AbsStep::Map {
            who: vm,
            vpn: 0,
            frame: VM_POOL_PFN.0,
            perms: AbsPerms::RWX,
            claim: Claim::Authenticated,
        },
        AbsStep::Map {
            who: vm,
            vpn: 1,
            frame: VM_POOL_PFN.0 + 1,
            perms: AbsPerms::RWX,
            claim: Claim::Authenticated,
        },
        AbsStep::Map {
            who: vm,
            vpn: 64,
            frame: data,
            perms: AbsPerms::RWX,
            claim: Claim::Zeroed,
        },
        AbsStep::Grant { vm: 1, frame: data },
        AbsStep::Map {
            who: AbsActor::Host,
            vpn: data,
            frame: data,
            perms: AbsPerms::RW,
            claim: Claim::Owned,
        },
        AbsStep::Unmap {
            who: AbsActor::Host,
            vpn: data,
        },
        AbsStep::Revoke { vm: 1, frame: data },
    ];
    let space = AbsSpace {
        uni: refine::universe(),
        init: AbsState::boot(),
        prog: AbsProgram {
            threads: vec![steps],
        },
    };
    let mut xcfg = ExploreConfig::with_max_states(1 << 18);
    if let Some(jobs) = jobs {
        xcfg = xcfg.jobs(jobs);
    }
    let started = Instant::now();
    let ex = explore(&space, &xcfg).expect("abstract exploration");
    let wall_ns = started.elapsed().as_nanos() as u64;
    let clean = !ex.emits.is_empty() && ex.emits.iter().all(|o| *o == AbsOutcome::Clean);
    let exit_code = Verdict::from_parts(clean, &ex.stats).exit_code();
    out.records.push(
        BenchRecord::new("spec/abstract-unmap")
            .param("jobs", ex.stats.jobs)
            .param("max_states", 1 << 18)
            .metric("outcomes", ex.emits.len() as u64)
            .metric("states", ex.stats.states as u64)
            .metric("popped", ex.stats.popped as u64)
            .metric("concrete_states", concrete_states as u64)
            .metric(
                "abstract_to_concrete_pct",
                (ex.stats.states * 100 / concrete_states.max(1)) as u64,
            )
            .metric("wall_ns", wall_ns)
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "{:<33} states:{:<7} {:>8.1}ms  {} ({}% of concrete)",
        "spec/abstract-unmap",
        ex.stats.states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code),
        ex.stats.states * 100 / concrete_states.max(1),
    );
    acc = worse(acc, exit_code);
    acc
}

/// The serve-suite corpus: one submit line per litmus file, wDRF
/// catalog program, and machine workload (schedule + refinement),
/// mirroring what the other suites run directly.
fn serve_corpus(dir: &Path, jobs: Option<usize>) -> Vec<String> {
    let with_jobs = |mut w: vrm_obs::json::ObjWriter| {
        if let Some(n) = jobs {
            w.field_u64("jobs", n as u64);
        }
        w.finish()
    };
    let mut lines = Vec::new();
    for file in collect_litmus_files(dir) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let mut w = vrm_obs::json::ObjWriter::new();
        w.field_str("op", "submit")
            .field_str("kind", "litmus")
            .field_str("program", &text);
        lines.push(with_jobs(w));
    }
    for (name, _) in paper_examples::wdrf_catalog() {
        let mut w = vrm_obs::json::ObjWriter::new();
        w.field_str("op", "submit")
            .field_str("kind", "wdrf")
            .field_str("name", name);
        lines.push(with_jobs(w));
    }
    for kind in ["schedules", "refinement"] {
        for workload in vrm_sekvm::workloads::NAMES {
            let mut w = vrm_obs::json::ObjWriter::new();
            w.field_str("op", "submit")
                .field_str("kind", kind)
                .field_str("workload", workload)
                .field_u64("max_states", 1 << 18);
            lines.push(with_jobs(w));
        }
    }
    lines
}

/// Replays the corpus through `clients` concurrent connections;
/// returns the worst exit code seen.
fn serve_replay(endpoint: &vrm_serve::server::Endpoint, lines: &[String], clients: usize) -> i32 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        vrm_serve::Client::connect(endpoint).expect("connect serve client");
                    let mut acc = 0;
                    for line in lines.iter().skip(c).step_by(clients) {
                        let reply = client.request(line).expect("serve request");
                        acc = worse(acc, reply.exit_code.unwrap_or(2));
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().fold(0, |acc, h| {
            worse(acc, h.join().expect("serve client thread"))
        })
    })
}

/// The verification-as-a-service load driver: an in-process daemon
/// (write-ahead logging into a scratch state dir) replays the whole
/// corpus through 4 concurrent clients twice (cold, then warm — the
/// second pass must be answered entirely from the verdict cache),
/// probes checkpoint continuation with an under-budgeted schedule walk
/// re-queried at a larger budget, then restarts the daemon on the same
/// state dir and measures the recovered warm replay (`serve/replay`).
fn run_serve_suite(dir: &Path, jobs: Option<usize>, out: &mut BenchFile) -> i32 {
    use vrm_obs::serve as serve_names;
    use vrm_obs::Counter;

    const CLIENTS: usize = 4;
    let state_dir = std::env::temp_dir().join(format!("vrm-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let durable_cfg = || vrm_serve::ServeConfig {
        workers: CLIENTS,
        state_dir: Some(state_dir.clone()),
        ..Default::default()
    };
    let svc = vrm_serve::Service::start(durable_cfg());
    let handle = vrm_serve::server::serve(
        svc.clone(),
        &vrm_serve::server::Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind serve daemon");
    let endpoint = handle.local().clone();
    let lines = serve_corpus(dir, jobs);

    let mut acc = 0;
    for pass in ["cold", "warm"] {
        let hits0 = Counter::new(serve_names::CACHE_HIT).get();
        let states0 = Counter::new(serve_names::STATES_EXPLORED).get();
        let started = Instant::now();
        let exit_code = serve_replay(&endpoint, &lines, CLIENTS);
        let wall_ns = started.elapsed().as_nanos() as u64;
        let hits = Counter::new(serve_names::CACHE_HIT).get() - hits0;
        let states = Counter::new(serve_names::STATES_EXPLORED).get() - states0;
        out.records.push(
            BenchRecord::new(format!("serve/{pass}"))
                .param("clients", CLIENTS)
                .param("requests", lines.len())
                .metric("cache_hits", hits)
                .metric("states", states)
                .metric("wall_ns", wall_ns)
                .metric(
                    "requests_per_sec_x1000",
                    lines.len() as u64 * 1_000_000_000_000 / wall_ns.max(1),
                )
                .metric("exit_code", exit_code as u64),
        );
        println!(
            "{:<33} states:{:<7} {:>8.1}ms  {} ({}/{} cache hits)",
            format!("serve/{pass}"),
            states,
            wall_ns as f64 / 1e6,
            verdict_name(exit_code),
            hits,
            lines.len(),
        );
        acc = worse(acc, exit_code);
    }

    // Checkpoint continuation: a 40-state budget truncates the unmap
    // walk (Unknown, checkpoint parked); the re-query at a fresh
    // budget resumes it instead of restarting, so its states_new is
    // only the remainder of the space.
    let mut client = vrm_serve::Client::connect(&endpoint).expect("connect serve client");
    let probe = |client: &mut vrm_serve::Client, budget: u64| {
        let mut w = vrm_obs::json::ObjWriter::new();
        w.field_str("op", "submit")
            .field_str("kind", "schedules")
            .field_str("workload", "unmap")
            .field_u64("max_states", budget);
        client.request(&w.finish()).expect("serve request")
    };
    let started = Instant::now();
    let small = probe(&mut client, 40);
    let resumed = probe(&mut client, 1 << 12);
    let wall_ns = started.elapsed().as_nanos() as u64;
    let exit_code = resumed.exit_code.unwrap_or(2);
    out.records.push(
        BenchRecord::new("serve/escalate")
            .param("resumed", resumed.resumed)
            .metric("first_states", small.states)
            .metric("resumed_states_new", resumed.states_new)
            .metric("total_states", resumed.states)
            .metric("wall_ns", wall_ns)
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "{:<33} states:{:<7} {:>8.1}ms  {} (resumed:{} new:{})",
        "serve/escalate",
        resumed.states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code),
        resumed.resumed,
        resumed.states_new,
    );
    acc = worse(acc, exit_code);

    svc.shutdown();
    handle.stop();

    // Durable restart: a fresh daemon on the same state dir must
    // answer the whole corpus from the replayed write-ahead log — the
    // crash-recovery path, measured end to end (WAL replay + 100%
    // warm hits over the wire).
    let replayed0 = Counter::new(serve_names::WAL_REPLAYED).get();
    let svc = vrm_serve::Service::start(durable_cfg());
    let handle = vrm_serve::server::serve(
        svc.clone(),
        &vrm_serve::server::Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind recovered serve daemon");
    let endpoint = handle.local().clone();
    let hits0 = Counter::new(serve_names::CACHE_HIT).get();
    let states0 = Counter::new(serve_names::STATES_EXPLORED).get();
    let replayed = Counter::new(serve_names::WAL_REPLAYED).get() - replayed0;
    let started = Instant::now();
    let exit_code = serve_replay(&endpoint, &lines, CLIENTS);
    let wall_ns = started.elapsed().as_nanos() as u64;
    let hits = Counter::new(serve_names::CACHE_HIT).get() - hits0;
    let states = Counter::new(serve_names::STATES_EXPLORED).get() - states0;
    out.records.push(
        BenchRecord::new("serve/replay")
            .param("clients", CLIENTS)
            .param("requests", lines.len())
            .metric("cache_hits", hits)
            .metric("wal_records_replayed", replayed)
            .metric("states", states)
            .metric("wall_ns", wall_ns)
            .metric(
                "requests_per_sec_x1000",
                lines.len() as u64 * 1_000_000_000_000 / wall_ns.max(1),
            )
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "{:<33} states:{:<7} {:>8.1}ms  {} ({}/{} cache hits after restart)",
        "serve/replay",
        states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code),
        hits,
        lines.len(),
    );
    acc = worse(acc, exit_code);

    svc.shutdown();
    handle.stop();
    let _ = std::fs::remove_dir_all(&state_dir);
    acc
}

/// Per-program state budget for the fuzz suite: 2–3 thread shapes
/// complete exactly well inside it, while a pathological shape
/// degrades to UNKNOWN instead of stalling the whole run.
const FUZZ_MAX_STATES: usize = 1 << 17;

/// Writes a shrunk counterexample next to its seed so CI can upload it
/// as an artifact and a human can replay it with the `litmus` binary.
fn dump_counterexample(dump: Option<&Path>, file: &str, text: &str) {
    eprintln!("fuzz: shrunk witness:\n{text}");
    if let Some(dir) = dump {
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join(file), text.as_bytes()))
        {
            eprintln!("fuzz: writing {file}: {e}");
        }
    }
}

/// The standing differential fuzzer over generated critical cycles:
/// every program at seeds `[seed0, seed0+count)` runs the full litmus
/// pipeline (SC + promising + axiomatic, same [`run_litmus`] as the
/// CLI and the daemon), and any `Fail` — a model-strength lattice
/// violation or conformance break on a program nobody hand-wrote — is
/// shrunk to a 1-minimal shape and dumped as a reproducible `.litmus`
/// file named after its seed.
fn run_fuzz_cycles(
    count: usize,
    seed0: u64,
    dump: Option<&Path>,
    ov: &RunOverrides,
    out: &mut BenchFile,
) -> i32 {
    let cfg = GenConfig::default();
    let mut fails = 0u64;
    let mut unknowns = 0u64;
    let mut states = 0u64;
    let started = Instant::now();
    let mut acc = 0;
    for seed in seed0..seed0 + count as u64 {
        let shape = gen::sample_cycle(seed, &cfg);
        let parsed = gen::render(&shape, &cfg);
        let run = match run_litmus(&parsed, ov) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fuzz: seed {seed:#x}: {e}");
                acc = worse(acc, 2);
                continue;
            }
        };
        states += run.stats.states as u64;
        match run.verdict {
            Verdict::Pass => {}
            Verdict::Unknown { .. } => unknowns += 1,
            Verdict::Fail => {
                fails += 1;
                eprintln!(
                    "fuzz: model disagreement at seed {seed:#x} \
                     (sc:{} rm:{} ax:{:?} conform:{})",
                    run.sc_outcomes, run.rm_outcomes, run.ax_outcomes, run.conform
                );
                let still_failing = |p: &ParsedLitmus| {
                    run_litmus(p, ov).is_ok_and(|r| matches!(r.verdict, Verdict::Fail))
                };
                let min = gen::shrink(&shape, &cfg, still_failing);
                dump_counterexample(
                    dump,
                    &format!("fuzz-cc-s{seed:x}.litmus"),
                    &gen::render_text(&min, &cfg),
                );
            }
        }
    }
    let wall_ns = started.elapsed().as_nanos() as u64;
    let exit_code = if acc == 2 {
        2
    } else if fails > 0 {
        1
    } else if unknowns > 0 {
        3
    } else {
        0
    };
    out.records.push(
        BenchRecord::new("fuzz/cycles")
            .param("seed0", seed0 as usize)
            .param("max_states", FUZZ_MAX_STATES)
            .metric("programs", count as u64)
            .metric("disagreements", fails)
            .metric("unknown", unknowns)
            .metric("states", states)
            .metric("wall_ns", wall_ns)
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "{:<33} states:{:<7} {:>8.1}ms  {} ({count} programs, {fails} disagreements)",
        "fuzz/cycles",
        states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code),
    );
    exit_code
}

/// Page-table-walk differential fuzz: generated break-before-make /
/// TLBI-placement / stale-walk scenarios, each judged three ways —
///
/// 1. the abstract ownership machine: `vrm-spec`'s `Walk` verb must
///    accept the walk while mapped and reject it after `Unmap` (the
///    spec-level reading of "no stale translation");
/// 2. the SC enumeration must never reach the stale outcome;
/// 3. the relaxed model must reach it **iff** the maintenance protocol
///    is too weak ([`gen::WalkKind::bbm_sound`] is false) — a sound
///    break-before-make sequence forbidding it, a missing barrier or
///    missing TLBI allowing it.
fn run_fuzz_walks(
    count: usize,
    seed0: u64,
    dump: Option<&Path>,
    jobs: Option<usize>,
    out: &mut BenchFile,
) -> i32 {
    let uni = refine::universe();
    let frame = VM_POOL_PFN.0 + 4;
    let mut violations = 0u64;
    let mut unknowns = 0u64;
    let mut states = 0u64;
    let started = Instant::now();
    let mut acc = 0;
    for seed in seed0..seed0 + count as u64 {
        let w = gen::sample_walk(seed);
        let mut sc_cfg = ScConfig {
            max_states: FUZZ_MAX_STATES,
            ..Default::default()
        };
        let mut pm_cfg = w.parsed.promising.clone();
        pm_cfg.max_states = FUZZ_MAX_STATES;
        if let Some(jobs) = jobs {
            sc_cfg.jobs = jobs;
            pm_cfg.jobs = jobs;
        }
        let (sc, rm_res) = match (
            enumerate_sc_with(&w.parsed.program, &sc_cfg),
            enumerate_promising_with(&w.parsed.program, &pm_cfg),
        ) {
            (Ok(sc), Ok(rm)) => (sc, rm),
            (sc, rm) => {
                let e = sc.err().or(rm.err()).unwrap();
                eprintln!("fuzz: walk seed {seed:#x}: {e}");
                acc = worse(acc, 2);
                continue;
            }
        };
        states += (sc.stats.states + rm_res.outcomes.stats.states) as u64;
        let truncated = sc.truncated() || rm_res.truncated;
        let bindings: Vec<(&str, u64)> = w.stale.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let sc_stale = sc.contains_binding(&bindings);
        let rm_stale = rm_res.outcomes.contains_binding(&bindings);

        // The abstract machine's verdict on the same scenario: map the
        // page, walk it (legal), unmap it, walk again (must be
        // rejected — the spec has no TLB to be stale in).
        let map = AbsStep::Map {
            who: AbsActor::Host,
            vpn: w.vpn,
            frame,
            perms: AbsPerms::RW,
            claim: Claim::Owned,
        };
        let walk = AbsStep::Walk {
            who: AbsActor::Host,
            vpn: w.vpn,
            frame,
            write: false,
        };
        let mapped = abs_step(&uni, &AbsState::boot(), &map).expect("host map of owned frame");
        let spec_ok = abs_step(&uni, &mapped, &walk).is_ok();
        let unmapped = abs_step(
            &uni,
            &mapped,
            &AbsStep::Unmap {
                who: AbsActor::Host,
                vpn: w.vpn,
            },
        )
        .expect("host unmap");
        let spec_rejects_stale = abs_step(&uni, &unmapped, &walk).is_err();

        let mut ok = spec_ok && spec_rejects_stale && !sc_stale;
        if truncated {
            unknowns += 1;
        } else {
            // Only a complete relaxed enumeration can certify the
            // allows/forbids direction: the stale walk must be
            // RM-reachable exactly when the protocol is unsound.
            ok = ok && rm_stale != w.kind.bbm_sound();
        }
        if !ok {
            violations += 1;
            eprintln!(
                "fuzz: walk disagreement at seed {seed:#x} ({}): \
                 spec_ok:{spec_ok} spec_rejects_stale:{spec_rejects_stale} \
                 sc_stale:{sc_stale} rm_stale:{rm_stale}",
                w.kind.as_str()
            );
            dump_counterexample(
                dump,
                &format!("fuzz-walk-s{seed:x}.litmus"),
                &w.parsed.to_string(),
            );
        }
    }
    let wall_ns = started.elapsed().as_nanos() as u64;
    let exit_code = if acc == 2 {
        2
    } else if violations > 0 {
        1
    } else if unknowns > 0 {
        3
    } else {
        0
    };
    out.records.push(
        BenchRecord::new("fuzz/walks")
            .param("seed0", seed0 as usize)
            .param("max_states", FUZZ_MAX_STATES)
            .metric("programs", count as u64)
            .metric("disagreements", violations)
            .metric("unknown", unknowns)
            .metric("states", states)
            .metric("wall_ns", wall_ns)
            .metric("exit_code", exit_code as u64),
    );
    println!(
        "{:<33} states:{:<7} {:>8.1}ms  {} ({count} programs, {violations} disagreements)",
        "fuzz/walks",
        states,
        wall_ns as f64 / 1e6,
        verdict_name(exit_code),
    );
    exit_code
}

/// Replays a slice of the generated corpus through an in-process
/// daemon twice: programs the daemon has never seen exercise the
/// digest/normalization path cold, and the second pass must be
/// answered entirely from the verdict cache.
fn run_fuzz_serve_replay(
    count: usize,
    seed0: u64,
    jobs: Option<usize>,
    out: &mut BenchFile,
) -> i32 {
    use vrm_obs::serve as serve_names;
    use vrm_obs::Counter;

    const CLIENTS: usize = 2;
    let cfg = GenConfig::default();
    let lines: Vec<String> = (seed0..seed0 + count as u64)
        .map(|seed| {
            let text = gen::render_text(&gen::sample_cycle(seed, &cfg), &cfg);
            let mut w = vrm_obs::json::ObjWriter::new();
            w.field_str("op", "submit")
                .field_str("kind", "litmus")
                .field_str("program", &text)
                .field_u64("max_states", FUZZ_MAX_STATES as u64);
            if let Some(n) = jobs {
                w.field_u64("jobs", n as u64);
            }
            w.finish()
        })
        .collect();
    let svc = vrm_serve::Service::start(vrm_serve::ServeConfig {
        workers: CLIENTS,
        ..Default::default()
    });
    let handle = vrm_serve::server::serve(
        svc.clone(),
        &vrm_serve::server::Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind serve daemon");
    let endpoint = handle.local().clone();
    let mut acc = 0;
    let mut warm_hits = 0;
    for pass in ["cold", "warm"] {
        let hits0 = Counter::new(serve_names::CACHE_HIT).get();
        let started = Instant::now();
        let exit_code = serve_replay(&endpoint, &lines, CLIENTS);
        let wall_ns = started.elapsed().as_nanos() as u64;
        let hits = Counter::new(serve_names::CACHE_HIT).get() - hits0;
        if pass == "warm" {
            warm_hits = hits;
        }
        out.records.push(
            BenchRecord::new(format!("fuzz/serve-{pass}"))
                .param("clients", CLIENTS)
                .param("requests", lines.len())
                .metric("cache_hits", hits)
                .metric("wall_ns", wall_ns)
                .metric("exit_code", exit_code as u64),
        );
        println!(
            "{:<33} hits:{:<7} {:>8.1}ms  {}",
            format!("fuzz/serve-{pass}"),
            hits,
            wall_ns as f64 / 1e6,
            verdict_name(exit_code),
        );
        acc = worse(acc, exit_code);
    }
    // An unseen generated corpus must still dedup perfectly: a cold
    // miss per distinct program, then all hits.
    if warm_hits < lines.len() as u64 {
        eprintln!(
            "fuzz: warm serve replay had {warm_hits}/{} cache hits",
            lines.len()
        );
        acc = worse(acc, 1);
    }
    svc.shutdown();
    handle.stop();
    acc
}

/// `--suite fuzz`: cycles, walks, and the generated-corpus serve
/// replay. Walks run a quarter of the cycle count (their shape space
/// is smaller), the serve replay a fixed small slice.
fn run_fuzz_suite(
    count: usize,
    seed0: u64,
    dump: Option<&Path>,
    jobs: Option<usize>,
    out: &mut BenchFile,
) -> i32 {
    let ov = RunOverrides {
        jobs,
        max_states: Some(FUZZ_MAX_STATES),
    };
    let mut acc = run_fuzz_cycles(count, seed0, dump, &ov, out);
    acc = worse(
        acc,
        run_fuzz_walks((count / 4).max(1), seed0, dump, jobs, out),
    );
    acc = worse(acc, run_fuzz_serve_replay(count.min(24), seed0, jobs, out));
    acc
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs: Option<usize> = None;
    let mut suite = "all".to_string();
    let mut emit: Option<PathBuf> = None;
    let mut litmus_dir: Option<PathBuf> = None;
    let mut fuzz_count: usize = 64;
    let mut fuzz_seed: u64 = 1;
    let mut fuzz_dump: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fuzz-count" => {
                let Some(n) = args.get(i + 1).and_then(|n| n.parse().ok()) else {
                    eprintln!("--fuzz-count needs a program count\n{USAGE}");
                    return ExitCode::from(2);
                };
                fuzz_count = n;
                i += 2;
            }
            "--fuzz-seed" => {
                let Some(n) = args.get(i + 1).and_then(|n| n.parse().ok()) else {
                    eprintln!("--fuzz-seed needs a numeric seed\n{USAGE}");
                    return ExitCode::from(2);
                };
                fuzz_seed = n;
                i += 2;
            }
            "--fuzz-dump" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--fuzz-dump needs a directory path\n{USAGE}");
                    return ExitCode::from(2);
                };
                fuzz_dump = Some(PathBuf::from(p));
                i += 2;
            }
            "--jobs" => {
                let Some(n) = args.get(i + 1).and_then(|n| n.parse().ok()) else {
                    eprintln!("--jobs needs a numeric worker count\n{USAGE}");
                    return ExitCode::from(2);
                };
                jobs = Some(n);
                i += 2;
            }
            "--suite" => {
                let Some(s) = args.get(i + 1) else {
                    eprintln!("--suite needs all|litmus|wdrf|schedules|spec\n{USAGE}");
                    return ExitCode::from(2);
                };
                if ![
                    "all",
                    "litmus",
                    "wdrf",
                    "schedules",
                    "reduction",
                    "spec",
                    "serve",
                    "fuzz",
                ]
                .contains(&s.as_str())
                {
                    eprintln!("unknown suite {s:?}\n{USAGE}");
                    return ExitCode::from(2);
                }
                suite = s.clone();
                i += 2;
            }
            "--emit-bench" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--emit-bench needs an output path\n{USAGE}");
                    return ExitCode::from(2);
                };
                emit = Some(PathBuf::from(p));
                i += 2;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            dir => {
                litmus_dir = Some(PathBuf::from(dir));
                i += 1;
            }
        }
    }
    let litmus_dir = litmus_dir.unwrap_or_else(|| PathBuf::from("litmus"));
    let run_litmus = matches!(suite.as_str(), "all" | "litmus");
    let run_wdrf = matches!(suite.as_str(), "all" | "wdrf");
    let run_schedules = matches!(suite.as_str(), "all" | "schedules");
    let run_reduction = matches!(suite.as_str(), "all" | "reduction");
    let run_spec = matches!(suite.as_str(), "all" | "spec");
    let run_serve = matches!(suite.as_str(), "all" | "serve");
    // The fuzzer is a standing job with its own CI lane and budget
    // knobs, not part of the default trajectory — `all` excludes it so
    // perf records stay comparable across fuzz-count changes.
    let run_fuzz = suite == "fuzz";
    if (run_litmus || run_reduction) && !litmus_dir.is_dir() {
        eprintln!("litmus dir {} not found\n{USAGE}", litmus_dir.display());
        return ExitCode::from(2);
    }

    let mut out = BenchFile::new(if suite == "all" {
        "explore"
    } else {
        suite.as_str()
    });
    let mut acc = 0;
    if run_litmus {
        acc = worse(acc, run_litmus_suite(&litmus_dir, jobs, &mut out));
    }
    if run_wdrf {
        acc = worse(acc, run_wdrf_suite(jobs, &mut out));
    }
    if run_schedules {
        acc = worse(acc, run_schedules_suite(jobs, &mut out));
    }
    if run_reduction {
        acc = worse(acc, run_reduction_suite(&litmus_dir, &mut out));
    }
    if run_spec {
        acc = worse(acc, run_spec_suite(jobs, &mut out));
    }
    if run_serve {
        acc = worse(acc, run_serve_suite(&litmus_dir, jobs, &mut out));
    }
    if run_fuzz {
        acc = worse(
            acc,
            run_fuzz_suite(fuzz_count, fuzz_seed, fuzz_dump.as_deref(), jobs, &mut out),
        );
    }

    if let Some(path) = &emit {
        if let Err(e) = out.write_to(path) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} record(s) to {} ({})",
            out.records.len(),
            path.display(),
            out.schema
        );
    }
    eprintln!("overall: {}", verdict_name(acc));
    match acc {
        0 => ExitCode::SUCCESS,
        1 => ExitCode::FAILURE,
        _ => ExitCode::from(3),
    }
}
