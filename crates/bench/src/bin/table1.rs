//! The substitute for Table 1.
//!
//! The paper's Table 1 counts lines of Coq proof. A Rust reproduction has
//! no proof scripts; the corresponding *verification effort* here is the
//! machine-checked evidence produced by exhaustive enumeration and
//! validation. This binary regenerates that evidence and reports its
//! size, next to the paper's LOC numbers for orientation.
//!
//! A report generator: always exits `0` on success; a modelling
//! regression panics (non-zero exit). The 0/1/3 verdict contract lives
//! in the checking binaries (`litmus`, `mutate`, `bench`).

use vrm_core::paper_examples;
use vrm_core::pushpull::check_pushpull;
use vrm_core::spec::KernelSpec;
use vrm_memmodel::axiomatic::{enumerate_axiomatic_with, AxConfig};
use vrm_memmodel::litmus;
use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};
use vrm_memmodel::sc::enumerate_sc;
use vrm_memmodel::values::ValueConfig;
use vrm_sekvm::machine::{lifecycle_script, Machine};
use vrm_sekvm::security::check_invariants;
use vrm_sekvm::wdrf::validate_log;
use vrm_sekvm::KCoreConfig;

/// A found violation is concrete evidence even under truncation, so FAIL
/// stays FAIL; but "no violation found" over a truncated walk must be
/// rendered UNKNOWN, never PASS.
fn verdict_str(holds: bool, truncated: bool) -> &'static str {
    if !holds {
        "FAIL"
    } else if truncated {
        "UNKNOWN"
    } else {
        "PASS"
    }
}

fn main() {
    println!("Table 1 substitute: verification effort");
    println!("(paper: Coq LOC; here: machine-checked enumeration evidence)");
    println!();

    // --- Part 1: VRM sufficiency of the wDRF conditions -----------------
    // Paper: 3.4K LOC. Here: cross-model conformance of the two
    // independent memory-model implementations plus the RM⊆SC theorem
    // checks on the example gallery.
    let mut battery_states = 0usize;
    let mut battery_candidates = 0usize;
    let battery = litmus::battery();
    let n_battery = battery.len();
    let mut agree = 0;
    for t in &battery {
        let pr = enumerate_promising_with(&t.program, &PromisingConfig::default()).unwrap();
        let ax = enumerate_axiomatic_with(&t.program, &AxConfig::default()).unwrap();
        battery_states += pr.states_explored;
        battery_candidates += ax.candidates;
        if pr.outcomes == ax.outcomes {
            agree += 1;
        }
    }
    let mut ex_states = 0usize;
    let examples = paper_examples::all();
    let n_examples = examples.len();
    let mut rm_only_shown = 0;
    let cfg = |p: bool| PromisingConfig {
        promises: p,
        max_promises_per_thread: 1,
        value_cfg: ValueConfig {
            max_rounds: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    for ex in &examples {
        let rm = enumerate_promising_with(&ex.buggy, &cfg(ex.needs_promises)).unwrap();
        ex_states += rm.states_explored;
        let sc = enumerate_sc(&ex.buggy).unwrap();
        if rm.outcomes.contains_binding(&ex.rm_only) && !sc.contains_binding(&ex.rm_only) {
            rm_only_shown += 1;
        }
    }
    println!("1. VRM sufficiency of wDRF conditions       (paper: 3.4K Coq LOC)");
    println!("   litmus battery: {n_battery} tests, {agree} model-agreements");
    println!("   Promising states explored: {battery_states}");
    println!("   axiomatic candidate executions checked: {battery_candidates}");
    println!("   example gallery: {n_examples} examples, {rm_only_shown} RM-only behaviours demonstrated");
    println!("   Promising states explored (examples): {ex_states}");
    println!();

    // --- Part 2: SeKVM satisfies the wDRF conditions --------------------
    // Paper: 3.8K LOC. Here: push/pull verification of the ticket-locked
    // primitives + dynamic validation of full machine executions.
    let gen_vmid = paper_examples::gen_vmid_program(true);
    let mut spec = KernelSpec::for_kernel_threads([0, 1]);
    spec.shared_data = [0x12].into();
    let pp = check_pushpull(&gen_vmid, &spec, &cfg(false)).unwrap();
    let mut total_events = 0usize;
    let mut machine_runs = 0usize;
    let mut violations = 0usize;
    for levels in [3u32, 4u32] {
        for seed in 0..4u64 {
            let scripts = (0..4)
                .map(|i| {
                    lifecycle_script(
                        i as u64,
                        vrm_sekvm::layout::VM_POOL_PFN.0 + (i as u64) * 8,
                        vrm_sekvm::layout::VM_POOL_PFN.0 + (i as u64) * 8 + 4,
                    )
                })
                .collect();
            let mut m = Machine::new(
                KCoreConfig {
                    s2_levels: levels,
                    ..Default::default()
                },
                scripts,
                seed,
            );
            m.run(1_000_000);
            total_events += m.kcore.log.len();
            violations += validate_log(&m.kcore.log).len();
            machine_runs += 1;
        }
    }
    println!("2. SeKVM satisfies wDRF conditions          (paper: 3.8K Coq LOC)");
    println!(
        "   gen_vmid (Figure 7) on push/pull Promising: {} states, \
         DRF-Kernel {}, No-Barrier-Misuse {}",
        pp.states_explored,
        verdict_str(pp.drf_kernel_holds(), pp.truncated),
        verdict_str(pp.no_barrier_misuse_holds(), pp.truncated)
    );
    println!(
        "   machine validation: {machine_runs} runs (3- and 4-level stage-2), \
         {total_events} events, {violations} wDRF violations"
    );
    println!();

    // --- Part 3: SeKVM security guarantees on SC -------------------------
    // Paper: 34.2K LOC. Here: the security invariant checks over machine
    // executions (confidentiality/integrity scenarios live in the test
    // suite).
    let mut invariant_checks = 0usize;
    let mut invariant_violations = 0usize;
    for seed in 0..8u64 {
        let scripts = (0..4)
            .map(|i| {
                lifecycle_script(
                    i as u64,
                    vrm_sekvm::layout::VM_POOL_PFN.0 + (i as u64) * 8,
                    vrm_sekvm::layout::VM_POOL_PFN.0 + (i as u64) * 8 + 4,
                )
            })
            .collect();
        let mut m = Machine::new(KCoreConfig::default(), scripts, seed);
        m.run(1_000_000);
        invariant_violations += check_invariants(&m.kcore).len();
        invariant_checks += 1;
    }
    println!("3. SeKVM security guarantees                (paper: 34.2K Coq LOC)");
    println!(
        "   invariant sweeps: {invariant_checks} seeded executions, \
         {invariant_violations} violations of the s2page/mapping invariants"
    );
    println!();
    println!(
        "Note: effort proportions mirror the paper — the SC security argument\n\
         (part 3) is by far the largest artifact; extending it to relaxed\n\
         memory (parts 1-2) costs an order of magnitude less."
    );
}
