//! Benchmark harness regenerating every table and figure of the VRM paper.
//!
//! Binaries (run with `cargo run -p vrm-bench --bin <name>`):
//!
//! * `examples_table` — the §1–2 examples: RM-only behaviours vs SC;
//! * `table1` — verification-effort summary (the model-checking
//!   substitute for the paper's Coq LOC table);
//! * `table3` — microbenchmark cycles, KVM vs SeKVM on m400 and Seattle
//!   (with Table 2's operation descriptions);
//! * `fig8` — single-VM application benchmarks normalized to native;
//! * `fig9` — 1–32-VM scalability on the m400;
//! * `versions` — §5.6: the wDRF validation across kernel versions and
//!   3-/4-level stage-2 tables.
//!
//! Criterion benches (`cargo bench -p vrm-bench`) measure the throughput
//! of the reproduction's own machinery (model enumeration, hypervisor
//! operations, cost-model evaluation).

#![warn(missing_docs)]

/// Formats one table row with a fixed-width label column.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<28}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Prints a rule line.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}
