//! Criterion bench: parallel exploration speedup.
//!
//! The headline measurement for the unified engine — the full litmus
//! battery (SC + promising + axiomatic conformance per test) at worker
//! counts 1/2/4/8, plus a single heavy promising enumeration, so the
//! work-stealing driver's scaling is visible both across many small
//! state spaces and within one large one.
//!
//! Speedup requires hardware parallelism: on a single-core host the
//! `jobs > 1` rows only measure the driver's coordination overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use vrm_memmodel::builder::ProgramBuilder;
use vrm_memmodel::ir::{Program, Reg};
use vrm_memmodel::litmus::{battery, check_with_jobs};
use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};

fn sb4() -> Program {
    // Four-thread store-buffering ring: one big promising state space.
    let locs = [0x10u64, 0x20, 0x30, 0x40];
    let mut p = ProgramBuilder::new("SB4");
    for i in 0..4usize {
        let w = locs[i];
        let r = locs[(i + 1) % 4];
        p.thread("t", move |t| {
            t.store(w, 1u64, false);
            t.load(Reg(0), r, false);
        });
    }
    for i in 0..4 {
        p.observe_reg(&format!("r{i}"), i, Reg(0));
    }
    p.build()
}

fn bench_explore_parallel(c: &mut Criterion) {
    let tests = battery();
    for jobs in [1usize, 2, 4, 8] {
        c.bench_function(&format!("battery/jobs={jobs}"), |b| {
            b.iter(|| {
                for t in &tests {
                    check_with_jobs(black_box(t), jobs).unwrap();
                }
            })
        });
    }
    let sb4 = sb4();
    for jobs in [1usize, 8] {
        c.bench_function(&format!("promising-SB4/jobs={jobs}"), |b| {
            b.iter(|| {
                enumerate_promising_with(
                    black_box(&sb4),
                    &PromisingConfig {
                        jobs,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
}

criterion_group!(benches, bench_explore_parallel);
criterion_main!(benches);
