//! Criterion benches: memory-model enumeration throughput.
//!
//! These measure the reproduction's own machinery (there is no hardware
//! counterpart): how fast the SC, Promising Arm, and Armv8 axiomatic
//! enumerators chew through standard litmus shapes.

use criterion::{criterion_group, criterion_main, Criterion};

use vrm_memmodel::axiomatic::enumerate_axiomatic;
use vrm_memmodel::builder::ProgramBuilder;
use vrm_memmodel::ir::{Program, Reg};
use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};
use vrm_memmodel::sc::enumerate_sc;

fn mp() -> Program {
    let (x, y) = (0x10, 0x20);
    let mut p = ProgramBuilder::new("MP");
    p.thread("T0", |t| {
        t.store(x, 1u64, false);
        t.store(y, 1u64, false);
    });
    p.thread("T1", |t| {
        t.load(Reg(0), y, false);
        t.load(Reg(1), x, false);
    });
    p.observe_reg("f", 1, Reg(0));
    p.observe_reg("d", 1, Reg(1));
    p.build()
}

fn sb3() -> Program {
    // Three-thread store-buffering variant: a heavier enumeration.
    let locs = [0x10u64, 0x20, 0x30];
    let mut p = ProgramBuilder::new("SB3");
    for i in 0..3usize {
        let w = locs[i];
        let r = locs[(i + 1) % 3];
        p.thread("t", move |t| {
            t.store(w, 1u64, false);
            t.load(Reg(0), r, false);
        });
    }
    for i in 0..3 {
        p.observe_reg(&format!("r{i}"), i, Reg(0));
    }
    p.build()
}

fn bench_models(c: &mut Criterion) {
    let mp = mp();
    let sb3 = sb3();
    c.bench_function("sc/MP", |b| {
        b.iter(|| enumerate_sc(std::hint::black_box(&mp)).unwrap())
    });
    c.bench_function("promising/MP", |b| {
        b.iter(|| {
            enumerate_promising_with(
                std::hint::black_box(&mp),
                &PromisingConfig {
                    promises: false,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    c.bench_function("promising-with-promises/MP", |b| {
        b.iter(|| {
            enumerate_promising_with(std::hint::black_box(&mp), &PromisingConfig::default())
                .unwrap()
        })
    });
    c.bench_function("axiomatic/MP", |b| {
        b.iter(|| enumerate_axiomatic(std::hint::black_box(&mp)).unwrap())
    });
    c.bench_function("promising/SB3", |b| {
        b.iter(|| {
            enumerate_promising_with(
                std::hint::black_box(&sb3),
                &PromisingConfig {
                    promises: false,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    c.bench_function("axiomatic/SB3", |b| {
        b.iter(|| enumerate_axiomatic(std::hint::black_box(&sb3)).unwrap())
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
