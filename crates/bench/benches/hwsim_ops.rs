//! Criterion benches: performance-simulator evaluation cost, and a check
//! that regenerating every table/figure of the paper is instantaneous.

use criterion::{criterion_group, criterion_main, Criterion};

use vrm_hwsim::{
    simulate_app, simulate_micro, simulate_multivm, workloads, HwConfig, HypConfig, HypKind,
    KernelVersion, VM_COUNTS,
};

fn bench_hwsim(c: &mut Criterion) {
    let hw = HwConfig::m400();
    let hyp = HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18);
    c.bench_function("hwsim/micro-table", |b| {
        b.iter(|| simulate_micro(std::hint::black_box(hw), std::hint::black_box(hyp)))
    });
    c.bench_function("hwsim/fig8-all-bars", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for hwc in [HwConfig::m400(), HwConfig::seattle()] {
                for kind in [HypKind::Kvm, HypKind::SeKvm] {
                    for kernel in [KernelVersion::V4_18, KernelVersion::V5_4] {
                        for w in workloads() {
                            acc += simulate_app(hwc, HypConfig::new(kind, kernel), &w).normalized;
                        }
                    }
                }
            }
            acc
        })
    });
    c.bench_function("hwsim/fig9-all-points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for kind in [HypKind::Kvm, HypKind::SeKvm] {
                let hy = HypConfig::new(kind, KernelVersion::V4_18);
                for w in workloads() {
                    for n in VM_COUNTS {
                        acc += simulate_multivm(hw, hy, &w, n);
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_hwsim);
criterion_main!(benches);
