//! Criterion benches: hypervisor-model operation throughput.
//!
//! How expensive are the SeKVM model's primitives — ticket-lock hand-off,
//! stage-2 map/unmap (3- vs 4-level, with and without per-op
//! Transactional-Page-Table checking), and a full multi-CPU VM lifecycle.

use criterion::{criterion_group, criterion_main, Criterion};

use vrm_sekvm::layout::VM_POOL_PFN;
use vrm_sekvm::machine::{lifecycle_script, Machine};
use vrm_sekvm::ticketlock::TicketLock;
use vrm_sekvm::{KCore, KCoreConfig};

fn bench_ticket_lock(c: &mut Criterion) {
    c.bench_function("ticketlock/acquire-release", |b| {
        let mut l = TicketLock::new();
        b.iter(|| {
            let t = l.draw();
            assert!(l.try_enter(0, t));
            l.release(0);
        })
    });
}

fn bench_stage2(c: &mut Criterion) {
    for levels in [3u32, 4u32] {
        for check in [false, true] {
            let name = format!(
                "stage2/map-unmap/{levels}-level{}",
                if check { "+txcheck" } else { "" }
            );
            c.bench_function(&name, |b| {
                let mut k = KCore::boot(KCoreConfig {
                    s2_levels: levels,
                    check_transactional: check,
                    ..Default::default()
                });
                let vmid = boot_vm(&mut k);
                let mut gpa = 1024 * vrm_sekvm::layout::PAGE_WORDS;
                let mut donor = VM_POOL_PFN.0 + 16;
                b.iter(|| {
                    k.handle_s2_fault(0, vmid, gpa, donor).unwrap();
                    gpa += vrm_sekvm::layout::PAGE_WORDS;
                    donor += 1;
                });
            });
        }
    }
}

fn boot_vm(k: &mut KCore) -> u32 {
    let pfns = vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1];
    let mut words = Vec::new();
    for &pfn in &pfns {
        for w in 0..vrm_sekvm::layout::PAGE_WORDS {
            let v = pfn + w;
            k.mem.write(vrm_sekvm::layout::page_addr(pfn) + w, v);
            words.push(v);
        }
    }
    let hash = KCore::image_hash(&words);
    let vmid = k.register_vm(0).unwrap();
    k.register_vcpu(0, vmid).unwrap();
    k.set_boot_info(0, vmid, pfns, hash).unwrap();
    k.remap_vm_image(0, vmid).unwrap();
    k.verify_vm_image(0, vmid).unwrap();
    vmid
}

fn bench_lifecycle(c: &mut Criterion) {
    c.bench_function("machine/4cpu-lifecycle", |b| {
        b.iter(|| {
            let scripts = (0..4)
                .map(|i| {
                    lifecycle_script(
                        i as u64,
                        VM_POOL_PFN.0 + (i as u64) * 8,
                        VM_POOL_PFN.0 + (i as u64) * 8 + 4,
                    )
                })
                .collect();
            let mut m = Machine::new(KCoreConfig::default(), scripts, 7);
            let r = m.run(1_000_000);
            assert!(r.clean());
        })
    });
}

fn bench_hypercalls(c: &mut Criterion) {
    c.bench_function("hypercall/send_sgi+ack", |b| {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k);
        k.register_vcpu(0, vmid).unwrap();
        b.iter(|| {
            k.send_sgi(0, vmid, 1, 3).unwrap();
            k.ack_irq(1, vmid, 1, 3).unwrap();
        })
    });
    c.bench_function("hypercall/uart_write", |b| {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k);
        b.iter(|| k.uart_write(0, vmid, b'x').unwrap())
    });
    c.bench_function("hypercall/grant+revoke", |b| {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k);
        b.iter(|| {
            k.grant_page(0, vmid, 0).unwrap();
            k.revoke_page(0, vmid, 0).unwrap();
        })
    });
    c.bench_function("hypercall/export_page", |b| {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k);
        let dest = VM_POOL_PFN.0 + 32;
        b.iter(|| {
            k.export_vm_page(0, vmid, 0, dest).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_ticket_lock,
    bench_stage2,
    bench_lifecycle,
    bench_hypercalls
);
criterion_main!(benches);
