//! Scrubbed page pools.
//!
//! KCore dynamically builds page tables from pages "allocated from a
//! reserved page pool private to KCore. All bytes of a newly allocated
//! page are guaranteed to be 0. KCore scrubs the pool of memory during
//! initialization" (§5.4). Transactionality of `set_s2pt` depends on
//! this zero guarantee, so the pool asserts it.

use vrm_memmodel::ir::Addr;

use crate::mem::PhysMem;

/// A bump allocator over a reserved, scrubbed physical region.
#[derive(Debug, Clone)]
pub struct PagePool {
    base: Addr,
    page_words: u64,
    capacity: u64,
    next: u64,
}

impl PagePool {
    /// Reserves `capacity` pages of `page_words` words each starting at
    /// `base`, scrubbing the whole region.
    pub fn new(mem: &mut PhysMem, base: Addr, page_words: u64, capacity: u64) -> Self {
        mem.zero_range(base, page_words * capacity);
        PagePool {
            base,
            page_words,
            capacity,
            next: 0,
        }
    }

    /// Allocates one zeroed page; `None` when exhausted.
    ///
    /// Debug builds assert the scrub invariant (the page really is zero).
    pub fn alloc(&mut self, mem: &PhysMem) -> Option<Addr> {
        if self.next >= self.capacity {
            return None;
        }
        let page = self.base + self.next * self.page_words;
        self.next += 1;
        debug_assert!(
            (0..self.page_words).all(|i| mem.read(page + i) == 0),
            "pool page {page:#x} not scrubbed"
        );
        Some(page)
    }

    /// Pages handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Pages remaining.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.next
    }

    /// Does the pool own this address?
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.capacity * self.page_words
    }

    /// The pool's address range as `(start, end)`.
    pub fn range(&self) -> (Addr, Addr) {
        (self.base, self.base + self.capacity * self.page_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhausted() {
        let mut mem = PhysMem::new();
        let mut pool = PagePool::new(&mut mem, 0x1000, 16, 3);
        assert_eq!(pool.alloc(&mem), Some(0x1000));
        assert_eq!(pool.alloc(&mem), Some(0x1010));
        assert_eq!(pool.alloc(&mem), Some(0x1020));
        assert_eq!(pool.alloc(&mem), None);
        assert_eq!(pool.allocated(), 3);
        assert_eq!(pool.remaining(), 0);
    }

    #[test]
    fn pool_scrubs_on_init() {
        let mut mem = PhysMem::new();
        mem.write(0x1005, 99);
        let mut pool = PagePool::new(&mut mem, 0x1000, 16, 1);
        assert_eq!(mem.read(0x1005), 0);
        let p = pool.alloc(&mem).unwrap();
        assert_eq!(mem.read(p + 5), 0);
    }

    #[test]
    fn contains_and_range() {
        let mut mem = PhysMem::new();
        let pool = PagePool::new(&mut mem, 0x1000, 16, 2);
        assert!(pool.contains(0x1000));
        assert!(pool.contains(0x101f));
        assert!(!pool.contains(0x1020));
        assert_eq!(pool.range(), (0x1000, 0x1020));
    }
}
