//! A capacity-bounded TLB model with statistics.
//!
//! Functional model only — cycle costs live in `vrm-hwsim`. Entries map a
//! virtual page number to a physical page base; eviction is LRU.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use vrm_memmodel::ir::Addr;

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fills performed.
    pub fills: u64,
    /// Entries removed by invalidation.
    pub invalidated: u64,
    /// Entries evicted for capacity.
    pub evicted: u64,
}

/// A per-CPU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    entries: BTreeMap<Addr, Addr>,
    lru: VecDeque<Addr>,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB holding at most `capacity` translations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            capacity,
            entries: BTreeMap::new(),
            lru: VecDeque::new(),
            stats: TlbStats::default(),
        }
    }

    /// Looks up a virtual page number, updating LRU order and statistics.
    pub fn lookup(&mut self, vpn: Addr) -> Option<Addr> {
        match self.entries.get(&vpn).copied() {
            Some(page) => {
                self.stats.hits += 1;
                self.touch(vpn);
                Some(page)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation, evicting the LRU entry if full.
    pub fn fill(&mut self, vpn: Addr, page: Addr) {
        if let std::collections::btree_map::Entry::Occupied(mut e) = self.entries.entry(vpn) {
            e.insert(page);
            self.touch(vpn);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self.lru.pop_front() {
                self.entries.remove(&victim);
                self.stats.evicted += 1;
            }
        }
        self.entries.insert(vpn, page);
        self.lru.push_back(vpn);
        self.stats.fills += 1;
    }

    /// Invalidates one page (`Some`) or everything (`None`).
    pub fn invalidate(&mut self, vpn: Option<Addr>) {
        match vpn {
            Some(v) => {
                if self.entries.remove(&v).is_some() {
                    self.lru.retain(|&e| e != v);
                    self.stats.invalidated += 1;
                }
            }
            None => {
                self.stats.invalidated += self.entries.len() as u64;
                self.entries.clear();
                self.lru.clear();
            }
        }
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the TLB empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    fn touch(&mut self, vpn: Addr) {
        self.lru.retain(|&e| e != vpn);
        self.lru.push_back(vpn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut t = Tlb::new(4);
        assert_eq!(t.lookup(1), None);
        t.fill(1, 0x100);
        assert_eq!(t.lookup(1), Some(0x100));
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.fill(1, 0x100);
        t.fill(2, 0x200);
        t.lookup(1); // 2 becomes LRU
        t.fill(3, 0x300); // evicts 2
        assert_eq!(t.lookup(2), None);
        assert_eq!(t.lookup(1), Some(0x100));
        assert_eq!(t.lookup(3), Some(0x300));
        assert_eq!(t.stats().evicted, 1);
    }

    #[test]
    fn invalidate_single_and_all() {
        let mut t = Tlb::new(4);
        t.fill(1, 0x100);
        t.fill(2, 0x200);
        t.invalidate(Some(1));
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.lookup(2), Some(0x200));
        t.invalidate(None);
        assert!(t.is_empty());
        assert_eq!(t.stats().invalidated, 2);
    }

    #[test]
    fn refill_same_vpn_updates() {
        let mut t = Tlb::new(2);
        t.fill(1, 0x100);
        t.fill(1, 0x900);
        assert_eq!(t.lookup(1), Some(0x900));
        assert_eq!(t.len(), 1);
    }
}
