//! Simulated Arm MMU structures for the SeKVM model.
//!
//! The `vrm-memmodel` executors model page-table *races* at litmus scale;
//! this crate provides the full-size structures the hypervisor model
//! (`vrm-sekvm`) manages:
//!
//! * [`mem`] — word-granular physical memory;
//! * [`pte`] — tagged page-table entries (valid/table/block bits,
//!   permissions), as stage-2 and SMMU tables need;
//! * [`pool`] — the scrubbed page pools KCore allocates tables from;
//! * [`table`] — multi-level (3- or 4-level) page tables with
//!   walk / map / unmap / huge-page (block) support, where every update
//!   reports its exact write list for Transactional-Page-Table checking;
//! * [`tlb`] — a capacity-bounded TLB model with statistics;
//! * [`transactional`] — the condition-4 checker specialized to tagged
//!   entries (the `vrm-core` variant handles the raw litmus encoding).

#![warn(missing_docs)]

pub mod mem;
pub mod pool;
pub mod pte;
pub mod table;
pub mod tlb;
pub mod transactional;

pub use mem::PhysMem;
pub use pool::PagePool;
pub use pte::{Perms, Pte, PteKind};
pub use table::{Geometry, MapError, PageTable, WalkOutcome};
pub use tlb::{Tlb, TlbStats};
