//! Tagged page-table entries.
//!
//! A word-sized entry encodes, Arm descriptor-style:
//!
//! ```text
//! bit 0       VALID
//! bit 1       TABLE (next-level table pointer) vs BLOCK/PAGE (output)
//! bits 2..=4  permissions (R, W, X)
//! bits 6..    output base address (word address >> nothing, shifted by 6)
//! ```
//!
//! A zero word is an invalid (empty) entry, matching the models' "0 =
//! fault" convention.

use vrm_memmodel::ir::{Addr, Val};

/// Access permissions carried by a leaf/block entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// Read-write-execute.
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };
    /// Read-write.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only.
    pub const RO: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
}

/// What kind of entry a valid descriptor is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PteKind {
    /// Pointer to a next-level table.
    Table,
    /// Output mapping (page at the leaf level, block above it).
    Page,
}

/// A decoded page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pte {
    /// Entry kind.
    pub kind: PteKind,
    /// Output base (table base or physical page/block base).
    pub base: Addr,
    /// Permissions (meaningful for `Page` entries).
    pub perms: Perms,
}

const VALID: Val = 1 << 0;
const TABLE: Val = 1 << 1;
const PERM_R: Val = 1 << 2;
const PERM_W: Val = 1 << 3;
const PERM_X: Val = 1 << 4;
const BASE_SHIFT: u32 = 6;

impl Pte {
    /// Encodes a table pointer.
    pub fn table(base: Addr) -> Val {
        debug_assert_eq!(base >> (64 - BASE_SHIFT), 0);
        (base << BASE_SHIFT) | TABLE | VALID
    }

    /// Encodes a page/block mapping.
    pub fn page(base: Addr, perms: Perms) -> Val {
        let mut v = (base << BASE_SHIFT) | VALID;
        if perms.r {
            v |= PERM_R;
        }
        if perms.w {
            v |= PERM_W;
        }
        if perms.x {
            v |= PERM_X;
        }
        v
    }

    /// Decodes a raw entry; `None` if invalid/empty.
    pub fn decode(raw: Val) -> Option<Pte> {
        if raw & VALID == 0 {
            return None;
        }
        Some(Pte {
            kind: if raw & TABLE != 0 {
                PteKind::Table
            } else {
                PteKind::Page
            },
            base: raw >> BASE_SHIFT,
            perms: Perms {
                r: raw & PERM_R != 0,
                w: raw & PERM_W != 0,
                x: raw & PERM_X != 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_table() {
        let raw = Pte::table(0x1234);
        let p = Pte::decode(raw).unwrap();
        assert_eq!(p.kind, PteKind::Table);
        assert_eq!(p.base, 0x1234);
    }

    #[test]
    fn roundtrip_page_perms() {
        let raw = Pte::page(0x40, Perms::RO);
        let p = Pte::decode(raw).unwrap();
        assert_eq!(p.kind, PteKind::Page);
        assert_eq!(p.base, 0x40);
        assert!(p.perms.r && !p.perms.w && !p.perms.x);
    }

    #[test]
    fn zero_is_invalid() {
        assert_eq!(Pte::decode(0), None);
    }
}
