//! Multi-level page tables with exact write-list reporting.
//!
//! KCore's stage-2 and SMMU tables are built dynamically: `set_s2pt` walks
//! from the root, allocating fresh zeroed tables from the private pool for
//! missing levels, and finally sets the leaf entry — refusing to overwrite
//! an existing mapping. `clear_s2pt` zeroes an existing leaf. Every update
//! returns the list of `(cell, value)` writes it performed so the caller
//! can validate the Transactional-Page-Table condition on precisely the
//! writes a critical section issued.

use vrm_memmodel::ir::{Addr, Val};

use crate::mem::PhysMem;
use crate::pool::PagePool;
use crate::pte::{Perms, Pte, PteKind};

/// Table geometry (all sizes in words; a table occupies one page).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of translation levels.
    pub levels: u32,
    /// log2 of entries per table.
    pub index_bits: u32,
    /// log2 of the page size.
    pub page_bits: u32,
}

impl Geometry {
    /// Arm-style 4-level layout (512-entry tables, 512-word pages).
    pub fn arm_4level() -> Self {
        Geometry {
            levels: 4,
            index_bits: 9,
            page_bits: 9,
        }
    }

    /// Arm-style 3-level layout (§5.6: fewer levels, fewer intermediate
    /// entries to cache — useful on CPUs with small TLBs).
    pub fn arm_3level() -> Self {
        Geometry {
            levels: 3,
            index_bits: 9,
            page_bits: 9,
        }
    }

    /// Small geometry for exhaustive tests.
    pub fn tiny(levels: u32) -> Self {
        Geometry {
            levels,
            index_bits: 2,
            page_bits: 4,
        }
    }

    /// Table index of `va` at `level` (0 = root).
    pub fn index(&self, va: Addr, level: u32) -> Addr {
        debug_assert!(level < self.levels);
        let shift = self.page_bits + self.index_bits * (self.levels - 1 - level);
        (va >> shift) & ((1 << self.index_bits) - 1)
    }

    /// In-page offset of `va`.
    pub fn offset(&self, va: Addr) -> Addr {
        va & ((1 << self.page_bits) - 1)
    }

    /// Virtual page number of `va`.
    pub fn vpn(&self, va: Addr) -> Addr {
        va >> self.page_bits
    }

    /// Words covered by one entry at `level` (a block mapping's span).
    pub fn span(&self, level: u32) -> u64 {
        1 << (self.page_bits + self.index_bits * (self.levels - 1 - level))
    }

    /// Total virtual-address bits.
    pub fn va_bits(&self) -> u32 {
        self.page_bits + self.index_bits * self.levels
    }

    /// Page size in words.
    pub fn page_words(&self) -> u64 {
        1 << self.page_bits
    }
}

/// The result of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Translation succeeded.
    Mapped {
        /// Physical address.
        pa: Addr,
        /// Leaf permissions.
        perms: Perms,
        /// Level at which the leaf/block entry was found.
        level: u32,
    },
    /// Translation fault.
    Fault {
        /// First level with an invalid entry.
        level: u32,
    },
}

impl WalkOutcome {
    /// The physical address if mapped.
    pub fn pa(&self) -> Option<Addr> {
        match self {
            WalkOutcome::Mapped { pa, .. } => Some(*pa),
            WalkOutcome::Fault { .. } => None,
        }
    }
}

/// Errors from page-table updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The target entry already holds a valid mapping (write-once / no
    /// silent overwrite discipline).
    AlreadyMapped,
    /// Unmap of a non-existent mapping.
    NotMapped,
    /// The page pool is exhausted.
    OutOfTablePages,
    /// A block entry was found where a table pointer was required.
    BlocksInTheWay,
    /// Block base not aligned to the block span.
    Misaligned,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::AlreadyMapped => write!(f, "entry already holds a valid mapping"),
            MapError::NotMapped => write!(f, "no mapping to remove"),
            MapError::OutOfTablePages => write!(f, "page-table pool exhausted"),
            MapError::BlocksInTheWay => write!(f, "block entry where a table pointer is needed"),
            MapError::Misaligned => write!(f, "address not aligned to the mapping span"),
        }
    }
}

impl std::error::Error for MapError {}

/// One mapping discovered by [`PageTable::mappings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// First virtual address covered.
    pub va: Addr,
    /// First physical address.
    pub pa: Addr,
    /// Words covered.
    pub words: u64,
    /// Permissions.
    pub perms: Perms,
}

impl Mapping {
    /// Splits the mapping into page-granular `(va, pa)` pairs. Leaf
    /// entries at higher levels (block mappings) cover several pages;
    /// consumers that reason per page — ownership projection, frame
    /// accounting — use this instead of re-deriving the span arithmetic.
    pub fn pages(&self, page_words: u64) -> impl Iterator<Item = (Addr, Addr)> + '_ {
        (0..self.words.div_ceil(page_words))
            .map(move |i| (self.va + i * page_words, self.pa + i * page_words))
    }
}

/// A multi-level page table rooted at a fixed physical page.
#[derive(Debug, Clone, Copy)]
pub struct PageTable {
    /// Root table base address.
    pub root: Addr,
    /// Geometry.
    pub geo: Geometry,
}

impl PageTable {
    /// Creates a handle (the root page must be zeroed by the caller —
    /// typically it comes from a scrubbed [`PagePool`]).
    pub fn new(root: Addr, geo: Geometry) -> Self {
        PageTable { root, geo }
    }

    /// Translates `va` over the current memory snapshot.
    pub fn walk(&self, mem: &PhysMem, va: Addr) -> WalkOutcome {
        let mut table = self.root;
        for level in 0..self.geo.levels {
            let cell = table + self.geo.index(va, level);
            match Pte::decode(mem.read(cell)) {
                None => return WalkOutcome::Fault { level },
                Some(p) if p.kind == PteKind::Table => {
                    if level == self.geo.levels - 1 {
                        // Malformed: table pointer at leaf level.
                        return WalkOutcome::Fault { level };
                    }
                    table = p.base;
                }
                Some(p) => {
                    // Page (leaf) or block (above leaf) output.
                    let span = self.geo.span(level);
                    return WalkOutcome::Mapped {
                        pa: p.base + (va & (span - 1)),
                        perms: p.perms,
                        level,
                    };
                }
            }
        }
        unreachable!("loop returns at leaf level");
    }

    /// Maps a single page: the walk-allocate-set procedure of `set_s2pt`.
    ///
    /// Missing intermediate tables are allocated from `pool` (zeroed).
    /// Fails with [`MapError::AlreadyMapped`] rather than overwriting.
    /// Returns the page-table writes performed, in program order.
    ///
    /// # Examples
    ///
    /// ```
    /// use vrm_mmu::{Geometry, PagePool, PageTable, Perms, PhysMem};
    ///
    /// let mut mem = PhysMem::new();
    /// let geo = Geometry::arm_3level();
    /// let mut pool = PagePool::new(&mut mem, 0x100_000, geo.page_words(), 16);
    /// let root = pool.alloc(&mem).unwrap();
    /// let pt = PageTable::new(root, geo);
    ///
    /// let writes = pt.map(&mut mem, &mut pool, 0x4000, 0x80_000, Perms::RW).unwrap();
    /// assert_eq!(writes.len(), 3); // two fresh tables + the leaf
    /// assert_eq!(pt.walk(&mem, 0x4007).pa(), Some(0x80_007));
    /// ```
    pub fn map(
        &self,
        mem: &mut PhysMem,
        pool: &mut PagePool,
        va: Addr,
        pa: Addr,
        perms: Perms,
    ) -> Result<Vec<(Addr, Val)>, MapError> {
        self.map_at_level(mem, pool, va, pa, perms, self.geo.levels - 1)
    }

    /// Maps a block (huge page) at `level` (< levels - 1 maps a block;
    /// `levels - 1` is equivalent to [`PageTable::map`]).
    pub fn map_block(
        &self,
        mem: &mut PhysMem,
        pool: &mut PagePool,
        va: Addr,
        pa: Addr,
        perms: Perms,
        level: u32,
    ) -> Result<Vec<(Addr, Val)>, MapError> {
        self.map_at_level(mem, pool, va, pa, perms, level)
    }

    fn map_at_level(
        &self,
        mem: &mut PhysMem,
        pool: &mut PagePool,
        va: Addr,
        pa: Addr,
        perms: Perms,
        target_level: u32,
    ) -> Result<Vec<(Addr, Val)>, MapError> {
        let span = self.geo.span(target_level);
        if pa & (span - 1) != 0 || va & (span - 1) != 0 {
            return Err(MapError::Misaligned);
        }
        let mut writes = Vec::new();
        let mut table = self.root;
        for level in 0..=target_level {
            let cell = table + self.geo.index(va, level);
            if level == target_level {
                if Pte::decode(mem.read(cell)).is_some() {
                    return Err(MapError::AlreadyMapped);
                }
                let v = Pte::page(pa, perms);
                mem.write(cell, v);
                writes.push((cell, v));
                return Ok(writes);
            }
            match Pte::decode(mem.read(cell)) {
                None => {
                    let new_table = pool.alloc(mem).ok_or(MapError::OutOfTablePages)?;
                    let v = Pte::table(new_table);
                    mem.write(cell, v);
                    writes.push((cell, v));
                    table = new_table;
                }
                Some(p) if p.kind == PteKind::Table => table = p.base,
                Some(_) => return Err(MapError::BlocksInTheWay),
            }
        }
        unreachable!("loop returns at target level");
    }

    /// Unmaps the entry covering `va` (page or block). Tables are never
    /// reclaimed ("no table at any level will be removed", §5.4).
    /// Returns the single page-table write performed.
    pub fn unmap(&self, mem: &mut PhysMem, va: Addr) -> Result<Vec<(Addr, Val)>, MapError> {
        let mut table = self.root;
        for level in 0..self.geo.levels {
            let cell = table + self.geo.index(va, level);
            match Pte::decode(mem.read(cell)) {
                None => return Err(MapError::NotMapped),
                Some(p) if p.kind == PteKind::Table && level < self.geo.levels - 1 => {
                    table = p.base;
                }
                Some(_) => {
                    mem.write(cell, 0);
                    return Ok(vec![(cell, 0)]);
                }
            }
        }
        Err(MapError::NotMapped)
    }

    /// Enumerates every mapping in the tree (for invariant checking).
    pub fn mappings(&self, mem: &PhysMem) -> Vec<Mapping> {
        let mut out = Vec::new();
        self.collect(mem, self.root, 0, 0, &mut out);
        out
    }

    fn collect(
        &self,
        mem: &PhysMem,
        table: Addr,
        level: u32,
        va_base: Addr,
        out: &mut Vec<Mapping>,
    ) {
        let entries = 1u64 << self.geo.index_bits;
        let span = self.geo.span(level);
        for i in 0..entries {
            let cell = table + i;
            let va = va_base + i * span;
            match Pte::decode(mem.read(cell)) {
                None => {}
                Some(p) if p.kind == PteKind::Table && level < self.geo.levels - 1 => {
                    self.collect(mem, p.base, level + 1, va, out);
                }
                Some(p) => out.push(Mapping {
                    va,
                    pa: p.base,
                    words: span,
                    perms: p.perms,
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(levels: u32) -> (PhysMem, PagePool, PageTable) {
        let mut mem = PhysMem::new();
        let geo = Geometry::tiny(levels);
        let mut pool = PagePool::new(&mut mem, 0x1000, geo.page_words(), 64);
        let root = pool.alloc(&mem).unwrap();
        (mem, pool, PageTable::new(root, geo))
    }

    #[test]
    fn map_walk_unmap_roundtrip() {
        let (mut mem, mut pool, pt) = setup(2);
        let va = 0x35; // some va
        let page_va = va & !0xf;
        let writes = pt
            .map(&mut mem, &mut pool, page_va, 0x200, Perms::RW)
            .unwrap();
        assert_eq!(writes.len(), 2); // fresh intermediate table + leaf
        match pt.walk(&mem, va) {
            WalkOutcome::Mapped { pa, perms, level } => {
                assert_eq!(pa, 0x200 + (va & 0xf));
                assert_eq!(perms, Perms::RW);
                assert_eq!(level, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Second map of the same page fails (no overwrite).
        assert_eq!(
            pt.map(&mut mem, &mut pool, page_va, 0x300, Perms::RW),
            Err(MapError::AlreadyMapped)
        );
        let w = pt.unmap(&mut mem, va).unwrap();
        assert_eq!(w.len(), 1);
        assert!(matches!(pt.walk(&mem, va), WalkOutcome::Fault { level: 1 }));
        // Unmapping again fails.
        assert_eq!(pt.unmap(&mut mem, va), Err(MapError::NotMapped));
    }

    #[test]
    fn second_map_in_same_table_writes_once() {
        let (mut mem, mut pool, pt) = setup(2);
        pt.map(&mut mem, &mut pool, 0x00, 0x200, Perms::RW).unwrap();
        let writes = pt.map(&mut mem, &mut pool, 0x10, 0x210, Perms::RW).unwrap();
        assert_eq!(writes.len(), 1); // intermediate table already present
    }

    #[test]
    fn four_level_map() {
        let (mut mem, mut pool, pt) = setup(4);
        let va = 0x0;
        let writes = pt.map(&mut mem, &mut pool, va, 0x800, Perms::RWX).unwrap();
        assert_eq!(writes.len(), 4); // 3 tables + leaf
        assert_eq!(pt.walk(&mem, va).pa(), Some(0x800));
    }

    #[test]
    fn block_mapping_covers_span() {
        let (mut mem, mut pool, pt) = setup(3);
        // Block at level 1 covers index_bits + page_bits = 6 bits = 64 words.
        let writes = pt
            .map_block(&mut mem, &mut pool, 0x0, 0x400, Perms::RW, 1)
            .unwrap();
        assert_eq!(writes.len(), 2); // level-0 table + block entry
        assert_eq!(pt.walk(&mem, 0x00).pa(), Some(0x400));
        assert_eq!(pt.walk(&mem, 0x3f).pa(), Some(0x43f));
        assert!(matches!(pt.walk(&mem, 0x40), WalkOutcome::Fault { .. }));
        // Mapping a page under the block fails.
        assert_eq!(
            pt.map(&mut mem, &mut pool, 0x20, 0x500, Perms::RW),
            Err(MapError::BlocksInTheWay)
        );
    }

    #[test]
    fn misaligned_block_rejected() {
        let (mut mem, mut pool, pt) = setup(3);
        assert_eq!(
            pt.map_block(&mut mem, &mut pool, 0x10, 0x400, Perms::RW, 1),
            Err(MapError::Misaligned)
        );
    }

    #[test]
    fn mappings_enumeration() {
        let (mut mem, mut pool, pt) = setup(2);
        pt.map(&mut mem, &mut pool, 0x00, 0x200, Perms::RW).unwrap();
        pt.map(&mut mem, &mut pool, 0x50, 0x300, Perms::RO).unwrap();
        let mut ms = pt.mappings(&mem);
        ms.sort_by_key(|m| m.va);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].va, 0x00);
        assert_eq!(ms[0].pa, 0x200);
        assert_eq!(ms[1].va, 0x50);
        assert_eq!(ms[1].perms, Perms::RO);
    }

    #[test]
    fn pool_exhaustion_reported() {
        let mut mem = PhysMem::new();
        let geo = Geometry::tiny(3);
        let mut pool = PagePool::new(&mut mem, 0x1000, geo.page_words(), 1);
        let root = pool.alloc(&mem).unwrap();
        let pt = PageTable::new(root, geo);
        assert_eq!(
            pt.map(&mut mem, &mut pool, 0, 0x800, Perms::RW),
            Err(MapError::OutOfTablePages)
        );
    }
}
