//! Word-granular physical memory.

use std::collections::BTreeMap;

use vrm_memmodel::ir::{Addr, Val};

/// Sparse physical memory; unwritten cells read as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhysMem {
    cells: BTreeMap<Addr, Val>,
}

impl PhysMem {
    /// Creates empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one word.
    pub fn read(&self, addr: Addr) -> Val {
        self.cells.get(&addr).copied().unwrap_or(0)
    }

    /// Writes one word.
    pub fn write(&mut self, addr: Addr, val: Val) {
        if val == 0 {
            self.cells.remove(&addr);
        } else {
            self.cells.insert(addr, val);
        }
    }

    /// Zeroes `len` words starting at `base`.
    pub fn zero_range(&mut self, base: Addr, len: u64) {
        for a in base..base + len {
            self.cells.remove(&a);
        }
    }

    /// Copies `len` words from `src` to `dst`.
    pub fn copy_range(&mut self, src: Addr, dst: Addr, len: u64) {
        let vals: Vec<Val> = (0..len).map(|i| self.read(src + i)).collect();
        for (i, v) in vals.into_iter().enumerate() {
            self.write(dst + i as u64, v);
        }
    }

    /// Number of non-zero cells (for tests and statistics).
    pub fn population(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over the non-zero cells.
    pub fn iter(&self) -> impl Iterator<Item = (&Addr, &Val)> {
        self.cells.iter()
    }

    /// Returns the snapshot as a map (for condition-4 checking).
    pub fn snapshot(&self) -> BTreeMap<Addr, Val> {
        self.cells.clone()
    }

    /// Clones only the cells inside the given half-open ranges (cheap
    /// partial snapshot, e.g. just the page-table pools).
    pub fn clone_ranges(&self, ranges: &[(Addr, Addr)]) -> PhysMem {
        let mut out = PhysMem::new();
        for &(lo, hi) in ranges {
            for (&a, &v) in self.cells.range(lo..hi) {
                out.cells.insert(a, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_zero_default() {
        let mut m = PhysMem::new();
        assert_eq!(m.read(5), 0);
        m.write(5, 7);
        assert_eq!(m.read(5), 7);
        m.write(5, 0);
        assert_eq!(m.read(5), 0);
        assert_eq!(m.population(), 0);
    }

    #[test]
    fn copy_and_zero_ranges() {
        let mut m = PhysMem::new();
        for i in 0..4 {
            m.write(0x10 + i, i + 1);
        }
        m.copy_range(0x10, 0x20, 4);
        assert_eq!(m.read(0x23), 4);
        m.zero_range(0x10, 4);
        assert_eq!(m.read(0x12), 0);
        assert_eq!(m.read(0x21), 2);
    }

    #[test]
    fn copy_overlapping_forward() {
        let mut m = PhysMem::new();
        m.write(0x10, 1);
        m.write(0x11, 2);
        m.copy_range(0x10, 0x11, 2);
        assert_eq!(m.read(0x11), 1);
        assert_eq!(m.read(0x12), 2);
    }
}
