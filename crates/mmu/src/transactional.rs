//! Transactional-Page-Table checking for tagged tables (condition 4).
//!
//! A critical section's page-table writes are *transactional* if, under
//! arbitrary reordering of the writes (modelled as any subset having
//! reached memory when a racing walk snapshots it), every walk observes
//! the before-state result, the after-state result, or a fault.
//!
//! This is the tagged-PTE analogue of
//! `vrm_core::conditions::check_transactional` (which covers the raw
//! litmus encoding); it is the checker `vrm-sekvm` runs on every
//! `set_s2pt`/`clear_s2pt`/`set_spt`/`clear_spt` invocation.

use vrm_memmodel::ir::{Addr, Val};

use crate::mem::PhysMem;
use crate::table::{PageTable, WalkOutcome};

/// A condition-4 counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxViolation {
    /// Which writes (indices into the write list) had landed.
    pub applied: Vec<usize>,
    /// The virtual address whose walk misbehaved.
    pub va: Addr,
    /// What the walk observed.
    pub observed: WalkOutcome,
    /// The legal before-state result.
    pub before: WalkOutcome,
    /// The legal after-state result.
    pub after: WalkOutcome,
}

/// Checks that `writes` (performed against `before`, yielding the table
/// state probed at `vas`) are transactional.
///
/// `before` must be the memory *at critical-section entry* (i.e. with the
/// writes not yet applied).
pub fn check_writes_transactional(
    pt: &PageTable,
    before: &PhysMem,
    writes: &[(Addr, Val)],
    vas: &[Addr],
) -> Result<(), TxViolation> {
    assert!(writes.len() <= 20, "subset enumeration bound");
    let mut after = before.clone();
    for &(a, v) in writes {
        after.write(a, v);
    }
    for mask in 0u32..(1 << writes.len()) {
        let mut mem = before.clone();
        let mut applied = Vec::new();
        for (i, &(a, v)) in writes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                mem.write(a, v);
                applied.push(i);
            }
        }
        for &va in vas {
            let got = pt.walk(&mem, va);
            let b = pt.walk(before, va);
            let a = pt.walk(&after, va);
            let is_fault = matches!(got, WalkOutcome::Fault { .. });
            if got != b && got != a && !is_fault {
                return Err(TxViolation {
                    applied,
                    va,
                    observed: got,
                    before: b,
                    after: a,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PagePool;
    use crate::pte::{Perms, Pte};
    use crate::table::Geometry;

    fn setup() -> (PhysMem, PagePool, PageTable) {
        let mut mem = PhysMem::new();
        let geo = Geometry::tiny(2);
        let mut pool = PagePool::new(&mut mem, 0x1000, geo.page_words(), 64);
        let root = pool.alloc(&mem).unwrap();
        (mem, pool, PageTable::new(root, geo))
    }

    #[test]
    fn fresh_table_map_is_transactional() {
        let (mut mem, mut pool, pt) = setup();
        let before = mem.clone();
        let writes = pt.map(&mut mem, &mut pool, 0x00, 0x800, Perms::RW).unwrap();
        assert_eq!(writes.len(), 2);
        check_writes_transactional(&pt, &before, &writes, &[0x00, 0x05, 0x10]).unwrap();
    }

    #[test]
    fn unmap_is_transactional() {
        let (mut mem, mut pool, pt) = setup();
        pt.map(&mut mem, &mut pool, 0x00, 0x800, Perms::RW).unwrap();
        let before = mem.clone();
        let writes = pt.unmap(&mut mem, 0x00).unwrap();
        check_writes_transactional(&pt, &before, &writes, &[0x00, 0x10]).unwrap();
    }

    #[test]
    fn live_table_reuse_is_not_transactional() {
        // Example 5 shape: clear the root entry and remap a leaf of the
        // still-reachable old table in one section.
        let (mut mem, mut pool, pt) = setup();
        pt.map(&mut mem, &mut pool, 0x00, 0x800, Perms::RW).unwrap();
        let before = mem.clone();
        // Manual (buggy) update: unmap root entry, then write a new leaf
        // into the old table.
        let old_table = match Pte::decode(mem.read(pt.root)) {
            Some(p) => p.base,
            None => panic!("root entry missing"),
        };
        let writes = vec![(pt.root, 0u64), (old_table, Pte::page(0x900, Perms::RW))];
        let err = check_writes_transactional(&pt, &before, &writes, &[0x00]).unwrap_err();
        // The anomalous view: only the leaf write landed -> va 0 maps to
        // the *new* page while the root still points at the old table.
        assert_eq!(err.applied, vec![1]);
        assert_eq!(err.observed.pa(), Some(0x900));
    }
}
