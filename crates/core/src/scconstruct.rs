//! Constructing an SC execution from a push/pull Promising execution
//! (§4.1, Figure 6).
//!
//! Given a valid push/pull execution — a global promise list containing
//! write, push, and pull promises, plus per-CPU event traces whose shared
//! accesses belong to critical sections — the paper constructs an
//! observably equivalent SC execution:
//!
//! 1. shared accesses from different CPUs are ordered iff the *push*
//!    promise of the first one's critical section precedes the *pull*
//!    promise of the second one's critical section in the promise list;
//! 2. together with per-CPU program order this yields a partial order;
//! 3. any topological sort of the partial order is an SC trace, and all
//!    such sorts have the same execution results.
//!
//! This module implements that construction executably: it validates the
//! promise list, builds the partial order, topologically sorts it, replays
//! the resulting SC trace, and checks that every read sees the value it
//! saw in the original execution.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use vrm_memmodel::ir::{Addr, Val};

/// An entry of the global promise list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlEntry {
    /// A write promise `tid: loc <- val`.
    Write {
        /// Writing CPU.
        tid: usize,
        /// Location.
        loc: Addr,
        /// Value.
        val: Val,
    },
    /// A pull promise: CPU `tid` acquires ownership for critical section
    /// `cs` of the listed locations.
    Pull {
        /// Pulling CPU.
        tid: usize,
        /// Critical-section id (unique per CPU).
        cs: usize,
        /// Locations pulled.
        locs: Vec<Addr>,
    },
    /// A push promise: CPU `tid` releases ownership for critical section
    /// `cs`.
    Push {
        /// Pushing CPU.
        tid: usize,
        /// Critical-section id.
        cs: usize,
        /// Locations pushed.
        locs: Vec<Addr>,
    },
}

/// One shared-memory access in a CPU's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsEvent {
    /// The critical section (per-CPU id) this access belongs to.
    pub cs: usize,
    /// `true` for a write, `false` for a read.
    pub is_write: bool,
    /// Location accessed.
    pub loc: Addr,
    /// Value written, or value observed by the read in the original
    /// (relaxed) execution.
    pub val: Val,
}

/// A push/pull execution: global promise list + per-CPU traces.
#[derive(Debug, Clone, Default)]
pub struct PushPullExecution {
    /// The global promise list.
    pub promise_list: Vec<PlEntry>,
    /// Per-CPU shared-access traces in program order.
    pub traces: Vec<Vec<CsEvent>>,
    /// Initial memory (unlisted cells are zero).
    pub init: BTreeMap<Addr, Val>,
}

/// Why a push/pull promise list is invalid (the model "panics").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Invalid {
    /// A location was pulled while already owned.
    PullOwned(Addr),
    /// A location was pushed by a non-owner.
    PushNotOwned(Addr),
    /// A critical section id was reused or pushed before pulled.
    MalformedSection(usize, usize),
    /// A trace event's critical section has no pull promise.
    MissingPromise(usize, usize),
}

impl std::fmt::Display for Invalid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Invalid::PullOwned(l) => write!(f, "pull of owned location {l:#x}"),
            Invalid::PushNotOwned(l) => write!(f, "push of unowned location {l:#x}"),
            Invalid::MalformedSection(t, c) => {
                write!(f, "malformed critical section {c} on CPU {t}")
            }
            Invalid::MissingPromise(t, c) => {
                write!(f, "no pull promise for section {c} on CPU {t}")
            }
        }
    }
}

impl std::error::Error for Invalid {}

/// A global event id: `(cpu, index in that cpu's trace)`.
pub type EventId = (usize, usize);

/// Per-`(tid, cs)` positions of the pull and push promises in the list.
pub type SectionIndex = BTreeMap<(usize, usize), (usize, usize)>;

/// The constructed SC execution.
#[derive(Debug, Clone)]
pub struct ScExecution {
    /// Events in one valid SC order.
    pub order: Vec<EventId>,
    /// Pairs `(a, b)` of the partial order (a before b), excluding program
    /// order.
    pub cross_cpu_order: Vec<(EventId, EventId)>,
}

/// Validates the promise list (the push/pull Promising hardware's panic
/// conditions) and returns, per `(tid, cs)`, the list positions of the
/// pull and push promises.
pub fn validate(exec: &PushPullExecution) -> Result<SectionIndex, Invalid> {
    let mut owner: BTreeMap<Addr, usize> = BTreeMap::new();
    let mut sections: SectionIndex = BTreeMap::new();
    let mut pulled: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (pos, e) in exec.promise_list.iter().enumerate() {
        match e {
            PlEntry::Write { tid, loc, .. } => {
                if let Some(&o) = owner.get(loc) {
                    if o != *tid {
                        return Err(Invalid::PushNotOwned(*loc));
                    }
                }
            }
            PlEntry::Pull { tid, cs, locs } => {
                if !pulled.insert((*tid, *cs)) {
                    return Err(Invalid::MalformedSection(*tid, *cs));
                }
                for &l in locs {
                    if owner.contains_key(&l) {
                        return Err(Invalid::PullOwned(l));
                    }
                    owner.insert(l, *tid);
                }
                sections.insert((*tid, *cs), (pos, usize::MAX));
            }
            PlEntry::Push { tid, cs, locs } => {
                let Some(sec) = sections.get_mut(&(*tid, *cs)) else {
                    return Err(Invalid::MalformedSection(*tid, *cs));
                };
                if sec.1 != usize::MAX {
                    return Err(Invalid::MalformedSection(*tid, *cs));
                }
                sec.1 = pos;
                for &l in locs {
                    if owner.get(&l) != Some(tid) {
                        return Err(Invalid::PushNotOwned(l));
                    }
                    owner.remove(&l);
                }
            }
        }
    }
    Ok(sections)
}

/// Builds the partial order and constructs an SC execution by topological
/// sort (the paper's Figure 6 construction).
pub fn construct_sc(exec: &PushPullExecution) -> Result<ScExecution, Invalid> {
    let sections = validate(exec)?;
    // Gather all events.
    let mut events: Vec<EventId> = Vec::new();
    for (tid, tr) in exec.traces.iter().enumerate() {
        for (i, ev) in tr.iter().enumerate() {
            if !sections.contains_key(&(tid, ev.cs)) {
                return Err(Invalid::MissingPromise(tid, ev.cs));
            }
            events.push((tid, i));
        }
    }
    // Cross-CPU edges: a before b iff push(cs(a)) < pull(cs(b)).
    let mut cross: Vec<(EventId, EventId)> = Vec::new();
    for &a in &events {
        for &b in &events {
            if a.0 == b.0 {
                continue;
            }
            let ea = exec.traces[a.0][a.1];
            let eb = exec.traces[b.0][b.1];
            let (_, push_a) = sections[&(a.0, ea.cs)];
            let (pull_b, _) = sections[&(b.0, eb.cs)];
            if push_a != usize::MAX && push_a < pull_b {
                cross.push((a, b));
            }
        }
    }
    // Topological sort over program order + cross edges (Kahn).
    let mut succ: BTreeMap<EventId, Vec<EventId>> = BTreeMap::new();
    let mut indeg: BTreeMap<EventId, usize> = events.iter().map(|&e| (e, 0)).collect();
    let add_edge = |from: EventId,
                    to: EventId,
                    succ: &mut BTreeMap<EventId, Vec<EventId>>,
                    indeg: &mut BTreeMap<EventId, usize>| {
        succ.entry(from).or_default().push(to);
        *indeg.get_mut(&to).expect("known event") += 1;
    };
    for (tid, tr) in exec.traces.iter().enumerate() {
        for i in 1..tr.len() {
            add_edge((tid, i - 1), (tid, i), &mut succ, &mut indeg);
        }
    }
    for &(a, b) in &cross {
        add_edge(a, b, &mut succ, &mut indeg);
    }
    let mut ready: Vec<EventId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&e, _)| e)
        .collect();
    let mut order = Vec::with_capacity(events.len());
    while let Some(e) = ready.pop() {
        order.push(e);
        if let Some(ss) = succ.get(&e) {
            for &s in ss.clone().iter() {
                let d = indeg.get_mut(&s).expect("known event");
                *d -= 1;
                if *d == 0 {
                    ready.push(s);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), events.len(), "partial order has a cycle");
    Ok(ScExecution {
        order,
        cross_cpu_order: cross,
    })
}

/// Replays the constructed SC order and checks that every read observes
/// the same value it observed in the original push/pull execution —
/// i.e. the execution results coincide (Theorem 2's conclusion).
pub fn replay_matches(exec: &PushPullExecution, sc: &ScExecution) -> Result<(), String> {
    let mut mem = exec.init.clone();
    for &(tid, i) in &sc.order {
        let ev = exec.traces[tid][i];
        if ev.is_write {
            mem.insert(ev.loc, ev.val);
        } else {
            let got = mem.get(&ev.loc).copied().unwrap_or(0);
            if got != ev.val {
                return Err(format!(
                    "event T{tid}[{i}] read {:#x}: SC replay sees {got}, original saw {}",
                    ev.loc, ev.val
                ));
            }
        }
    }
    Ok(())
}

/// Extracts a [`PushPullExecution`] from an executor trace
/// ([`vrm_memmodel::sc::run_schedule`]): push/pull and write events enter
/// the promise list in trace order, and each thread's data accesses to
/// *owned* locations become its critical-section events.
///
/// Accesses to locations the thread does not own at that point (lock
/// words, page tables) are outside the push/pull discipline and are
/// skipped — they are the synchronization method itself.
pub fn from_trace(
    trace: &[vrm_memmodel::trace::Event],
    nthreads: usize,
    init: BTreeMap<Addr, Val>,
) -> PushPullExecution {
    use vrm_memmodel::trace::EventKind;
    let mut exec = PushPullExecution {
        promise_list: Vec::new(),
        traces: vec![Vec::new(); nthreads],
        init,
    };
    let mut owner: BTreeMap<Addr, usize> = BTreeMap::new();
    let mut cs_counter = vec![0usize; nthreads];
    let mut current_cs: Vec<Option<usize>> = vec![None; nthreads];
    for ev in trace {
        match &ev.kind {
            EventKind::Pull { locs } => {
                let cs = cs_counter[ev.tid];
                cs_counter[ev.tid] += 1;
                current_cs[ev.tid] = Some(cs);
                for &l in locs {
                    owner.insert(l, ev.tid);
                }
                exec.promise_list.push(PlEntry::Pull {
                    tid: ev.tid,
                    cs,
                    locs: locs.clone(),
                });
            }
            EventKind::Push { locs } => {
                let cs = current_cs[ev.tid].expect("push without pull");
                for l in locs {
                    owner.remove(l);
                }
                exec.promise_list.push(PlEntry::Push {
                    tid: ev.tid,
                    cs,
                    locs: locs.clone(),
                });
                current_cs[ev.tid] = None;
            }
            EventKind::Read { addr, val, .. } if owner.get(addr) == Some(&ev.tid) => {
                exec.traces[ev.tid].push(CsEvent {
                    cs: current_cs[ev.tid].expect("owned read outside CS"),
                    is_write: false,
                    loc: *addr,
                    val: *val,
                });
            }
            EventKind::Write { addr, val, .. } if owner.get(addr) == Some(&ev.tid) => {
                exec.promise_list.push(PlEntry::Write {
                    tid: ev.tid,
                    loc: *addr,
                    val: *val,
                });
                exec.traces[ev.tid].push(CsEvent {
                    cs: current_cs[ev.tid].expect("owned write outside CS"),
                    is_write: true,
                    loc: *addr,
                    val: *val,
                });
            }
            _ => {}
        }
    }
    exec
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: u64 = 0x10;
    const Y: u64 = 0x20;

    /// The Figure 6 scenario: CPU 1's critical section on x completes
    /// before CPU 2's (push1 < pull2); CPU 1's section on y overlaps
    /// CPU 2's section on x, so those events are unordered.
    fn figure6() -> PushPullExecution {
        PushPullExecution {
            promise_list: vec![
                PlEntry::Pull {
                    tid: 0,
                    cs: 0,
                    locs: vec![X],
                },
                PlEntry::Write {
                    tid: 0,
                    loc: X,
                    val: 1,
                },
                PlEntry::Push {
                    tid: 0,
                    cs: 0,
                    locs: vec![X],
                },
                PlEntry::Pull {
                    tid: 1,
                    cs: 0,
                    locs: vec![X],
                },
                PlEntry::Pull {
                    tid: 0,
                    cs: 1,
                    locs: vec![Y],
                },
                PlEntry::Write {
                    tid: 1,
                    loc: X,
                    val: 2,
                },
                PlEntry::Write {
                    tid: 0,
                    loc: Y,
                    val: 7,
                },
                PlEntry::Push {
                    tid: 1,
                    cs: 0,
                    locs: vec![X],
                },
                PlEntry::Push {
                    tid: 0,
                    cs: 1,
                    locs: vec![Y],
                },
            ],
            traces: vec![
                vec![
                    CsEvent {
                        cs: 0,
                        is_write: true,
                        loc: X,
                        val: 1,
                    },
                    CsEvent {
                        cs: 1,
                        is_write: true,
                        loc: Y,
                        val: 7,
                    },
                ],
                vec![
                    CsEvent {
                        cs: 0,
                        is_write: false,
                        loc: X,
                        val: 1,
                    },
                    CsEvent {
                        cs: 0,
                        is_write: true,
                        loc: X,
                        val: 2,
                    },
                ],
            ],
            init: BTreeMap::new(),
        }
    }

    #[test]
    fn figure6_validates_and_constructs() {
        let exec = figure6();
        let sc = construct_sc(&exec).unwrap();
        // CPU 0's x-write precedes both CPU 1 events.
        assert!(sc.cross_cpu_order.contains(&((0, 0), (1, 0))));
        assert!(sc.cross_cpu_order.contains(&((0, 0), (1, 1))));
        // CPU 0's y-write overlaps CPU 1's section: unordered.
        assert!(!sc.cross_cpu_order.iter().any(|&(a, _)| a == (0, 1)));
        assert!(!sc.cross_cpu_order.iter().any(|&(_, b)| b == (0, 1)));
        replay_matches(&exec, &sc).unwrap();
    }

    #[test]
    fn overlapping_pulls_panic() {
        let exec = PushPullExecution {
            promise_list: vec![
                PlEntry::Pull {
                    tid: 0,
                    cs: 0,
                    locs: vec![X],
                },
                PlEntry::Pull {
                    tid: 1,
                    cs: 0,
                    locs: vec![X],
                },
            ],
            traces: vec![vec![], vec![]],
            init: BTreeMap::new(),
        };
        assert_eq!(validate(&exec), Err(Invalid::PullOwned(X)));
    }

    #[test]
    fn push_without_pull_panics() {
        let exec = PushPullExecution {
            promise_list: vec![PlEntry::Push {
                tid: 0,
                cs: 3,
                locs: vec![X],
            }],
            traces: vec![vec![]],
            init: BTreeMap::new(),
        };
        assert_eq!(validate(&exec), Err(Invalid::MalformedSection(0, 3)));
    }

    #[test]
    fn replay_detects_result_mismatch() {
        // A read claiming to have seen a value never written at that point
        // in any topological order consistent with the sections.
        let mut exec = figure6();
        exec.traces[1][0].val = 99; // CPU 1 claims to read 99 from x
        let sc = construct_sc(&exec).unwrap();
        assert!(replay_matches(&exec, &sc).is_err());
    }

    #[test]
    fn all_topological_orders_same_result() {
        // The partial order leaves CPU0's y-write unordered w.r.t. CPU1's
        // events; replay result must not depend on the chosen sort. We
        // verify by brute-force: every linear extension replays correctly.
        let exec = figure6();
        let sc = construct_sc(&exec).unwrap();
        let events = sc.order.clone();
        let mut orders = Vec::new();
        permute(&events, &mut Vec::new(), &mut orders);
        let mut checked = 0;
        for order in orders {
            if respects(&exec, &sc, &order) {
                let candidate = ScExecution {
                    order,
                    cross_cpu_order: sc.cross_cpu_order.clone(),
                };
                replay_matches(&exec, &candidate).unwrap();
                checked += 1;
            }
        }
        assert!(checked >= 2, "expected multiple linear extensions");
    }

    fn permute(rest: &[EventId], acc: &mut Vec<EventId>, out: &mut Vec<Vec<EventId>>) {
        if rest.is_empty() {
            out.push(acc.clone());
            return;
        }
        for (i, &e) in rest.iter().enumerate() {
            let mut r: Vec<EventId> = rest.to_vec();
            r.remove(i);
            acc.push(e);
            permute(&r, acc, out);
            acc.pop();
        }
    }

    #[test]
    fn from_trace_on_gen_vmid_schedules() {
        // Run the Figure 7 gen_vmid program under many SC schedules,
        // extract the push/pull execution from each trace, and verify the
        // Figure 6 construction validates and replays it.
        use vrm_memmodel::sc::run_schedule;
        let prog = crate::paper_examples::gen_vmid_program(true);
        let mut seed = 0x12345678u64;
        for trial in 0..24 {
            let mut schedule = Vec::with_capacity(200);
            for _ in 0..200 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                schedule.push(((seed >> 33) as usize) % 2);
            }
            let (outcome, trace) = run_schedule(&prog, &schedule, 100_000).unwrap();
            let exec = super::from_trace(&trace, 2, prog.init_mem.clone());
            let sc = construct_sc(&exec)
                .unwrap_or_else(|e| panic!("trial {trial}: invalid push/pull execution: {e}"));
            replay_matches(&exec, &sc)
                .unwrap_or_else(|e| panic!("trial {trial}: replay mismatch: {e}"));
            // The lock worked: both critical sections appear, ordered.
            assert_eq!(
                exec.promise_list
                    .iter()
                    .filter(|e| matches!(e, PlEntry::Pull { .. }))
                    .count(),
                2
            );
            assert_ne!(outcome.get("vmid0"), outcome.get("vmid1"));
        }
    }

    fn respects(exec: &PushPullExecution, sc: &ScExecution, order: &[EventId]) -> bool {
        let pos: BTreeMap<EventId, usize> =
            order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        // Program order.
        for (tid, tr) in exec.traces.iter().enumerate() {
            for i in 1..tr.len() {
                if pos[&(tid, i - 1)] > pos[&(tid, i)] {
                    return false;
                }
            }
        }
        for &(a, b) in &sc.cross_cpu_order {
            if pos[&a] > pos[&b] {
                return false;
            }
        }
        true
    }
}
