//! Executable encodings of the paper's Examples 1–7 (§1–2).
//!
//! Each example comes as a *buggy* program — verified correct on an SC
//! model yet exhibiting an additional behaviour on Arm relaxed memory —
//! and, where the paper implies one, a *fixed* program whose RM behaviours
//! are exactly its SC behaviours. The gallery doubles as the necessity
//! evidence for the wDRF conditions: every buggy variant violates one of
//! the conditions, and its RM-only outcome is the concrete exploit.

use vrm_memmodel::builder::ProgramBuilder;
use vrm_memmodel::ir::{Cond, Expr, Inst, Program, Reg, RmwOp, Val, VmConfig};

/// One of the paper's examples, packaged for checking and display.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// Short name, e.g. `"Example 2 (VM booting)"`.
    pub name: &'static str,
    /// What goes wrong on relaxed memory.
    pub description: &'static str,
    /// The program as the paper presents it (SC-correct, RM-buggy).
    pub buggy: Program,
    /// The repaired program, if the fix is a program change.
    pub fixed: Option<Program>,
    /// Observable bindings reachable on RM but not on SC in `buggy`.
    pub rm_only: Vec<(&'static str, Val)>,
    /// Whether reproducing the RM-only outcome requires promise steps
    /// (store-before-load speculation, as in load buffering).
    pub needs_promises: bool,
    /// Which wDRF condition the buggy variant violates.
    pub violated_condition: &'static str,
    /// Whether the fixed variant must also *forbid* the `rm_only` binding
    /// (false when the binding is the legitimate after-state of the fixed
    /// program, as in Example 5).
    pub fixed_forbids: bool,
}

/// Example 1: out-of-order write (load buffering).
pub fn example1() -> PaperExample {
    let (x, y) = (0x10u64, 0x20u64);
    let build = |dmb: bool| {
        let mut p = ProgramBuilder::new(if dmb {
            "Example 1 (fixed)"
        } else {
            "Example 1"
        });
        p.thread("CPU 1", |t| {
            t.load(Reg(0), x, false);
            if dmb {
                t.dmb();
            }
            t.store(y, 1u64, false);
        });
        p.thread("CPU 2", |t| {
            t.load(Reg(1), y, false);
            if dmb {
                t.dmb();
            }
            t.store(x, Reg(1), false);
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        p.build()
    };
    PaperExample {
        name: "Example 1 (out-of-order write)",
        description: "CPU 1's store to y executes before its load of x; both \
                      registers can read 1, impossible on SC.",
        buggy: build(false),
        fixed: Some(build(true)),
        rm_only: vec![("r0", 1), ("r1", 1)],
        needs_promises: true,
        violated_condition: "DRF-Kernel",
        fixed_forbids: true,
    }
}

const TICKET: u64 = 0x10;
const NOW: u64 = 0x11;
const NEXT_VMID: u64 = 0x12;
const MAX_VM: u64 = 4;

/// Builds the `gen_vmid` program of Figure 1, with or without the barrier
/// placement of Figure 7 (acquire RMW and loads, release store).
pub fn gen_vmid_program(barriers: bool) -> Program {
    let mut p = ProgramBuilder::new(if barriers {
        "Example 2 (Figure 7 fixed)"
    } else {
        "Example 2 (VM booting)"
    });
    for _ in 0..2 {
        p.thread("gen_vmid", |t| {
            // acquire(): my_ticket = fetch_and_inc(ticket); spin on now.
            t.rmw(Reg(0), TICKET, RmwOp::Add, 1u64, barriers, false);
            t.label("spin");
            t.load(Reg(1), NOW, barriers);
            t.br(Cond::Ne, Reg(1), Reg(0), "spin");
            t.pull(vec![Expr::Imm(NEXT_VMID)]);
            // Critical section: vmid = next_vmid++; panic if exhausted.
            t.load(Reg(2), NEXT_VMID, false);
            t.br(Cond::Lt, Reg(2), MAX_VM, "ok");
            t.inst(Inst::Panic);
            t.label("ok");
            t.store(NEXT_VMID, Expr::Reg(Reg(2)) + Expr::Imm(1), false);
            t.push(vec![Expr::Imm(NEXT_VMID)]);
            // release(): now = my_ticket + 1 (store-release in Linux).
            t.store(NOW, Expr::Reg(Reg(0)) + Expr::Imm(1), barriers);
        });
    }
    p.observe_reg("vmid0", 0, Reg(2));
    p.observe_reg("vmid1", 1, Reg(2));
    p.build()
}

/// Builds `gen_vmid` over the *exact* Linux 4.18 arm64 ticket lock shape
/// (the paper's footnote 2: `arch/arm64/include/asm/spinlock.h`): the
/// ticket is drawn with an `LDAXR`/`STXR` retry loop rather than a single
/// atomic, the owner spin uses `LDAXR`, and release is a plain `STLR`.
pub fn gen_vmid_program_llsc(barriers: bool) -> Program {
    let mut p = ProgramBuilder::new(if barriers {
        "Example 2 (LDAXR/STXR lock)"
    } else {
        "Example 2 (LDXR/STXR, no barriers)"
    });
    for _ in 0..2 {
        p.thread("gen_vmid", |t| {
            // acquire(): draw a ticket with an exclusive retry loop.
            t.label("retry");
            t.load_ex(Reg(0), TICKET, barriers);
            t.store_ex(Reg(3), TICKET, Expr::Reg(Reg(0)) + Expr::Imm(1), false);
            t.br(Cond::Ne, Reg(3), 0u64, "retry");
            // Spin until now == my ticket.
            t.label("spin");
            t.load(Reg(1), NOW, barriers);
            t.br(Cond::Ne, Reg(1), Reg(0), "spin");
            t.pull(vec![Expr::Imm(NEXT_VMID)]);
            // Critical section: vmid = next_vmid++.
            t.load(Reg(2), NEXT_VMID, false);
            t.br(Cond::Lt, Reg(2), MAX_VM, "ok");
            t.inst(Inst::Panic);
            t.label("ok");
            t.store(NEXT_VMID, Expr::Reg(Reg(2)) + Expr::Imm(1), false);
            t.push(vec![Expr::Imm(NEXT_VMID)]);
            // release(): now = my_ticket + 1 (STLR).
            t.store(NOW, Expr::Reg(Reg(0)) + Expr::Imm(1), barriers);
        });
    }
    p.observe_reg("vmid0", 0, Reg(2));
    p.observe_reg("vmid1", 1, Reg(2));
    p.build()
}

/// Example 2: VM booting under a ticket lock without barriers.
pub fn example2() -> PaperExample {
    PaperExample {
        name: "Example 2 (VM booting)",
        description: "The ticket lock's plain loads let CPU 2 speculatively \
                      read next_vmid before the lock is really held; two VMs \
                      can receive the same vmid.",
        buggy: gen_vmid_program(false),
        fixed: Some(gen_vmid_program(true)),
        rm_only: vec![("vmid0", 0), ("vmid1", 0)],
        needs_promises: false,
        violated_condition: "No-Barrier-Misuse",
        fixed_forbids: true,
    }
}

/// Example 3: VM context switch via an ownership state variable.
pub fn example3() -> PaperExample {
    const STATE: u64 = 0x10;
    const CTX: u64 = 0x11;
    const INACTIVE: u64 = 1;
    const ACTIVE: u64 = 2;
    let build = |barriers: bool| {
        let mut p = ProgramBuilder::new(if barriers {
            "Example 3 (fixed)"
        } else {
            "Example 3 (context switch)"
        });
        p.init(STATE, ACTIVE); // the vCPU is running on CPU 1
        p.thread("save_vm", |t| {
            t.store(CTX, 42u64, false); // save the vCPU context
            t.store(STATE, INACTIVE, barriers);
        });
        p.thread("restore_vm", |t| {
            t.label("spin");
            t.load(Reg(0), STATE, barriers);
            t.br(Cond::Ne, Reg(0), INACTIVE, "spin");
            t.store(STATE, ACTIVE, false);
            t.load(Reg(1), CTX, false); // restore the vCPU context
        });
        p.observe_reg("ctx", 1, Reg(1));
        p.build()
    };
    PaperExample {
        name: "Example 3 (VM context switch)",
        description: "Saving the context can be reordered after publishing \
                      INACTIVE; the restoring CPU reads a stale context.",
        buggy: build(false),
        fixed: Some(build(true)),
        rm_only: vec![("ctx", 0)],
        needs_promises: false,
        violated_condition: "No-Barrier-Misuse",
        fixed_forbids: true,
    }
}

fn vm1() -> VmConfig {
    VmConfig {
        levels: 1,
        root: 0x100,
        page_bits: 4,
        index_bits: 4,
    }
}

/// Example 4: out-of-order page table reads.
pub fn example4() -> PaperExample {
    // Virtual pages 0x8 (x) and 0x9 (y); all-0 pages 0x10/0x11, all-1
    // pages 0x20/0x21.
    let buggy = {
        let mut p = ProgramBuilder::new("Example 4");
        p.vm(vm1());
        p.init(0x108, 0x10);
        p.init(0x109, 0x11);
        p.init_range(0x20, 16, 1);
        p.init_range(0x21, 16, 1);
        p.thread("CPU 1", |t| {
            t.store(0x108u64, 0x20u64, false); // (a) remap x
            t.store(0x109u64, 0x21u64, false); // (b) remap y
        });
        p.thread("CPU 2", |t| {
            t.load_virt(Reg(0), 0x90u64, false); // (c) r0 := [y]
            t.load_virt(Reg(1), 0x80u64, false); // (d) r1 := [x]
        });
        p.observe_reg("r0", 1, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        p.build()
    };
    // Fixed per Write-Once-Kernel-Mapping: the kernel page table is fully
    // populated at boot and never remapped, so reads are RM-insensitive.
    let fixed = {
        let mut p = ProgramBuilder::new("Example 4 (write-once)");
        p.vm(vm1());
        p.init(0x108, 0x20);
        p.init(0x109, 0x21);
        p.init_range(0x20, 16, 1);
        p.init_range(0x21, 16, 1);
        p.thread("CPU 1", |t| {
            t.inst(Inst::Nop); // no remapping after boot
        });
        p.thread("CPU 2", |t| {
            t.load_virt(Reg(0), 0x90u64, false);
            t.load_virt(Reg(1), 0x80u64, false);
        });
        p.observe_reg("r0", 1, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        p.build()
    };
    PaperExample {
        name: "Example 4 (out-of-order page table reads)",
        description: "Two MMU translations by one CPU are unordered: the \
                      second user access can use the old mapping although \
                      the first already saw the new one.",
        buggy,
        fixed: Some(fixed),
        rm_only: vec![("r0", 1), ("r1", 0)],
        needs_promises: false,
        violated_condition: "Write-Once-Kernel-Mapping",
        fixed_forbids: true,
    }
}

/// Example 5: out-of-order page table writes.
pub fn example5() -> PaperExample {
    // 2-level table: root 0x100 (PGD), table 0x140 (PTE), va z = 0x63
    // (pgd index 1, pte index 2, offset 3). Old page 0x30 is all-5s, page
    // p = 0x20 is all-9s.
    let vm = VmConfig {
        levels: 2,
        root: 0x100,
        page_bits: 4,
        index_bits: 2,
    };
    let buggy = {
        let mut p = ProgramBuilder::new("Example 5");
        p.vm(vm);
        p.init(0x101, 0x140);
        p.init(0x142, 0x30);
        p.init_range(0x30, 16, 5);
        p.init_range(0x20, 16, 9);
        p.thread("CPU 1", |t| {
            t.store(0x101u64, 0u64, false); // (a) pgd[x] := EMPTY
            t.store(0x142u64, 0x20u64, false); // (b) pte[y] := p
        });
        p.thread("CPU 2", |t| {
            t.load_virt(Reg(0), 0x63u64, false); // (c) access z
        });
        p.observe_reg("r0", 1, Reg(0));
        p.build()
    };
    // Fixed per Transactional-Page-Table: build the new mapping in a fresh
    // zeroed table, then link it; any partial view is before/after/fault.
    let fixed = {
        let mut p = ProgramBuilder::new("Example 5 (transactional)");
        p.vm(vm);
        p.init(0x101, 0x140);
        p.init(0x142, 0x30);
        p.init_range(0x30, 16, 5);
        p.init_range(0x20, 16, 9);
        p.thread("CPU 1", |t| {
            t.store(0x152u64, 0x20u64, false); // pte' in fresh table 0x150
            t.dmb();
            t.store(0x101u64, 0x150u64, false); // link the new table
            t.dmb();
            t.tlbi_va(0x63u64);
        });
        p.thread("CPU 2", |t| {
            t.load_virt(Reg(0), 0x63u64, false);
        });
        p.observe_reg("r0", 1, Reg(0));
        p.build()
    };
    PaperExample {
        name: "Example 5 (out-of-order page table writes)",
        description: "Unmapping a PGD and setting a PTE beneath it can be \
                      observed out of order: a racing walk reaches the new \
                      physical page through the stale PGD.",
        buggy,
        fixed: Some(fixed),
        rm_only: vec![("r0", 9)],
        needs_promises: false,
        violated_condition: "Transactional-Page-Table",
        fixed_forbids: false,
    }
}

/// Example 6: out-of-order page table and TLB reads.
pub fn example6() -> PaperExample {
    let build = |barrier: bool| {
        let mut p = ProgramBuilder::new(if barrier {
            "Example 6 (fixed)"
        } else {
            "Example 6"
        });
        p.vm(vm1());
        p.init(0x108, 0x10); // va page 8 -> pa page 0x10
        p.init_range(0x10, 16, 7);
        p.thread("CPU 1", |t| {
            t.store(0x108u64, 0u64, false); // (a) unmap
            if barrier {
                t.dmb();
            }
            t.tlbi_va(0x80u64); // (b) invalidate
            t.store(0x30u64, 1u64, true); // signal: TLBI issued
        });
        p.thread("CPU 2", |t| {
            t.load(Reg(2), 0x30u64, true);
            t.load_virt(Reg(0), 0x80u64, false); // (c)/(d)
        });
        p.observe_reg("saw_signal", 1, Reg(2));
        p.observe_reg("r0", 1, Reg(0));
        p.build()
    };
    PaperExample {
        name: "Example 6 (out-of-order page table and TLB reads)",
        description: "Without a barrier between the unmap and the TLBI, a \
                      walk after the invalidation can still read the stale \
                      mapping and re-fill the TLB with it.",
        buggy: build(false),
        fixed: Some(build(true)),
        rm_only: vec![("saw_signal", 1), ("r0", 7)],
        needs_promises: false,
        violated_condition: "Sequential-TLB-Invalidation",
        fixed_forbids: true,
    }
}

/// Example 7: information flow from user programs into the kernel.
pub fn example7() -> PaperExample {
    let (x, y, z) = (0x1000u64, 0x1001u64, 0x1002u64);
    let mut p = ProgramBuilder::new("Example 7");
    // CPU 1 and CPU 2 run the code of Example 1, then increment z if their
    // register read 1. On SC at most one of them can read 1; on RM both.
    p.thread("user-1", |t| {
        t.load(Reg(0), x, false);
        t.store(y, 1u64, false);
        t.br(Cond::Ne, Reg(0), 1u64, "skip");
        t.rmw(Reg(1), z, RmwOp::Add, 1u64, false, false);
        t.label("skip");
        t.inst(Inst::Halt);
    });
    p.thread("user-2", |t| {
        t.load(Reg(0), y, false);
        t.store(x, Reg(0), false);
        t.br(Cond::Ne, Reg(0), 1u64, "skip");
        t.rmw(Reg(1), z, RmwOp::Add, 1u64, false, false);
        t.label("skip");
        t.inst(Inst::Halt);
    });
    p.thread("kernel", |t| {
        t.load(Reg(2), z, false);
    });
    p.observe_reg("kernel_z", 2, Reg(2));
    PaperExample {
        name: "Example 7 (user-to-kernel information flow)",
        description: "User programs' relaxed behaviour (both seeing 1) can \
                      push z to 2; a kernel reading z observes a value \
                      impossible on SC — unless reads of user memory are \
                      masked by data oracles (Weak-Memory-Isolation).",
        buggy: p.build(),
        fixed: None,
        rm_only: vec![("kernel_z", 2)],
        needs_promises: true,
        violated_condition: "Memory-Isolation",
        fixed_forbids: true,
    }
}

/// All seven examples.
pub fn all() -> Vec<PaperExample> {
    vec![
        example1(),
        example2(),
        example3(),
        example4(),
        example5(),
        example6(),
        example7(),
    ]
}

/// The named wDRF check workloads servable by name — the repaired
/// plain-memory paper examples plus the Figure 7 ticket lock, i.e. the
/// exact set `bench --suite wdrf` runs. Front ends (the serve daemon's
/// `wdrf` job kind) look programs up here so a workload name means the
/// same program everywhere.
pub fn wdrf_catalog() -> Vec<(&'static str, Program)> {
    vec![
        ("example1", example1().fixed.unwrap()),
        ("example3", example3().fixed.unwrap()),
        ("ticket-lock", gen_vmid_program(true)),
    ]
}

/// Looks up one [`wdrf_catalog`] workload by name.
pub fn wdrf_by_name(name: &str) -> Option<Program> {
    wdrf_catalog()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};
    use vrm_memmodel::sc::enumerate_sc;
    use vrm_memmodel::values::ValueConfig;

    fn cfg(needs_promises: bool) -> PromisingConfig {
        PromisingConfig {
            promises: needs_promises,
            max_promises_per_thread: 1,
            value_cfg: ValueConfig {
                max_rounds: 3,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn every_buggy_example_shows_rm_only_behaviour() {
        for ex in all() {
            let rm = enumerate_promising_with(&ex.buggy, &cfg(ex.needs_promises))
                .unwrap()
                .outcomes;
            let sc = enumerate_sc(&ex.buggy).unwrap();
            assert!(
                rm.contains_binding(&ex.rm_only),
                "{}: RM should allow {:?}\nRM:\n{}",
                ex.name,
                ex.rm_only,
                rm
            );
            assert!(
                !sc.contains_binding(&ex.rm_only),
                "{}: SC must forbid {:?}\nSC:\n{}",
                ex.name,
                ex.rm_only,
                sc
            );
            assert!(sc.is_subset(&rm), "{}: SC must be subsumed by RM", ex.name);
        }
    }

    #[test]
    fn every_fixed_example_matches_sc() {
        for ex in all() {
            let Some(fixed) = &ex.fixed else { continue };
            let rm = enumerate_promising_with(fixed, &cfg(ex.needs_promises))
                .unwrap()
                .outcomes;
            let sc = enumerate_sc(fixed).unwrap();
            assert!(
                rm.is_subset(&sc),
                "{}: fixed program has RM-only outcomes:\nRM:\n{}\nSC:\n{}",
                ex.name,
                rm,
                sc
            );
            if ex.fixed_forbids {
                assert!(
                    !rm.contains_binding(&ex.rm_only),
                    "{}: fixed program still shows the bug",
                    ex.name
                );
            }
        }
    }

    #[test]
    fn llsc_ticket_lock_matches_rmw_lock() {
        // The LDAXR/STXR encoding of the lock gives the same guarantee:
        // unique vmids with barriers, duplicates without.
        let fixed = gen_vmid_program_llsc(true);
        let rm = enumerate_promising_with(&fixed, &cfg(false))
            .unwrap()
            .outcomes;
        assert!(!rm.is_empty());
        for o in rm.iter() {
            assert_ne!(o.get("vmid0"), o.get("vmid1"), "duplicate vmid: {o}");
        }
        let buggy = gen_vmid_program_llsc(false);
        let rm = enumerate_promising_with(&buggy, &cfg(false))
            .unwrap()
            .outcomes;
        assert!(
            rm.contains_binding(&[("vmid0", 0), ("vmid1", 0)]),
            "LL/SC lock without barriers should allow duplicate vmids:\n{rm}"
        );
    }

    #[test]
    fn example2_duplicate_vmid_only_without_barriers() {
        let ex = example2();
        let rm_buggy = enumerate_promising_with(&ex.buggy, &cfg(false))
            .unwrap()
            .outcomes;
        // Duplicate vmid on RM.
        assert!(rm_buggy.contains_binding(&[("vmid0", 0), ("vmid1", 0)]));
        // Figure 7's barriers restore mutual exclusion.
        let rm_fixed = enumerate_promising_with(ex.fixed.as_ref().unwrap(), &cfg(false))
            .unwrap()
            .outcomes;
        for o in rm_fixed.iter() {
            assert_ne!(o.get("vmid0"), o.get("vmid1"), "duplicate vmid: {o}");
        }
    }
}
