//! VRM: Verification on Relaxed Memory.
//!
//! This crate is the Rust reproduction of the VRM framework from
//! *Formal Verification of a Multiprocessor Hypervisor on Arm Relaxed
//! Memory Hardware* (SOSP 2021). VRM's key theorem — the **wDRF theorem** —
//! states that for kernel code satisfying six synchronization and memory
//! access conditions (the *weak data race free* conditions), every
//! observable behaviour on Arm relaxed-memory hardware is also observable
//! on a sequentially consistent model, so SC-model proofs transfer to real
//! hardware.
//!
//! Where the paper proves this deductively in Coq, this reproduction makes
//! every ingredient *executable and checkable*:
//!
//! * [`spec`] — describes a kernel program's sharing/isolation structure
//!   (which threads are kernel, which locations are lock-protected, where
//!   the page tables and the user/kernel memory split live);
//! * [`conditions`] — checkers for the six wDRF conditions, run over
//!   exhaustively enumerated Promising-Arm executions (conditions 1–3) and
//!   execution traces / table snapshots (conditions 4–6);
//! * [`pushpull`] — the push/pull Promising model machinery of §4.1
//!   (ownership ghost state, barrier fulfilment) and its reports;
//! * [`scconstruct`] — the constructive half of Theorem 2: building an SC
//!   execution from a valid push/pull execution via the partial order and
//!   a topological sort (the paper's Figure 6);
//! * [`theorem`] — the end-to-end wDRF check: validate the conditions,
//!   then verify by exhaustive enumeration that the program's RM-observable
//!   behaviours are a subset of its SC behaviours (Theorems 1–4, including
//!   the data-oracle construction for Weak-Memory-Isolation);
//! * [`paper_examples`] — Examples 1–7 from the paper, each in a buggy
//!   variant exhibiting an RM-only behaviour and a repaired variant that
//!   passes the wDRF checks.

#![warn(missing_docs)]

pub mod conditions;
pub mod mcs;
pub mod paper_examples;
pub mod pushpull;
pub mod scconstruct;
pub mod spec;
pub mod theorem;

pub use conditions::{Condition, ConditionReport};
pub use spec::{IsolationMode, KernelSpec};
pub use theorem::{check_wdrf, WdrfCheckConfig, WdrfVerdict};
