//! Checkers for the six wDRF conditions (§3 of the paper).
//!
//! | # | Condition | How it is checked here |
//! |---|-----------|------------------------|
//! | 1 | DRF-Kernel | push/pull ownership panics over *all* Promising-Arm executions ([`crate::pushpull`]) |
//! | 2 | No-Barrier-Misuse | barrier fulfilment of push/pull promises, same enumeration |
//! | 3 | Write-Once-Kernel-Mapping | coherence-predecessor monitor on kernel-page-table writes, same enumeration |
//! | 4 | Transactional-Page-Table | exhaustive subset check of a critical section's page-table writes against walk snapshots ([`check_transactional`]) |
//! | 5 | Sequential-TLB-Invalidation | trace check: every unmap/remap of a user-walked entry is followed by a barrier and a TLBI ([`check_sequential_tlbi`]) |
//! | 6 | Memory-Isolation / Weak-Memory-Isolation | static access-set check from the value analysis ([`check_memory_isolation`]) |
//!
//! Conditions 1–3 are *relaxed-memory* properties and are validated on the
//! Promising Arm model (the paper: "the wDRF conditions required by VRM
//! must themselves hold on RM hardware"). Conditions 4–6 are structural
//! properties of the program validated per the paper's own §5 arguments.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use vrm_memmodel::ir::{Addr, Program, Val, VmConfig};
use vrm_memmodel::promising::PromisingConfig;
use vrm_memmodel::sc::{run_schedule, ExploreError};
use vrm_memmodel::trace::{EventKind, Trace};
use vrm_memmodel::values::{analyze, ValueConfig};

use crate::pushpull::check_pushpull;
use crate::spec::{IsolationMode, KernelSpec};

/// The six wDRF conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Condition {
    /// 1: shared kernel accesses are well synchronized.
    DrfKernel,
    /// 2: barriers correctly guard critical sections and sync methods.
    NoBarrierMisuse,
    /// 3: the kernel's own page table is write-once.
    WriteOnceKernelMapping,
    /// 4: shared page-table writes in a critical section are transactional.
    TransactionalPageTable,
    /// 5: unmap/remap is followed by a barrier and a TLB invalidation.
    SequentialTlbInvalidation,
    /// 6: kernel/user memory are (weakly) isolated.
    MemoryIsolation,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Condition::DrfKernel => "DRF-Kernel",
            Condition::NoBarrierMisuse => "No-Barrier-Misuse",
            Condition::WriteOnceKernelMapping => "Write-Once-Kernel-Mapping",
            Condition::TransactionalPageTable => "Transactional-Page-Table",
            Condition::SequentialTlbInvalidation => "Sequential-TLB-Invalidation",
            Condition::MemoryIsolation => "Memory-Isolation",
        };
        f.write_str(s)
    }
}

/// The verdict for one condition.
#[derive(Debug, Clone)]
pub struct ConditionReport {
    /// Which condition was checked.
    pub condition: Condition,
    /// Did it hold?
    pub holds: bool,
    /// Human-readable evidence (violations, statistics).
    pub details: Vec<String>,
    /// `true` if the analysis behind this report hit a bound. A found
    /// violation (`holds == false`) is still real, but `holds == true`
    /// over a truncated analysis only means "no violation found so far"
    /// — the overall verdict must degrade to Unknown.
    pub truncated: bool,
}

impl ConditionReport {
    fn ok(condition: Condition, details: Vec<String>) -> Self {
        ConditionReport {
            condition,
            holds: true,
            details,
            truncated: false,
        }
    }

    fn fail(condition: Condition, details: Vec<String>) -> Self {
        ConditionReport {
            condition,
            holds: false,
            details,
            truncated: false,
        }
    }
}

impl fmt::Display for ConditionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {}",
            if !self.holds {
                "FAIL"
            } else if self.truncated {
                "UNKNOWN"
            } else {
                "PASS"
            },
            self.condition
        )?;
        for d in &self.details {
            writeln!(f, "    {d}")?;
        }
        Ok(())
    }
}

/// Checks conditions 1–3 with a single exhaustive Promising-Arm
/// enumeration (they share the ghost machinery).
pub fn check_sync_conditions(
    prog: &Program,
    spec: &KernelSpec,
    cfg: &PromisingConfig,
) -> Result<Vec<ConditionReport>, ExploreError> {
    let r = check_pushpull(prog, spec, cfg)?;
    let mut out = Vec::new();
    let mk = |cond, holds: bool, vs: &BTreeSet<_>| {
        let mut details: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
        if r.truncated {
            details.push("warning: exploration bounds hit; result may be incomplete".into());
        }
        ConditionReport {
            condition: cond,
            holds,
            details,
            truncated: r.truncated,
        }
    };
    out.push(mk(
        Condition::DrfKernel,
        r.drf_kernel_holds(),
        &r.ownership_violations,
    ));
    out.push(mk(
        Condition::NoBarrierMisuse,
        r.no_barrier_misuse_holds(),
        &r.barrier_violations,
    ));
    out.push(mk(
        Condition::WriteOnceKernelMapping,
        r.write_once_holds(),
        &r.write_once_violations,
    ));
    Ok(out)
}

/// What a page-table walk can observe (before / after / fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkResult {
    /// The walk resolved to this physical address.
    Mapped(Addr),
    /// The walk hit an empty entry.
    Fault,
}

/// Walks `va` over a memory snapshot using pure page-table arithmetic.
pub fn walk_snapshot(mem: &BTreeMap<Addr, Val>, vm: &VmConfig, va: Addr) -> WalkResult {
    let mut table = vm.root;
    for level in 0..vm.levels {
        let cell = table + vm.index(va, level);
        let entry = mem.get(&cell).copied().unwrap_or(0);
        if entry == 0 {
            return WalkResult::Fault;
        }
        table = entry;
    }
    WalkResult::Mapped(table + vm.offset(va))
}

/// A Transactional-Page-Table counterexample: the subset of writes applied
/// and the virtual address whose walk saw neither before, nor after, nor a
/// fault.
#[derive(Debug, Clone)]
pub struct TxCounterExample {
    /// Indices into the write list that were applied.
    pub applied: Vec<usize>,
    /// The observing virtual address.
    pub va: Addr,
    /// The anomalous walk result.
    pub observed: WalkResult,
}

/// Condition 4: checks that a critical section's page-table writes are
/// *transactional* — under arbitrary reordering (any subset of the writes
/// having landed), every walk sees the before-state result, the
/// after-state result, or faults.
///
/// `init` is the memory at critical-section entry, `writes` the section's
/// page-table writes in program order, `vas` the virtual addresses whose
/// translations matter (typically every mapped page).
pub fn check_transactional(
    init: &BTreeMap<Addr, Val>,
    vm: &VmConfig,
    writes: &[(Addr, Val)],
    vas: &[Addr],
) -> Result<(), TxCounterExample> {
    assert!(writes.len() <= 20, "subset enumeration bound");
    let mut after = init.clone();
    for &(a, v) in writes {
        after.insert(a, v);
    }
    for mask in 0u32..(1 << writes.len()) {
        let mut mem = init.clone();
        let mut applied = Vec::new();
        for (i, &(a, v)) in writes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                mem.insert(a, v);
                applied.push(i);
            }
        }
        for &va in vas {
            let got = walk_snapshot(&mem, vm, va);
            let before_r = walk_snapshot(init, vm, va);
            let after_r = walk_snapshot(&after, vm, va);
            if got != before_r && got != after_r && got != WalkResult::Fault {
                return Err(TxCounterExample {
                    applied,
                    va,
                    observed: got,
                });
            }
        }
    }
    Ok(())
}

/// Condition 4 as a [`ConditionReport`].
pub fn check_transactional_report(
    init: &BTreeMap<Addr, Val>,
    vm: &VmConfig,
    writes: &[(Addr, Val)],
    vas: &[Addr],
) -> ConditionReport {
    match check_transactional(init, vm, writes, vas) {
        Ok(()) => ConditionReport::ok(
            Condition::TransactionalPageTable,
            vec![format!(
                "{} writes x {} VAs x {} orderings checked",
                writes.len(),
                vas.len(),
                1u64 << writes.len()
            )],
        ),
        Err(cex) => ConditionReport::fail(
            Condition::TransactionalPageTable,
            vec![format!(
                "walk of va {:#x} observed {:?} with writes {:?} applied",
                cex.va, cex.observed, cex.applied
            )],
        ),
    }
}

/// Condition 5: scans an execution trace, requiring that every write that
/// unmaps or remaps a live user-page-table entry is followed (in the same
/// thread, before its next critical-section exit or thread end) by a
/// barrier and then a TLB invalidation.
pub fn check_sequential_tlbi(trace: &Trace, prog: &Program, spec: &KernelSpec) -> ConditionReport {
    // Reconstruct memory to learn each write's old value.
    let mut mem: BTreeMap<Addr, Val> = prog.init_mem.clone();
    // Pending unmaps per thread: (event index, addr).
    let mut pending: BTreeMap<usize, Vec<(usize, Addr)>> = BTreeMap::new();
    // Barrier seen since the pending write, per thread.
    let mut fenced: BTreeMap<usize, bool> = BTreeMap::new();
    let mut failures = Vec::new();
    for (i, ev) in trace.iter().enumerate() {
        match &ev.kind {
            EventKind::Write { addr, val, .. } | EventKind::Rmw { addr, new: val, .. } => {
                let old = mem.get(addr).copied().unwrap_or(0);
                mem.insert(*addr, *val);
                if spec.is_user_pt(*addr) && old != 0 && *val != old {
                    pending.entry(ev.tid).or_default().push((i, *addr));
                    fenced.insert(ev.tid, false);
                }
            }
            EventKind::Fence(_) => {
                fenced.insert(ev.tid, true);
            }
            EventKind::Tlbi { .. } => {
                if fenced.get(&ev.tid).copied().unwrap_or(false) {
                    pending.remove(&ev.tid);
                } else if let Some(p) = pending.get(&ev.tid) {
                    if !p.is_empty() {
                        failures.push(format!(
                            "T{}: TLBI without a barrier after unmap of {:#x}",
                            ev.tid, p[0].1
                        ));
                        pending.remove(&ev.tid);
                    }
                }
            }
            EventKind::Push { .. } => {
                // Critical-section exit: pending unmaps must be resolved.
                if let Some(p) = pending.remove(&ev.tid) {
                    for (_, addr) in p {
                        failures.push(format!(
                            "T{}: unmap of {:#x} not followed by barrier+TLBI before \
                             critical-section exit",
                            ev.tid, addr
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    for (tid, p) in pending {
        for (_, addr) in p {
            failures.push(format!(
                "T{tid}: unmap of {addr:#x} not followed by barrier+TLBI by end of trace"
            ));
        }
    }
    if failures.is_empty() {
        ConditionReport::ok(
            Condition::SequentialTlbInvalidation,
            vec![format!("{} events scanned", trace.len())],
        )
    } else {
        ConditionReport::fail(Condition::SequentialTlbInvalidation, failures)
    }
}

/// Condition 5 over a batch of schedules: round-robin, per-thread-solo and
/// deterministically seeded random interleavings.
pub fn check_sequential_tlbi_program(
    prog: &Program,
    spec: &KernelSpec,
    random_schedules: usize,
) -> Result<ConditionReport, ExploreError> {
    let nthreads = prog.threads.len();
    let mut schedules: Vec<Vec<usize>> = Vec::new();
    schedules.push(Vec::new()); // pure round-robin
    for tid in 0..nthreads {
        // Let one thread run far ahead first.
        schedules.push(vec![tid; 400]);
    }
    let mut seed = 0x9e3779b97f4a7c15u64;
    for _ in 0..random_schedules {
        let mut s = Vec::with_capacity(400);
        for _ in 0..400 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.push(((seed >> 33) as usize) % nthreads.max(1));
        }
        schedules.push(s);
    }
    let mut all_details = Vec::new();
    let mut holds = true;
    for s in &schedules {
        let (_, trace) = run_schedule(prog, s, 100_000)?;
        let r = check_sequential_tlbi(&trace, prog, spec);
        if !r.holds {
            holds = false;
            all_details.extend(r.details);
        }
    }
    if holds {
        Ok(ConditionReport::ok(
            Condition::SequentialTlbInvalidation,
            vec![format!("{} schedules validated", schedules.len())],
        ))
    } else {
        all_details.sort();
        all_details.dedup();
        Ok(ConditionReport::fail(
            Condition::SequentialTlbInvalidation,
            all_details,
        ))
    }
}

/// Condition 6: static access-set check.
///
/// Under [`IsolationMode::Strong`], kernel threads must never read user
/// memory and user threads must never write kernel memory. Under
/// [`IsolationMode::Weak`] only the latter is required (kernel reads of
/// user memory are masked by data oracles — see
/// [`theorem`](crate::theorem) for the oracle construction of Theorem 4).
pub fn check_memory_isolation(
    prog: &Program,
    spec: &KernelSpec,
    vcfg: &ValueConfig,
) -> ConditionReport {
    let va = analyze(prog, vcfg);
    let mut failures = Vec::new();
    for tid in 0..prog.threads.len() {
        if spec.is_kernel_thread(tid) {
            if spec.isolation == IsolationMode::Strong {
                for &a in &va.reads[tid] {
                    if spec.is_user_mem(a) {
                        failures.push(format!("kernel thread T{tid} may read user memory {a:#x}"));
                    }
                }
            }
        } else {
            for &a in &va.writes[tid] {
                if spec.is_kernel_mem(a) || spec.is_kernel_pt(a) {
                    failures.push(format!("user thread T{tid} may write kernel memory {a:#x}"));
                }
            }
        }
    }
    let holds = failures.is_empty();
    if va.truncated {
        failures.push("warning: value analysis truncated; access sets may be incomplete".into());
    }
    ConditionReport {
        condition: Condition::MemoryIsolation,
        holds,
        details: failures,
        truncated: va.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_memmodel::builder::ProgramBuilder;
    use vrm_memmodel::ir::{Expr, Reg};

    fn vm2() -> VmConfig {
        VmConfig {
            levels: 2,
            root: 0x100,
            page_bits: 4,
            index_bits: 2,
        }
    }

    #[test]
    fn walk_snapshot_basics() {
        let vm = vm2();
        let mut mem = BTreeMap::new();
        mem.insert(0x101, 0x140); // pgd[1] -> table 0x140
        mem.insert(0x142, 0x20); // pte[2] -> page 0x20
        let va = 0b0110_0011; // l0=1, l1=2, off=3
        assert_eq!(walk_snapshot(&mem, &vm, va), WalkResult::Mapped(0x23));
        assert_eq!(walk_snapshot(&mem, &vm, 0), WalkResult::Fault);
    }

    #[test]
    fn transactional_set_into_fresh_table() {
        // set_s2pt-style: link a fresh zeroed table then set the leaf —
        // but in the *wrong* order this is non-transactional.
        let vm = vm2();
        let init = BTreeMap::new(); // everything empty
        let va = 0b0110_0011u64;
        // Correct order irrelevant — subsets are checked. Writes: leaf
        // first in the new table, then link the pgd. Any subset yields
        // fault or the final mapping.
        let writes = [(0x142u64, 0x20u64), (0x101u64, 0x140u64)];
        assert!(check_transactional(&init, &vm, &writes, &[va]).is_ok());
    }

    #[test]
    fn transactional_detects_mixed_view() {
        // Example 5 shape: unmap the pgd and remap the leaf of a *live*
        // table. A walk can see old pgd + new leaf -> page p: neither
        // before nor after nor fault.
        let vm = vm2();
        let mut init = BTreeMap::new();
        init.insert(0x101, 0x140); // live pgd
        init.insert(0x142, 0x30); // old leaf page
        let va = 0b0110_0011u64;
        let writes = [(0x101u64, 0u64), (0x142u64, 0x20u64)];
        let cex = check_transactional(&init, &vm, &writes, &[va]).unwrap_err();
        assert_eq!(cex.observed, WalkResult::Mapped(0x23));
        assert_eq!(cex.applied, vec![1]); // only the leaf write landed
    }

    #[test]
    fn sequential_tlbi_pass_and_fail() {
        let vm = VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        };
        let mut spec = KernelSpec::for_kernel_threads([0]);
        spec.user_pt = vec![(0x100, 0x110)];
        let build = |barrier: bool, tlbi: bool| {
            let mut p = ProgramBuilder::new("unmap");
            p.vm(vm);
            p.init(0x105, 0x20);
            p.thread("k", |t| {
                t.store(0x105u64, 0u64, false); // unmap live entry
                if barrier {
                    t.dmb();
                }
                if tlbi {
                    t.tlbi_va(0x50u64);
                }
            });
            p.build()
        };
        let good = check_sequential_tlbi_program(&build(true, true), &spec, 4).unwrap();
        assert!(good.holds, "{good}");
        let no_tlbi = check_sequential_tlbi_program(&build(true, false), &spec, 4).unwrap();
        assert!(!no_tlbi.holds);
        let no_barrier = check_sequential_tlbi_program(&build(false, true), &spec, 4).unwrap();
        assert!(!no_barrier.holds);
    }

    #[test]
    fn memory_isolation_strong_vs_weak() {
        let mut p = ProgramBuilder::new("iso");
        p.thread("kernel", |t| {
            t.load(Reg(0), 0x1000u64, false); // reads user memory
        });
        p.thread("user", |t| {
            t.store(0x1001u64, 1u64, false); // writes user memory: fine
        });
        let prog = p.build();
        let mut spec = KernelSpec::for_kernel_threads([0]);
        spec.user_mem = vec![(0x1000, 0x2000)];
        spec.kernel_mem = vec![(0x0, 0x100)];
        let strong = check_memory_isolation(&prog, &spec, &ValueConfig::default());
        assert!(!strong.holds);
        spec.isolation = IsolationMode::Weak;
        let weak = check_memory_isolation(&prog, &spec, &ValueConfig::default());
        assert!(weak.holds, "{weak}");
    }

    #[test]
    fn memory_isolation_user_writing_kernel_fails() {
        let mut p = ProgramBuilder::new("attack");
        p.thread("kernel", |t| {
            t.store(0x10u64, 1u64, false);
        });
        p.thread("user", |t| {
            t.store(0x10u64, 666u64, false); // writes kernel memory
        });
        let prog = p.build();
        let mut spec = KernelSpec::for_kernel_threads([0]);
        spec.kernel_mem = vec![(0x0, 0x100)];
        spec.isolation = IsolationMode::Weak;
        let r = check_memory_isolation(&prog, &spec, &ValueConfig::default());
        assert!(!r.holds);
    }

    #[test]
    fn sync_conditions_via_pushpull() {
        let data = 0x50u64;
        let mut p = ProgramBuilder::new("one-thread-cs");
        p.thread("k", |t| {
            t.fence(vrm_memmodel::ir::Fence::Sy);
            t.pull(vec![Expr::Imm(data)]);
            t.store(data, 1u64, false);
            t.push(vec![Expr::Imm(data)]);
            t.fence(vrm_memmodel::ir::Fence::Sy);
        });
        let mut spec = KernelSpec::for_kernel_threads([0]);
        spec.shared_data = [data].into();
        let cfg = PromisingConfig {
            promises: false,
            ..Default::default()
        };
        let reports = check_sync_conditions(&p.build(), &spec, &cfg).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.holds), "{reports:?}");
    }
}
