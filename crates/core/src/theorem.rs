//! The wDRF theorem, checked end-to-end (Theorems 1–4).
//!
//! For a kernel program satisfying the six wDRF conditions, every
//! observable behaviour on the Promising Arm model must also be observable
//! on an SC model. The paper proves this deductively; here we *check* it
//! for a concrete program by exhaustive enumeration on both models:
//!
//! * **Strong isolation** (Theorems 1–3): enumerate the program on
//!   Promising Arm and on SC, project both outcome sets to the kernel
//!   observables, and verify `RM ⊆ SC`.
//! * **Weak isolation** (Theorem 4): the kernel may read user memory, so a
//!   user program's RM behaviour could leak into the kernel. The theorem
//!   quantifies over a *replacement* user program `Q'`: we construct the
//!   paper's data-oracle closure — user threads replaced by oracle writers
//!   that store arbitrary domain values to the user locations — and verify
//!   `RM(P ∪ Q) ⊆ SC(P ∪ Q_oracle)` on the kernel observables.
//!
//! For litmus-scale kernels these checks are exhaustive: a passing verdict
//! is a proof-by-enumeration for that program, and a failing one comes
//! with concrete counterexample outcomes (as for the buggy Examples 1–7).

use std::collections::BTreeSet;

use vrm_explore::{Coverage, ExploreConfig, ExploreStats, TruncationReason, Verdict};
use vrm_memmodel::ir::{Inst, Program, Reg, Thread};
use vrm_memmodel::outcome::{Outcome, OutcomeSet, ThreadExit};
use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};
use vrm_memmodel::sc::{enumerate_sc_with, ExploreError, ScConfig};
use vrm_memmodel::values::{analyze, ValueConfig};

use crate::conditions::{
    check_memory_isolation, check_sequential_tlbi_program, check_sync_conditions, ConditionReport,
};
use crate::spec::{in_ranges, IsolationMode, KernelSpec};

/// Configuration for [`check_wdrf`].
#[derive(Debug, Clone)]
pub struct WdrfCheckConfig {
    /// Promising-model exploration bounds.
    pub promising: PromisingConfig,
    /// SC exploration bounds.
    pub sc: ScConfig,
    /// Value-analysis bounds (isolation check, oracle domain).
    pub values: ValueConfig,
    /// Random schedules for the Sequential-TLB-Invalidation trace check.
    pub tlbi_schedules: usize,
    /// How many oracle write rounds each replaced user thread performs
    /// (Theorem 4's `Q'` construction); more rounds cover kernels that
    /// re-read user memory more often.
    pub oracle_rounds: usize,
    /// Skip conditions 1–3 (when the program has no push/pull
    /// instrumentation, e.g. a pure page-table or user-interference test).
    pub skip_sync_conditions: bool,
    /// Worker threads for both model enumerations (forwarded into the
    /// promising and SC configs; `1` = the sequential reference driver).
    pub jobs: usize,
}

impl Default for WdrfCheckConfig {
    fn default() -> Self {
        Self {
            promising: PromisingConfig::default(),
            sc: ScConfig::default(),
            values: ValueConfig::default(),
            tlbi_schedules: 8,
            oracle_rounds: 2,
            skip_sync_conditions: false,
            jobs: ExploreConfig::jobs_from_env(),
        }
    }
}

/// The end-to-end verdict of the wDRF check.
#[derive(Debug, Clone)]
pub struct WdrfVerdict {
    /// Per-condition reports (1, 2, 3, 5, 6; condition 4 is checked at the
    /// page-table-operation level, see `vrm-mmu`/`vrm-sekvm`).
    pub conditions: Vec<ConditionReport>,
    /// Kernel-projected RM outcome set.
    pub rm: OutcomeSet,
    /// Kernel-projected SC outcome set (of the oracle closure under weak
    /// isolation).
    pub sc: OutcomeSet,
    /// The theorem's conclusion: did every RM behaviour appear on SC?
    pub rm_subset_of_sc: bool,
    /// RM-only outcomes, if any (counterexamples to SC-transferability).
    pub counterexamples: Vec<Outcome>,
    /// `true` if any exploration bound was hit.
    pub truncated: bool,
    /// Combined enumeration counters from the RM and SC sweeps.
    pub stats: ExploreStats,
}

impl WdrfVerdict {
    /// `true` iff all checked conditions hold and RM ⊆ SC.
    ///
    /// Only meaningful when [`truncated`](Self::truncated) is `false`;
    /// use [`verdict`](Self::verdict) for the sound three-valued answer.
    pub fn holds(&self) -> bool {
        self.conditions.iter().all(|c| c.holds) && self.rm_subset_of_sc
    }

    /// The sound three-valued verdict.
    ///
    /// Any truncation — of the RM enumeration, the SC enumeration, or
    /// any condition's underlying analysis — yields `Unknown`: a missing
    /// RM outcome could turn a PASS into a FAIL, and a missing SC
    /// outcome could turn an apparent counterexample into a match, so a
    /// truncated walk must never be allowed to flip a verdict in either
    /// direction.
    pub fn verdict(&self) -> Verdict {
        if self.truncated {
            // Out-of-band truncation (certification budget, value
            // analysis) may not show up in the walk stats; synthesize a
            // coverage so Unknown always carries one.
            let coverage = Coverage::from_stats(&self.stats).unwrap_or(Coverage {
                states: self.stats.states,
                frontier_len: 0,
                reason: TruncationReason::StateLimit,
            });
            Verdict::Unknown { coverage }
        } else if self.holds() {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }
}

impl std::fmt::Display for WdrfVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.conditions {
            write!(f, "{c}")?;
        }
        if let Verdict::Unknown { coverage } = self.verdict() {
            writeln!(
                f,
                "[UNKNOWN] wDRF theorem: exploration truncated ({coverage}); \
                 {} RM vs {} SC behaviours seen, no verdict",
                self.rm.len(),
                self.sc.len()
            )?;
        } else {
            writeln!(
                f,
                "[{}] wDRF theorem: RM observable behaviours {} SC behaviours ({} vs {})",
                if self.rm_subset_of_sc { "PASS" } else { "FAIL" },
                if self.rm_subset_of_sc {
                    "are a subset of"
                } else {
                    "EXCEED"
                },
                self.rm.len(),
                self.sc.len()
            )?;
        }
        for cex in &self.counterexamples {
            writeln!(f, "    RM-only: {cex}")?;
        }
        Ok(())
    }
}

/// Projects an outcome set to the kernel: keeps only the kernel-named
/// observables (all if the spec lists none) and masks user threads' exit
/// statuses.
pub fn project_kernel(outcomes: &OutcomeSet, spec: &KernelSpec) -> OutcomeSet {
    outcomes
        .iter()
        .map(|o| {
            let values = o
                .values
                .iter()
                .filter(|(n, _)| {
                    spec.kernel_observables.is_empty() || spec.kernel_observables.contains(n)
                })
                .cloned()
                .collect();
            let exits = o
                .exits
                .iter()
                .enumerate()
                .map(|(tid, &e)| {
                    if spec.is_kernel_thread(tid) {
                        e
                    } else {
                        ThreadExit::Done
                    }
                })
                .collect();
            Outcome { values, exits }
        })
        .collect()
}

/// Builds the Theorem 4 oracle closure `P ∪ Q'`: user threads are replaced
/// by data-oracle writers that store arbitrary domain values to the user
/// locations the original threads could write.
///
/// The oracle draws values from the value-analysis domain of the original
/// program, which covers every value the real user program could produce
/// (including its RM-only combinations, e.g. `z = 2` in Example 7).
pub fn oracle_closure(
    prog: &Program,
    spec: &KernelSpec,
    values: &ValueConfig,
    rounds: usize,
) -> Program {
    let va = analyze(prog, values);
    let mut out = prog.clone();
    for tid in 0..prog.threads.len() {
        if spec.is_kernel_thread(tid) {
            continue;
        }
        // Addresses this user thread may write, restricted to user memory.
        let addrs: Vec<_> = va.writes[tid]
            .iter()
            .copied()
            .filter(|&a| in_ranges(a, &spec.user_mem))
            .collect();
        let mut code = Vec::new();
        for _ in 0..rounds.max(1) {
            for &a in &addrs {
                let mut choices: BTreeSet<u64> = va.candidates(a, prog);
                choices.insert(prog.init_val(a));
                code.push(Inst::Oracle {
                    dst: Reg(0),
                    choices: choices.into_iter().collect(),
                });
                code.push(Inst::Store {
                    val: vrm_memmodel::ir::Expr::Reg(Reg(0)),
                    addr: vrm_memmodel::ir::Expr::Imm(a),
                    rel: false,
                });
            }
        }
        code.push(Inst::Halt);
        out.threads[tid] = Thread {
            name: format!("{} (oracle)", prog.threads[tid].name),
            code,
        };
    }
    out
}

/// Theorem 2: the *solely running kernel* check.
///
/// Strips the user threads out of the program entirely (the kernel "running
/// solely without user programs") and verifies that its RM execution
/// results coincide with its SC execution results. Only conditions 1–3 are
/// needed in this setting, which is why the caller typically pairs this
/// with [`crate::conditions::check_sync_conditions`].
pub fn check_theorem2(
    prog: &Program,
    spec: &KernelSpec,
    cfg: &WdrfCheckConfig,
) -> Result<WdrfVerdict, ExploreError> {
    let mut solo = prog.clone();
    for tid in 0..solo.threads.len() {
        if !spec.is_kernel_thread(tid) {
            solo.threads[tid] = Thread {
                name: format!("{} (removed)", prog.threads[tid].name),
                code: vec![Inst::Halt],
            };
        }
    }
    let mut inner = cfg.clone();
    inner.skip_sync_conditions = true;
    let mut solo_spec = spec.clone();
    solo_spec.isolation = IsolationMode::Strong;
    check_wdrf(&solo, &solo_spec, &inner)
}

/// Runs the full wDRF check: conditions, then the RM ⊆ SC comparison.
///
/// # Examples
///
/// ```
/// use vrm_core::{check_wdrf, KernelSpec, WdrfCheckConfig};
/// use vrm_memmodel::builder::ProgramBuilder;
/// use vrm_memmodel::ir::Reg;
///
/// // A kernel thread whose only shared access is protected by dmb-fenced
/// // push/pull has identical RM and SC behaviour.
/// let mut p = ProgramBuilder::new("trivial");
/// p.thread("kernel", |t| {
///     t.load(Reg(0), 0x10, true);
/// });
/// p.observe_reg("r0", 0, Reg(0));
/// let spec = KernelSpec::for_kernel_threads([0]);
/// let mut cfg = WdrfCheckConfig::default();
/// cfg.skip_sync_conditions = true; // no push/pull instrumentation here
/// let verdict = check_wdrf(&p.build(), &spec, &cfg).unwrap();
/// assert!(verdict.rm_subset_of_sc);
/// ```
pub fn check_wdrf(
    prog: &Program,
    spec: &KernelSpec,
    cfg: &WdrfCheckConfig,
) -> Result<WdrfVerdict, ExploreError> {
    let _span = vrm_obs::span!("check_wdrf", prog = prog.name.as_str(), jobs = cfg.jobs);
    let mut conditions = Vec::new();
    let mut truncated = false;

    {
        let _span = vrm_obs::span!("check_wdrf.conditions");
        if !cfg.skip_sync_conditions {
            let mut sync_cfg = cfg.promising.clone();
            sync_cfg.jobs = cfg.jobs;
            let sync = check_sync_conditions(prog, spec, &sync_cfg)?;
            conditions.extend(sync);
        }
        if prog.uses_vm() || !spec.user_pt.is_empty() {
            conditions.push(check_sequential_tlbi_program(
                prog,
                spec,
                cfg.tlbi_schedules,
            )?);
        }
        conditions.push(check_memory_isolation(prog, spec, &cfg.values));
    }

    // RM side: the real program on Promising Arm.
    let (rm_raw, mut stats) = {
        let _span = vrm_obs::span!("check_wdrf.rm_walk");
        let mut pcfg = cfg.promising.clone();
        pcfg.jobs = cfg.jobs;
        let rm_raw = enumerate_promising_with(prog, &pcfg)?;
        let stats = rm_raw.outcomes.stats;
        (rm_raw, stats)
    };
    truncated |= rm_raw.truncated;
    let rm = project_kernel(&rm_raw.outcomes, spec);

    // SC side: the real program, or the oracle closure under weak
    // isolation.
    let sc_raw = {
        let _span = vrm_obs::span!("check_wdrf.sc_walk");
        let sc_prog = match spec.isolation {
            IsolationMode::Strong => prog.clone(),
            IsolationMode::Weak => oracle_closure(prog, spec, &cfg.values, cfg.oracle_rounds),
        };
        let mut scfg = cfg.sc;
        scfg.jobs = cfg.jobs;
        enumerate_sc_with(&sc_prog, &scfg)?
    };
    stats.absorb(&sc_raw.stats);
    let sc = project_kernel(&sc_raw, spec);

    truncated |= stats.completeness.is_truncated();
    truncated |= conditions.iter().any(|c| c.truncated);
    let counterexamples = rm.difference(&sc);
    Ok(WdrfVerdict {
        conditions,
        rm_subset_of_sc: counterexamples.is_empty(),
        counterexamples,
        rm,
        sc,
        truncated,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_memmodel::builder::ProgramBuilder;
    use vrm_memmodel::ir::Reg;

    /// Example 7 shape: users run LB and bump a counter the kernel reads.
    fn example7_like() -> (Program, KernelSpec) {
        let (x, y, z) = (0x1000u64, 0x1001u64, 0x1002u64);
        let mut p = ProgramBuilder::new("Example 7");
        p.thread("user-1", |t| {
            t.load(Reg(0), x, false);
            t.store(y, 1u64, false);
            // if r0 == 1 { z += 1 } (plain increment is racy but fine here)
            t.br(vrm_memmodel::ir::Cond::Ne, Reg(0), 1u64, "skip");
            t.rmw(Reg(1), z, vrm_memmodel::ir::RmwOp::Add, 1u64, false, false);
            t.label("skip");
            t.inst(Inst::Halt);
        });
        p.thread("user-2", |t| {
            t.load(Reg(0), y, false);
            t.store(x, Reg(0), false);
            t.br(vrm_memmodel::ir::Cond::Ne, Reg(0), 1u64, "skip");
            t.rmw(Reg(1), z, vrm_memmodel::ir::RmwOp::Add, 1u64, false, false);
            t.label("skip");
            t.inst(Inst::Halt);
        });
        p.thread("kernel", |t| {
            t.load(Reg(2), z, false); // reads user memory
        });
        p.observe_reg("kernel_z", 2, Reg(2));
        let mut spec = KernelSpec::for_kernel_threads([2]);
        spec.user_mem = vec![(0x1000, 0x2000)];
        spec.kernel_observables = vec!["kernel_z".into()];
        spec.isolation = IsolationMode::Weak;
        (p.build(), spec)
    }

    #[test]
    fn example7_fails_under_strong_claim() {
        // Without the oracle construction, the kernel can observe z=2 on
        // RM (both users see 1 via load buffering) but never on SC.
        let (prog, mut spec) = example7_like();
        spec.isolation = IsolationMode::Strong;
        let mut cfg = WdrfCheckConfig {
            skip_sync_conditions: true,
            ..Default::default()
        };
        cfg.promising.max_promises_per_thread = 1;
        cfg.promising.value_cfg.max_rounds = 3;
        let v = check_wdrf(&prog, &spec, &cfg).unwrap();
        // Condition 6 (strong) fails: the kernel reads user memory.
        assert!(v.conditions.iter().any(|c| !c.holds));
        // And the raw RM/SC comparison exhibits the RM-only behaviour.
        assert!(!v.rm_subset_of_sc, "rm:\n{}\nsc:\n{}", v.rm, v.sc);
        assert!(v.counterexamples.iter().any(|o| o.get("kernel_z") == 2));
    }

    #[test]
    fn example7_passes_under_weak_isolation() {
        // Theorem 4: with the data-oracle closure, every RM-visible kernel
        // observation (including z=2) is SC-reachable for some Q'.
        let (prog, spec) = example7_like();
        let mut cfg = WdrfCheckConfig {
            skip_sync_conditions: true,
            oracle_rounds: 1,
            ..Default::default()
        };
        cfg.promising.max_promises_per_thread = 1;
        cfg.promising.value_cfg.max_rounds = 3;
        cfg.values.max_rounds = 3;
        let v = check_wdrf(&prog, &spec, &cfg).unwrap();
        assert!(v.conditions.iter().all(|c| c.holds), "{:#?}", v.conditions);
        assert!(v.rm_subset_of_sc, "rm:\n{}\nsc:\n{}", v.rm, v.sc);
        assert!(v.holds());
    }

    #[test]
    fn mp_without_barriers_flagged_by_theorem() {
        // A "kernel" with an unsynchronized MP race: RM exceeds SC.
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("MP-kernel");
        p.thread("k0", |t| {
            t.store(x, 42u64, false);
            t.store(f, 1u64, false);
        });
        p.thread("k1", |t| {
            t.load(Reg(0), f, false);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let spec = KernelSpec::for_kernel_threads([0, 1]);
        let mut cfg = WdrfCheckConfig {
            skip_sync_conditions: true,
            ..Default::default()
        };
        let _ = &mut cfg;
        let v = check_wdrf(&p.build(), &spec, &cfg).unwrap();
        assert!(!v.rm_subset_of_sc);
        assert!(v
            .counterexamples
            .iter()
            .any(|o| o.get("f") == 1 && o.get("d") == 0));
    }

    #[test]
    fn mp_with_rel_acq_passes_theorem() {
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("MP-kernel-fixed");
        p.thread("k0", |t| {
            t.store(x, 42u64, false);
            t.store(f, 1u64, true);
        });
        p.thread("k1", |t| {
            t.load(Reg(0), f, true);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let spec = KernelSpec::for_kernel_threads([0, 1]);
        let mut cfg = WdrfCheckConfig {
            skip_sync_conditions: true,
            ..Default::default()
        };
        let _ = &mut cfg;
        let v = check_wdrf(&p.build(), &spec, &cfg).unwrap();
        assert!(
            v.rm_subset_of_sc,
            "counterexamples: {:?}",
            v.counterexamples
        );
    }

    #[test]
    fn under_budgeted_check_is_unknown_never_pass_or_fail() {
        // MP-without-barriers genuinely FAILs when exhaustive (see
        // `mp_without_barriers_flagged_by_theorem`); starved of states the
        // check must refuse to conclude either way.
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("MP-kernel");
        p.thread("k0", |t| {
            t.store(x, 42u64, false);
            t.store(f, 1u64, false);
        });
        p.thread("k1", |t| {
            t.load(Reg(0), f, false);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let spec = KernelSpec::for_kernel_threads([0, 1]);
        let mut cfg = WdrfCheckConfig {
            skip_sync_conditions: true,
            jobs: 1,
            ..Default::default()
        };
        cfg.promising.max_states = 4;
        cfg.sc.max_states = 4;
        let v = check_wdrf(&p.build(), &spec, &cfg).unwrap();
        assert!(v.truncated);
        match v.verdict() {
            vrm_explore::Verdict::Unknown { coverage } => {
                assert!(coverage.states > 0, "coverage must be nonzero: {coverage}");
            }
            other => panic!("under-budgeted check must be Unknown, got {other}"),
        }
        let shown = v.to_string();
        assert!(shown.contains("[UNKNOWN]"), "{shown}");
    }

    #[test]
    fn theorem2_kernel_solo() {
        // The Example 7 kernel, run solo (user threads stripped): trivially
        // RM == SC regardless of the users' racy code.
        let (prog, spec) = example7_like();
        let cfg = WdrfCheckConfig::default();
        let v = super::check_theorem2(&prog, &spec, &cfg).unwrap();
        assert!(v.rm_subset_of_sc);
        // The kernel alone always reads the initial z.
        assert!(v.rm.iter().all(|o| o.get("kernel_z") == 0));
    }

    #[test]
    fn projection_masks_user_exits_and_observables() {
        let mut spec = KernelSpec::for_kernel_threads([0]);
        spec.kernel_observables = vec!["k".into()];
        let o = Outcome {
            values: vec![("k".into(), 1), ("u".into(), 9)],
            exits: vec![ThreadExit::Done, ThreadExit::Panic],
        };
        let set: OutcomeSet = [o].into_iter().collect();
        let p = project_kernel(&set, &spec);
        let po = p.iter().next().unwrap();
        assert_eq!(po.values, vec![("k".to_string(), 1)]);
        assert_eq!(po.exits, vec![ThreadExit::Done, ThreadExit::Done]);
    }
}
