//! Kernel program specifications: the sharing and isolation structure the
//! wDRF condition checkers need to know about a program.

use std::collections::BTreeSet;

use vrm_memmodel::ir::Addr;

/// Which version of condition 6 the system claims (§3, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationMode {
    /// Memory-Isolation: the kernel never reads user memory and user
    /// programs cannot write kernel memory.
    #[default]
    Strong,
    /// Weak-Memory-Isolation: user programs cannot write kernel memory, and
    /// kernel reads of user memory are masked by data oracles, so the SC
    /// proofs do not depend on user-program implementations.
    Weak,
}

/// A half-open address range `[start, end)`.
pub type Range = (Addr, Addr);

/// Returns `true` if `addr` falls in any of the given ranges.
pub fn in_ranges(addr: Addr, ranges: &[Range]) -> bool {
    ranges.iter().any(|&(lo, hi)| addr >= lo && addr < hi)
}

/// The sharing/isolation structure of a kernel program under analysis.
///
/// The wDRF conditions are conditions *about* a program; this struct
/// supplies the vocabulary: which threads constitute the kernel, which data
/// locations must be protected by synchronization (DRF-Kernel exempts the
/// synchronization variables themselves and the page tables), where the
/// kernel's own page table and the user-visible page tables live, and how
/// memory is partitioned between kernel and user.
#[derive(Debug, Clone, Default)]
pub struct KernelSpec {
    /// Thread ids that are kernel code (the subject of the wDRF theorem).
    pub kernel_threads: BTreeSet<usize>,
    /// Shared data locations that must only be accessed while owned via
    /// push/pull (condition 1). Synchronization variables (lock words) and
    /// page-table cells are deliberately *not* listed here.
    pub shared_data: BTreeSet<Addr>,
    /// Cells of the kernel's own (EL2) page table (condition 3).
    pub kernel_pt: Vec<Range>,
    /// Cells of page tables readable by user-side MMU walks, e.g. stage-2
    /// tables (conditions 4 and 5).
    pub user_pt: Vec<Range>,
    /// Kernel private memory (condition 6: users must never write it).
    pub kernel_mem: Vec<Range>,
    /// User memory (condition 6: the kernel must not read it under
    /// [`IsolationMode::Strong`]).
    pub user_mem: Vec<Range>,
    /// Names of the observables that belong to the kernel (the theorem
    /// compares only these across models). Empty means "all observables".
    pub kernel_observables: Vec<String>,
    /// Which isolation condition is claimed.
    pub isolation: IsolationMode,
}

impl KernelSpec {
    /// Creates a spec where the given threads are the kernel and everything
    /// else defaults to empty.
    pub fn for_kernel_threads(tids: impl IntoIterator<Item = usize>) -> Self {
        KernelSpec {
            kernel_threads: tids.into_iter().collect(),
            ..Default::default()
        }
    }

    /// Is the address part of the kernel's own page table?
    pub fn is_kernel_pt(&self, addr: Addr) -> bool {
        in_ranges(addr, &self.kernel_pt)
    }

    /// Is the address part of a user-walked (stage-2 / SMMU) page table?
    pub fn is_user_pt(&self, addr: Addr) -> bool {
        in_ranges(addr, &self.user_pt)
    }

    /// Is the address kernel private memory?
    pub fn is_kernel_mem(&self, addr: Addr) -> bool {
        in_ranges(addr, &self.kernel_mem)
    }

    /// Is the address user memory?
    pub fn is_user_mem(&self, addr: Addr) -> bool {
        in_ranges(addr, &self.user_mem)
    }

    /// Is the thread a kernel thread?
    pub fn is_kernel_thread(&self, tid: usize) -> bool {
        self.kernel_threads.contains(&tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_membership() {
        assert!(in_ranges(5, &[(0, 10)]));
        assert!(!in_ranges(10, &[(0, 10)]));
        assert!(in_ranges(10, &[(0, 10), (10, 20)]));
        assert!(!in_ranges(25, &[(0, 10), (10, 20)]));
    }

    #[test]
    fn spec_helpers() {
        let mut s = KernelSpec::for_kernel_threads([0, 1]);
        s.kernel_pt = vec![(0x100, 0x140)];
        s.user_mem = vec![(0x1000, 0x2000)];
        assert!(s.is_kernel_thread(0));
        assert!(!s.is_kernel_thread(2));
        assert!(s.is_kernel_pt(0x100));
        assert!(!s.is_kernel_pt(0x140));
        assert!(s.is_user_mem(0x1abc));
        assert_eq!(s.isolation, IsolationMode::Strong);
    }
}
