//! An MCS queued lock at litmus scale, verified on the relaxed model.
//!
//! The paper's lock story is the ticket lock of Figure 7, but the same
//! methodology ("verify the synchronization method directly on the RM
//! model, then verify its uses via push/pull") applies to other locks —
//! the CertiKOS line of work the paper builds on verified an MCS lock on
//! SC. This module encodes a two-node MCS lock in the litmus ISA using
//! load/store-exclusives for the tail swap and CAS, and the test-suite
//! model-checks mutual exclusion and barrier placement on Promising Arm.
//!
//! Memory layout (word-granular):
//!
//! ```text
//! TAIL        — queue tail: 0 = free, otherwise the node address
//! NODE_i + 0  — node i's `locked` flag (spun on by the waiter)
//! NODE_i + 1  — node i's `next` pointer (0 = none)
//! ```

use vrm_memmodel::builder::{ProgramBuilder, ThreadBuilder};
use vrm_memmodel::ir::{Cond, Expr, Inst, Program, Reg};

/// The queue tail word.
pub const TAIL: u64 = 0x100;

/// Base address of CPU `i`'s queue node.
pub fn node(i: u64) -> u64 {
    0x110 + i * 0x10
}

/// Registers used by the generated code.
const R_PRED: Reg = Reg(0); // predecessor node address
const R_TMP: Reg = Reg(1); // scratch / status
const R_VAL: Reg = Reg(2); // critical-section register
const R_NEXT: Reg = Reg(3); // successor node address

/// Emits `mcs_acquire` for CPU `i`.
///
/// `barriers` selects the correct acquire/release placement; without it
/// the lock is the Example 2-style broken variant.
pub fn emit_acquire(t: &mut ThreadBuilder, i: u64, barriers: bool) {
    let my = node(i);
    // node.next := 0; node.locked := 1.
    t.store(my + 1, 0u64, false);
    t.store(my, 1u64, false);
    // pred := SWAP(TAIL, &node) via LDXR/STXR.
    t.label("swap");
    t.load_ex(R_PRED, TAIL, barriers);
    t.store_ex(R_TMP, TAIL, my, barriers);
    t.br(Cond::Ne, R_TMP, 0u64, "swap");
    // No predecessor: the lock is ours.
    t.br(Cond::Eq, R_PRED, 0u64, "locked");
    // Link ourselves after the predecessor and spin on our flag.
    t.store(Expr::Reg(R_PRED) + Expr::Imm(1), my, false);
    t.label("spin");
    t.load(R_TMP, my, barriers);
    t.br(Cond::Ne, R_TMP, 0u64, "spin");
    t.label("locked");
}

/// Emits `mcs_release` for CPU `i`.
pub fn emit_release(t: &mut ThreadBuilder, i: u64) {
    let my = node(i);
    // Fast path: no successor — CAS(TAIL, &node, 0).
    t.load(R_NEXT, my + 1, false);
    t.br(Cond::Ne, R_NEXT, 0u64, "hand_over");
    t.label("cas");
    t.load_ex(R_TMP, TAIL, false);
    t.br(Cond::Ne, R_TMP, my, "wait_successor");
    t.store_ex(R_TMP, TAIL, 0u64, true);
    t.br(Cond::Ne, R_TMP, 0u64, "cas");
    t.jmp("released");
    // A successor is enqueueing: wait for the link.
    t.label("wait_successor");
    t.load(R_NEXT, my + 1, false);
    t.br(Cond::Eq, R_NEXT, 0u64, "wait_successor");
    // Hand the lock over: clear the successor's flag with release.
    t.label("hand_over");
    t.load(R_NEXT, my + 1, false);
    t.store(Expr::Reg(R_NEXT), 0u64, true);
    t.label("released");
    t.inst(Inst::Nop);
}

/// A two-CPU program where each CPU takes the MCS lock and increments a
/// shared counter, with push/pull instrumentation on the counter.
pub fn mcs_counter_program(barriers: bool, counter: u64) -> Program {
    let mut p = ProgramBuilder::new(if barriers {
        "MCS counter"
    } else {
        "MCS counter (no barriers)"
    });
    for i in 0..2u64 {
        p.thread("cpu", move |t| {
            emit_acquire(t, i, barriers);
            t.pull(vec![Expr::Imm(counter)]);
            t.load(R_VAL, counter, false);
            t.store(counter, Expr::Reg(R_VAL) + Expr::Imm(1), false);
            t.push(vec![Expr::Imm(counter)]);
            emit_release(t, i);
        });
    }
    p.observe_mem("counter", counter);
    p.observe_reg("seen0", 0, R_VAL);
    p.observe_reg("seen1", 1, R_VAL);
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pushpull::check_pushpull;
    use crate::spec::KernelSpec;
    use vrm_memmodel::promising::{enumerate_promising_with, PromisingConfig};
    use vrm_memmodel::sc::enumerate_sc;

    const COUNTER: u64 = 0x50;

    fn cfg() -> PromisingConfig {
        PromisingConfig {
            promises: false,
            ..Default::default()
        }
    }

    #[test]
    fn mcs_mutual_exclusion_on_sc() {
        let prog = mcs_counter_program(true, COUNTER);
        let sc = enumerate_sc(&prog).unwrap();
        assert!(!sc.is_empty());
        for o in sc.iter() {
            assert_eq!(o.get("counter"), 2, "lost update on SC: {o}");
            assert_ne!(o.get("seen0"), o.get("seen1"));
        }
    }

    #[test]
    fn mcs_mutual_exclusion_on_arm() {
        let prog = mcs_counter_program(true, COUNTER);
        let rm = enumerate_promising_with(&prog, &cfg()).unwrap().outcomes;
        assert!(!rm.is_empty());
        for o in rm.iter() {
            assert_eq!(o.get("counter"), 2, "lost update on Arm: {o}");
            assert_ne!(o.get("seen0"), o.get("seen1"), "overlap: {o}");
        }
    }

    #[test]
    fn mcs_without_barriers_misbehaves_on_arm() {
        // Plain exclusives and plain spin loads: the critical section can
        // read stale data — both CPUs see counter 0.
        let prog = mcs_counter_program(false, COUNTER);
        let rm = enumerate_promising_with(&prog, &cfg()).unwrap().outcomes;
        assert!(
            rm.contains_binding(&[("seen0", 0), ("seen1", 0)]),
            "expected a stale-read overlap:\n{rm}"
        );
        // And on SC the same program is fine — SC verification would have
        // accepted this broken lock (the paper's core warning).
        let sc = enumerate_sc(&prog).unwrap();
        assert!(sc.iter().all(|o| o.get("counter") == 2));
    }

    #[test]
    fn mcs_passes_pushpull_conditions() {
        let prog = mcs_counter_program(true, COUNTER);
        let mut spec = KernelSpec::for_kernel_threads([0, 1]);
        spec.shared_data = [COUNTER].into();
        let r = check_pushpull(&prog, &spec, &cfg()).unwrap();
        assert!(r.drf_kernel_holds(), "{:?}", r.ownership_violations);
        assert!(r.no_barrier_misuse_holds(), "{:?}", r.barrier_violations);
    }

    #[test]
    fn mcs_handover_path_exercised() {
        // With both CPUs forced through the queue (CPU 1 enqueues while
        // CPU 0 holds), the hand-over path must appear in some outcome.
        // The exhaustive enumerations above cover it; sanity-check that
        // both orders of ticket acquisition are possible.
        let prog = mcs_counter_program(true, COUNTER);
        let sc = enumerate_sc(&prog).unwrap();
        assert!(sc.contains_binding(&[("seen0", 0), ("seen1", 1)]));
        assert!(sc.contains_binding(&[("seen0", 1), ("seen1", 0)]));
    }
}
