//! The push/pull Promising model (§4.1) as a checker.
//!
//! The paper extends Promising Arm with *push/pull promises*: to access a
//! shared location a CPU must first logically pull it (acquiring ownership)
//! and later push it back, and every push/pull promise must be fulfilled by
//! an appropriate barrier (a load-acquire or `dmb ld`/`dmb sy` for pulls, a
//! store-release or `dmb st`/`dmb sy` for pushes), consistently with
//! program order. The hardware model *panics* if the promise list is
//! invalid (pulling an owned location, pushing an unowned one, accessing a
//! location owned by another CPU) — and a program satisfies DRF-Kernel and
//! No-Barrier-Misuse iff no execution can panic.
//!
//! The ghost machinery itself lives inside the Promising explorer (the
//! ownership map is part of the model state and is exercised on *every*
//! enumerated RM execution); this module provides the programmer-facing
//! checker and report types.

use std::collections::BTreeSet;

use vrm_memmodel::ir::Program;
use vrm_memmodel::promising::{
    enumerate_promising_with, GhostConfig, GhostViolation, PromisingConfig,
};
use vrm_memmodel::sc::ExploreError;

use crate::spec::KernelSpec;

/// Outcome of checking a program against the push/pull Promising model.
#[derive(Debug, Clone)]
pub struct PushPullReport {
    /// Ownership violations (DRF-Kernel failures).
    pub ownership_violations: BTreeSet<GhostViolation>,
    /// Barrier-fulfilment violations (No-Barrier-Misuse failures).
    pub barrier_violations: BTreeSet<GhostViolation>,
    /// Write-once violations (Write-Once-Kernel-Mapping failures).
    pub write_once_violations: BTreeSet<GhostViolation>,
    /// States explored during the exhaustive RM enumeration.
    pub states_explored: usize,
    /// `true` if any exploration bound was hit.
    pub truncated: bool,
}

impl PushPullReport {
    /// `true` iff no push/pull panic is reachable: the program satisfies
    /// DRF-Kernel and No-Barrier-Misuse on the push/pull Promising model.
    pub fn drf_kernel_holds(&self) -> bool {
        self.ownership_violations.is_empty()
    }

    /// `true` iff every push/pull promise is fulfilled by proper barriers.
    pub fn no_barrier_misuse_holds(&self) -> bool {
        self.barrier_violations.is_empty()
    }

    /// `true` iff the kernel's own page table is only ever written once per
    /// entry.
    pub fn write_once_holds(&self) -> bool {
        self.write_once_violations.is_empty()
    }
}

fn classify(v: &GhostViolation) -> usize {
    match v {
        GhostViolation::PullOwned { .. }
        | GhostViolation::PushNotOwned { .. }
        | GhostViolation::AccessNotOwner { .. }
        | GhostViolation::UnprotectedShared { .. } => 0,
        GhostViolation::PullWithoutBarrier { .. } | GhostViolation::PushWithoutBarrier { .. } => 1,
        GhostViolation::WriteOnce { .. } => 2,
    }
}

/// Runs the push/pull Promising model over every reachable RM execution of
/// `prog`, with the ownership discipline taken from `spec`.
///
/// The program must be instrumented with [`Inst::Pull`] and [`Inst::Push`]
/// at critical-section boundaries (the paper inserts these when entering
/// and exiting critical sections).
///
/// [`Inst::Pull`]: vrm_memmodel::ir::Inst::Pull
/// [`Inst::Push`]: vrm_memmodel::ir::Inst::Push
/// # Examples
///
/// ```
/// use vrm_core::pushpull::check_pushpull;
/// use vrm_core::spec::KernelSpec;
/// use vrm_memmodel::builder::ProgramBuilder;
/// use vrm_memmodel::ir::{Expr, Fence, Reg};
/// use vrm_memmodel::promising::PromisingConfig;
///
/// // One thread updating a shared cell inside a barrier-fenced critical
/// // section: all three synchronization conditions hold.
/// let data = 0x50;
/// let mut p = ProgramBuilder::new("cs");
/// p.thread("kernel", |t| {
///     t.fence(Fence::Sy);
///     t.pull(vec![Expr::Imm(data)]);
///     t.store(data, 1, false);
///     t.push(vec![Expr::Imm(data)]);
///     t.fence(Fence::Sy);
/// });
/// let mut spec = KernelSpec::for_kernel_threads([0]);
/// spec.shared_data = [data].into();
/// let cfg = PromisingConfig { promises: false, ..Default::default() };
/// let report = check_pushpull(&p.build(), &spec, &cfg).unwrap();
/// assert!(report.drf_kernel_holds() && report.no_barrier_misuse_holds());
/// ```
pub fn check_pushpull(
    prog: &Program,
    spec: &KernelSpec,
    base: &PromisingConfig,
) -> Result<PushPullReport, ExploreError> {
    let mut cfg = base.clone();
    cfg.ghost = Some(GhostConfig {
        shared: spec.shared_data.clone(),
        check_barriers: true,
        kernel_pt: spec.kernel_pt.clone(),
    });
    let r = enumerate_promising_with(prog, &cfg)?;
    let mut report = PushPullReport {
        ownership_violations: BTreeSet::new(),
        barrier_violations: BTreeSet::new(),
        write_once_violations: BTreeSet::new(),
        states_explored: r.states_explored,
        truncated: r.truncated,
    };
    for v in r.violations {
        match classify(&v) {
            0 => {
                report.ownership_violations.insert(v);
            }
            1 => {
                report.barrier_violations.insert(v);
            }
            _ => {
                report.write_once_violations.insert(v);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_memmodel::builder::ProgramBuilder;
    use vrm_memmodel::ir::{Cond, Expr, Reg, RmwOp};

    const TICKET: u64 = 0x10;
    const NOW: u64 = 0x11;
    const DATA: u64 = 0x12;

    /// The Figure 7 ticket lock protecting one shared cell, correctly
    /// instrumented with push/pull.
    fn locked_program(acquire_barriers: bool, release_barrier: bool) -> Program {
        let mut p = ProgramBuilder::new("ticket-locked");
        for _ in 0..2 {
            p.thread("cpu", |t| {
                // acquire(): my_ticket = fetch_and_inc(ticket); spin.
                t.rmw(Reg(0), TICKET, RmwOp::Add, 1u64, acquire_barriers, false);
                t.label("spin");
                t.load(Reg(1), NOW, acquire_barriers);
                t.br(Cond::Ne, Reg(1), Reg(0), "spin");
                t.pull(vec![Expr::Imm(DATA)]);
                // Critical section: data += 1.
                t.load(Reg(2), DATA, false);
                t.store(DATA, Expr::Reg(Reg(2)) + Expr::Imm(1), false);
                t.push(vec![Expr::Imm(DATA)]);
                // release(): now = my_ticket + 1 (store-release).
                t.store(NOW, Expr::Reg(Reg(0)) + Expr::Imm(1), release_barrier);
            });
        }
        p.observe_mem("data", DATA);
        p.build()
    }

    fn spec() -> KernelSpec {
        let mut s = KernelSpec::for_kernel_threads([0, 1]);
        s.shared_data = [DATA].into();
        s
    }

    fn cfg() -> PromisingConfig {
        PromisingConfig {
            promises: false,
            ..Default::default()
        }
    }

    #[test]
    fn correct_ticket_lock_passes() {
        let r = check_pushpull(&locked_program(true, true), &spec(), &cfg()).unwrap();
        assert!(r.drf_kernel_holds(), "{:?}", r.ownership_violations);
        assert!(r.no_barrier_misuse_holds(), "{:?}", r.barrier_violations);
    }

    #[test]
    fn lock_without_acquire_barrier_fails() {
        // Plain loads in the spin loop (paper Example 2): the pull is not
        // covered by an acquire barrier, and ownership can actually race.
        let r = check_pushpull(&locked_program(false, true), &spec(), &cfg()).unwrap();
        assert!(!r.no_barrier_misuse_holds() || !r.drf_kernel_holds());
    }

    #[test]
    fn lock_without_release_barrier_fails() {
        let r = check_pushpull(&locked_program(true, false), &spec(), &cfg()).unwrap();
        assert!(!r.no_barrier_misuse_holds(), "{:?}", r.barrier_violations);
    }

    #[test]
    fn unprotected_access_fails_drf() {
        let mut p = ProgramBuilder::new("racy");
        p.thread("t0", |t| {
            t.store(DATA, 1u64, false);
        });
        p.thread("t1", |t| {
            t.store(DATA, 2u64, false);
        });
        let r = check_pushpull(&p.build(), &spec(), &cfg()).unwrap();
        assert!(!r.drf_kernel_holds());
    }

    #[test]
    fn write_once_kernel_pt_detected() {
        let mut p = ProgramBuilder::new("pt-overwrite");
        p.init(0x100, 0); // empty entry
        p.thread("t0", |t| {
            t.store(0x100u64, 0x20u64, false); // first map: fine
            t.store(0x100u64, 0x30u64, false); // overwrite: violation
        });
        let mut s = KernelSpec::for_kernel_threads([0]);
        s.kernel_pt = vec![(0x100, 0x140)];
        let r = check_pushpull(&p.build(), &s, &cfg()).unwrap();
        assert!(!r.write_once_holds());
        assert!(r.drf_kernel_holds());
    }
}
