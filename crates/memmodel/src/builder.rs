//! Ergonomic builders for [`Program`]s and threads.
//!
//! Branch targets in the IR are raw instruction indices; the
//! [`ThreadBuilder`] provides named labels with forward references that are
//! patched when the thread is finished.
//!
//! # Examples
//!
//! ```
//! use vrm_memmodel::builder::ProgramBuilder;
//! use vrm_memmodel::ir::Reg;
//!
//! let x = 0x10;
//! let y = 0x20;
//! let mut p = ProgramBuilder::new("MP");
//! p.thread("CPU 0", |t| {
//!     t.store(x, 1, false);
//!     t.store(y, 1, false);
//! });
//! p.thread("CPU 1", |t| {
//!     t.load(Reg(0), y, false);
//!     t.load(Reg(1), x, false);
//! });
//! p.observe_reg("r0", 1, Reg(0));
//! p.observe_reg("r1", 1, Reg(1));
//! let prog = p.build();
//! assert_eq!(prog.threads.len(), 2);
//! ```

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::ir::{
    Addr, Cond, Expr, Fence, Inst, Observable, Program, Reg, RmwOp, Thread, Val, VmConfig,
};

/// Builds one thread's code with label support.
#[derive(Debug, Default)]
pub struct ThreadBuilder {
    code: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
}

impl ThreadBuilder {
    /// Creates an empty thread builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        self.code.push(i);
        self
    }

    /// `dst := src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Expr>) -> &mut Self {
        self.inst(Inst::Mov {
            dst,
            src: src.into(),
        })
    }

    /// Plain or acquire load `dst := [addr]`.
    pub fn load(&mut self, dst: Reg, addr: impl Into<Expr>, acq: bool) -> &mut Self {
        self.inst(Inst::Load {
            dst,
            addr: addr.into(),
            acq,
        })
    }

    /// Plain or release store `[addr] := val`.
    pub fn store(&mut self, addr: impl Into<Expr>, val: impl Into<Expr>, rel: bool) -> &mut Self {
        self.inst(Inst::Store {
            val: val.into(),
            addr: addr.into(),
            rel,
        })
    }

    /// Atomic read-modify-write.
    pub fn rmw(
        &mut self,
        dst: Reg,
        addr: impl Into<Expr>,
        op: RmwOp,
        rhs: impl Into<Expr>,
        acq: bool,
        rel: bool,
    ) -> &mut Self {
        self.inst(Inst::Rmw {
            dst,
            addr: addr.into(),
            op,
            rhs: rhs.into(),
            acq,
            rel,
        })
    }

    /// `fetch_and_inc` with acquire semantics, as in the Linux ticket lock.
    pub fn fetch_and_inc_acq(&mut self, dst: Reg, addr: impl Into<Expr>) -> &mut Self {
        self.rmw(dst, addr, RmwOp::Add, 1u64, true, false)
    }

    /// Load-exclusive (`LDXR`/`LDAXR`).
    pub fn load_ex(&mut self, dst: Reg, addr: impl Into<Expr>, acq: bool) -> &mut Self {
        self.inst(Inst::LoadEx {
            dst,
            addr: addr.into(),
            acq,
        })
    }

    /// Store-exclusive (`STXR`/`STLXR`); `status` receives 0 on success.
    pub fn store_ex(
        &mut self,
        status: Reg,
        addr: impl Into<Expr>,
        val: impl Into<Expr>,
        rel: bool,
    ) -> &mut Self {
        self.inst(Inst::StoreEx {
            status,
            val: val.into(),
            addr: addr.into(),
            rel,
        })
    }

    /// Inserts a barrier.
    pub fn fence(&mut self, f: Fence) -> &mut Self {
        self.inst(Inst::Fence(f))
    }

    /// Full barrier (`dmb sy`).
    pub fn dmb(&mut self) -> &mut Self {
        self.fence(Fence::Sy)
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let pos = self.code.len();
        assert!(
            self.labels.insert(name.to_string(), pos).is_none(),
            "duplicate label {name}"
        );
        self
    }

    /// Conditional branch to a label (forward references allowed).
    pub fn br(
        &mut self,
        cond: Cond,
        lhs: impl Into<Expr>,
        rhs: impl Into<Expr>,
        target: &str,
    ) -> &mut Self {
        self.fixups.push((self.code.len(), target.to_string()));
        self.inst(Inst::Br {
            cond,
            lhs: lhs.into(),
            rhs: rhs.into(),
            target: usize::MAX,
        })
    }

    /// Unconditional jump to a label (forward references allowed).
    pub fn jmp(&mut self, target: &str) -> &mut Self {
        self.fixups.push((self.code.len(), target.to_string()));
        self.inst(Inst::Jmp(usize::MAX))
    }

    /// Virtual load through the MMU.
    pub fn load_virt(&mut self, dst: Reg, va: impl Into<Expr>, acq: bool) -> &mut Self {
        self.inst(Inst::LoadVirt {
            dst,
            va: va.into(),
            acq,
        })
    }

    /// Virtual store through the MMU.
    pub fn store_virt(
        &mut self,
        va: impl Into<Expr>,
        val: impl Into<Expr>,
        rel: bool,
    ) -> &mut Self {
        self.inst(Inst::StoreVirt {
            val: val.into(),
            va: va.into(),
            rel,
        })
    }

    /// TLB invalidation of every entry on every CPU.
    pub fn tlbi_all(&mut self) -> &mut Self {
        self.inst(Inst::Tlbi { va: None })
    }

    /// TLB invalidation of the page containing `va`, on every CPU.
    pub fn tlbi_va(&mut self, va: impl Into<Expr>) -> &mut Self {
        self.inst(Inst::Tlbi {
            va: Some(va.into()),
        })
    }

    /// Nondeterministic oracle choice (data oracle, §5.3 of the paper).
    pub fn oracle(&mut self, dst: Reg, choices: Vec<Val>) -> &mut Self {
        assert!(!choices.is_empty(), "oracle needs at least one choice");
        self.inst(Inst::Oracle { dst, choices })
    }

    /// Ghost pull (acquire logical ownership) of the listed locations.
    pub fn pull(&mut self, locs: Vec<Expr>) -> &mut Self {
        self.inst(Inst::Pull(locs))
    }

    /// Ghost push (release logical ownership) of the listed locations.
    pub fn push(&mut self, locs: Vec<Expr>) -> &mut Self {
        self.inst(Inst::Push(locs))
    }

    /// Finalizes the code, patching label references.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never defined.
    pub fn finish(mut self, name: &str) -> Thread {
        for (at, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .unwrap_or_else(|| panic!("undefined label {label}"));
            match &mut self.code[*at] {
                Inst::Br { target: t, .. } => *t = target,
                Inst::Jmp(t) => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Thread {
            name: name.to_string(),
            code: self.code,
        }
    }
}

/// Builds a complete [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    threads: Vec<Thread>,
    init_mem: BTreeMap<Addr, Val>,
    observables: Vec<Observable>,
    vm: Option<VmConfig>,
}

impl ProgramBuilder {
    /// Starts a new program with the given display name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            threads: Vec::new(),
            init_mem: BTreeMap::new(),
            observables: Vec::new(),
            vm: None,
        }
    }

    /// Adds a thread, returning its id.
    pub fn thread(&mut self, name: &str, f: impl FnOnce(&mut ThreadBuilder)) -> usize {
        let mut tb = ThreadBuilder::new();
        f(&mut tb);
        self.threads.push(tb.finish(name));
        self.threads.len() - 1
    }

    /// Adds an already-built thread, returning its id.
    pub fn push_thread(&mut self, thread: Thread) -> usize {
        self.threads.push(thread);
        self.threads.len() - 1
    }

    /// Sets the initial value of a memory cell.
    pub fn init(&mut self, addr: Addr, val: Val) -> &mut Self {
        self.init_mem.insert(addr, val);
        self
    }

    /// Fills `[base, base + len)` with `val` (e.g. an all-ones page).
    pub fn init_range(&mut self, base: Addr, len: u64, val: Val) -> &mut Self {
        for a in base..base + len {
            self.init_mem.insert(a, val);
        }
        self
    }

    /// Registers a register observable.
    pub fn observe_reg(&mut self, name: &str, tid: usize, reg: Reg) -> &mut Self {
        self.observables.push(Observable::Reg {
            name: name.to_string(),
            tid,
            reg,
        });
        self
    }

    /// Registers a memory observable.
    pub fn observe_mem(&mut self, name: &str, addr: Addr) -> &mut Self {
        self.observables.push(Observable::Mem {
            name: name.to_string(),
            addr,
        });
        self
    }

    /// Sets the page-table geometry for virtual accesses.
    pub fn vm(&mut self, vm: VmConfig) -> &mut Self {
        self.vm = Some(vm);
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            threads: self.threads,
            init_mem: self.init_mem,
            observables: self.observables,
            vm: self.vm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut tb = ThreadBuilder::new();
        tb.label("top");
        tb.load(Reg(0), 0x10u64, false);
        tb.br(Cond::Ne, Expr::Reg(Reg(0)), 1u64, "top");
        tb.jmp("end");
        tb.mov(Reg(1), 7u64);
        tb.label("end");
        tb.inst(Inst::Halt);
        let t = tb.finish("t");
        match &t.code[1] {
            Inst::Br { target, .. } => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
        match &t.code[2] {
            Inst::Jmp(t) => assert_eq!(*t, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut tb = ThreadBuilder::new();
        tb.jmp("nowhere");
        let _ = tb.finish("t");
    }

    #[test]
    fn init_range_fills() {
        let mut p = ProgramBuilder::new("t");
        p.init_range(0x20, 4, 1);
        let prog = p.build();
        assert_eq!(prog.init_val(0x20), 1);
        assert_eq!(prog.init_val(0x23), 1);
        assert_eq!(prog.init_val(0x24), 0);
    }
}
