//! Execution traces: the per-step events emitted by the executors.
//!
//! Traces are consumed by the VRM condition checkers in `vrm-core` (e.g. the
//! push/pull validity checker needs the push/pull and shared-access events;
//! the Sequential-TLB-Invalidation checker needs store/fence/TLBI order).

use std::fmt;

use crate::ir::{Addr, Fence, Val};

/// The kind of an execution event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A data read from memory.
    Read {
        /// Address read.
        addr: Addr,
        /// Value obtained.
        val: Val,
        /// Acquire semantics.
        acq: bool,
    },
    /// A data write to memory.
    Write {
        /// Address written.
        addr: Addr,
        /// Value stored.
        val: Val,
        /// Release semantics.
        rel: bool,
    },
    /// An atomic read-modify-write.
    Rmw {
        /// Address updated.
        addr: Addr,
        /// Value read (old).
        old: Val,
        /// Value written (new).
        new: Val,
        /// Acquire semantics.
        acq: bool,
        /// Release semantics.
        rel: bool,
    },
    /// A barrier.
    Fence(Fence),
    /// A broadcast TLB invalidation (`None` = all pages).
    Tlbi {
        /// Restricting virtual page number, if any.
        vpn: Option<Addr>,
    },
    /// A page-table walk read performed by the MMU on behalf of this CPU.
    WalkRead {
        /// Virtual address being translated.
        va: Addr,
        /// Page-table entry cell read.
        addr: Addr,
        /// Entry value obtained.
        val: Val,
        /// Walk level (0 = root).
        level: u32,
    },
    /// A translation fault (zero page-table entry).
    Fault {
        /// The faulting virtual address.
        va: Addr,
    },
    /// A TLB fill after a successful walk.
    TlbFill {
        /// Virtual page number.
        vpn: Addr,
        /// Physical page base cached.
        page: Addr,
    },
    /// A TLB hit (translation served without a walk).
    TlbHit {
        /// Virtual page number.
        vpn: Addr,
        /// Physical page base used.
        page: Addr,
    },
    /// Ghost pull of logical ownership.
    Pull {
        /// Locations pulled.
        locs: Vec<Addr>,
    },
    /// Ghost push of logical ownership.
    Push {
        /// Locations pushed.
        locs: Vec<Addr>,
    },
    /// The thread panicked.
    Panic,
}

/// One event of an execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Event {
    /// Thread (CPU) that produced the event.
    pub tid: usize,
    /// Program counter of the producing instruction.
    pub pc: usize,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Returns the data-memory address touched, if this is a data access.
    pub fn data_addr(&self) -> Option<Addr> {
        match &self.kind {
            EventKind::Read { addr, .. }
            | EventKind::Write { addr, .. }
            | EventKind::Rmw { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// Returns `true` if the event writes data memory.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, EventKind::Write { .. } | EventKind::Rmw { .. })
    }

    /// Returns `true` if the event reads data memory.
    pub fn is_read(&self) -> bool {
        matches!(self.kind, EventKind::Read { .. } | EventKind::Rmw { .. })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}@{}: ", self.tid, self.pc)?;
        match &self.kind {
            EventKind::Read { addr, val, acq } => {
                write!(f, "R{} [{addr:#x}] = {val}", if *acq { ".acq" } else { "" })
            }
            EventKind::Write { addr, val, rel } => {
                write!(
                    f,
                    "W{} [{addr:#x}] := {val}",
                    if *rel { ".rel" } else { "" }
                )
            }
            EventKind::Rmw { addr, old, new, .. } => {
                write!(f, "RMW [{addr:#x}] {old} -> {new}")
            }
            EventKind::Fence(k) => write!(f, "Fence({k:?})"),
            EventKind::Tlbi { vpn } => match vpn {
                Some(p) => write!(f, "TLBI vpn={p:#x}"),
                None => write!(f, "TLBI all"),
            },
            EventKind::WalkRead {
                va,
                addr,
                val,
                level,
            } => write!(f, "Walk(va={va:#x}, L{level}) [{addr:#x}] = {val:#x}"),
            EventKind::Fault { va } => write!(f, "FAULT va={va:#x}"),
            EventKind::TlbFill { vpn, page } => write!(f, "TLBFill {vpn:#x} -> {page:#x}"),
            EventKind::TlbHit { vpn, page } => write!(f, "TLBHit {vpn:#x} -> {page:#x}"),
            EventKind::Pull { locs } => write!(f, "Pull {locs:x?}"),
            EventKind::Push { locs } => write!(f, "Push {locs:x?}"),
            EventKind::Panic => write!(f, "PANIC"),
        }
    }
}

/// A full execution trace (global order as scheduled by the executor).
pub type Trace = Vec<Event>;
