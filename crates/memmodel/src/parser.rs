//! A textual litmus-test format.
//!
//! Lets users write tests without Rust, in the spirit of herd7's
//! `.litmus` files but with a simpler line-based grammar:
//!
//! ```text
//! litmus MP+dmb
//! init x=0 y=0
//!
//! thread P0
//!   store x 1
//!   dmb sy
//!   store y 1
//!
//! thread P1
//!   r0 = load y
//!   r1 = load x
//!
//! observe P1:r0 as flag
//! observe P1:r1 as data
//! check arm allows flag=1 data=0
//! check sc forbids flag=1 data=0
//! ```
//!
//! Grammar summary (one item per line; `#` starts a comment):
//!
//! * `litmus <name>` — test name (first non-comment line);
//! * `init <loc>=<val> ...` — initial memory; locations are symbolic
//!   names, assigned distinct addresses in order of first appearance;
//! * `thread <name>` — starts a thread; indented lines are instructions:
//!   - `rN = load <expr>` / `rN = ldar <expr>` — plain/acquire load,
//!   - `store <expr> <expr>` / `stlr <expr> <expr>` — plain/release store
//!     (address first, then value),
//!   - `rN = ldxr <expr>` / `rN = ldaxr <expr>` — load-exclusive,
//!   - `rN = stxr <expr> <expr>` / `rN = stlxr <expr> <expr>` —
//!     store-exclusive (status register, address, value),
//!   - `rN = rmw[.acq][.rel] add|swap|and|or <expr> <expr>` — atomic RMW,
//!   - `rN = <expr>` — move/ALU,
//!   - `dmb sy|ld|st`, `isb`,
//!   - `<label>:` on its own line; `beq|bne|blt|bge rA <expr> <label>`;
//!     `b <label>`,
//!   - `halt`, `panic`, `nop`;
//! * `observe <thread>:rN as <name>` / `observe mem <loc> as <name>`;
//! * `check arm|sc allows|forbids <name>=<val> ...` — expected verdicts;
//! * `vm levels=<n> root=<val> pagebits=<n> indexbits=<n>` — enables the
//!   virtual-memory instructions `rN = ldrv <expr>` (load through the
//!   MMU), `strv <expr> <expr>`, and `tlbi [<expr>]`.
//!
//! Expressions are `operand (op operand)*`, left-associative, with
//! operands `rN`, decimal/hex numbers, or location names, and operators
//! `+ - * & |`.

use std::collections::BTreeMap;

use crate::builder::{ProgramBuilder, ThreadBuilder};
use crate::ir::{BinOp, Cond, Expr, Fence, Inst, Program, Reg, RmwOp, Val, VmConfig};
use crate::promising::PromisingConfig;

/// A parsed litmus file: the program plus its expected verdicts.
#[derive(Debug, Clone)]
pub struct ParsedLitmus {
    /// The program.
    pub program: Program,
    /// `(model, allows, bindings)` expectations from `check` lines.
    pub checks: Vec<Check>,
    /// Symbolic location addresses (name → address).
    pub locations: BTreeMap<String, u64>,
    /// Promising-model configuration, tunable via `config` directives
    /// (`config promises=off`, `config rounds=N`, `config maxpromises=N`) —
    /// lock-shaped tests with loops want the promise-free fast path.
    pub promising: PromisingConfig,
    /// Whether to cross-check against the axiomatic model
    /// (`config axiomatic=off` for loop-heavy programs where candidate
    /// enumeration explodes).
    pub run_axiomatic: bool,
}

impl ParsedLitmus {
    /// The normalized source text: the `Display` pretty-print, which is
    /// a fixed point of `parse` → print (pinned by
    /// `tests/parser_roundtrip.rs`). Two source files that differ only
    /// in whitespace, comments or directive order have the same
    /// canonical text — this is the content-addressing hook the serve
    /// layer digests, so such files share one cached verdict.
    pub fn canonical_text(&self) -> String {
        self.to_string()
    }
}

/// One `check` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// `"arm"` or `"sc"`.
    pub model: CheckModel,
    /// `true` for `allows`, `false` for `forbids`.
    pub allows: bool,
    /// The observable bindings.
    pub bindings: Vec<(String, Val)>,
}

/// Which model a check constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckModel {
    /// The relaxed (Promising / axiomatic) models.
    Arm,
    /// The sequentially consistent model.
    Sc,
}

/// A parse error with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    locations: BTreeMap<String, u64>,
    next_addr: u64,
}

impl Parser {
    fn loc(&mut self, name: &str) -> u64 {
        if let Some(&a) = self.locations.get(name) {
            return a;
        }
        let a = self.next_addr;
        self.next_addr += 0x10;
        self.locations.insert(name.to_string(), a);
        a
    }

    fn operand(&mut self, tok: &str, line: usize) -> Result<Expr, ParseError> {
        if let Some(rest) = tok.strip_prefix('r') {
            if let Ok(n) = rest.parse::<u8>() {
                return Ok(Expr::Reg(Reg(n)));
            }
        }
        if let Some(hex) = tok.strip_prefix("0x") {
            return u64::from_str_radix(hex, 16)
                .map(Expr::Imm)
                .map_err(|e| err(line, format!("bad hex literal {tok}: {e}")));
        }
        if tok.chars().all(|c| c.is_ascii_digit()) {
            return tok
                .parse::<u64>()
                .map(Expr::Imm)
                .map_err(|e| err(line, format!("bad literal {tok}: {e}")));
        }
        if tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Ok(Expr::Imm(self.loc(tok)));
        }
        Err(err(line, format!("unrecognized operand `{tok}`")))
    }

    /// Parses `operand (op operand)*` from a token stream.
    fn expr(&mut self, toks: &mut &[&str], line: usize) -> Result<Expr, ParseError> {
        let first = toks
            .first()
            .ok_or_else(|| err(line, "expected expression".into()))?;
        let mut e = self.operand(first, line)?;
        *toks = &toks[1..];
        while let Some(&op) = toks.first() {
            let bin = match op {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "*" => BinOp::Mul,
                "&" => BinOp::And,
                "|" => BinOp::Or,
                _ => break,
            };
            let rhs = toks
                .get(1)
                .ok_or_else(|| err(line, format!("operator `{op}` needs an operand")))?;
            let r = self.operand(rhs, line)?;
            e = Expr::bin(bin, e, r);
            *toks = &toks[2..];
        }
        Ok(e)
    }
}

fn err(line: usize, message: String) -> ParseError {
    ParseError { line, message }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Reg)
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))
}

/// Parses a litmus file.
///
/// # Examples
///
/// ```
/// use vrm_memmodel::parser::parse;
/// use vrm_memmodel::sc::enumerate_sc;
///
/// let parsed = parse(
///     "litmus demo\n\
///      init x=0\n\
///      thread P0\n  store x 7\n\
///      observe mem x as x\n\
///      check sc allows x=7\n",
/// )
/// .unwrap();
/// let sc = enumerate_sc(&parsed.program).unwrap();
/// assert!(sc.contains_binding(&[("x", 7)]));
/// ```
pub fn parse(text: &str) -> Result<ParsedLitmus, ParseError> {
    let mut p = Parser {
        locations: BTreeMap::new(),
        next_addr: 0x1000,
    };
    let mut name: Option<String> = None;
    let mut inits: Vec<(String, Val)> = Vec::new();
    let mut threads: Vec<(String, Vec<(usize, String)>)> = Vec::new();
    let mut observes: Vec<(usize, String)> = Vec::new();
    let mut checks_raw: Vec<(usize, String)> = Vec::new();
    let mut promising = PromisingConfig::default();
    let mut run_axiomatic = true;
    let mut vm: Option<VmConfig> = None;
    let mut init_ranges: Vec<(u64, u64, Val)> = Vec::new();

    for (no, raw) in text.lines().enumerate() {
        let line_no = no + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let indented = line.starts_with(' ') || line.starts_with('\t');
        if indented {
            let Some(t) = threads.last_mut() else {
                return Err(err(line_no, "instruction outside a thread".into()));
            };
            t.1.push((line_no, trimmed.to_string()));
            continue;
        }
        let mut words = trimmed.split_whitespace();
        match words.next() {
            Some("litmus") => {
                name = Some(words.collect::<Vec<_>>().join(" "));
            }
            Some("init") => {
                for w in words {
                    let (l, v) = w
                        .split_once('=')
                        .ok_or_else(|| err(line_no, format!("bad init `{w}`")))?;
                    let v = parse_val(v, line_no)?;
                    inits.push((l.to_string(), v));
                }
            }
            Some("initrange") => {
                // `initrange <base> <len> <val>`: raw-address fill (page
                // contents for virtual-memory tests).
                let toks: Vec<&str> = words.collect();
                if toks.len() != 3 {
                    return Err(err(line_no, "initrange <base> <len> <val>".into()));
                }
                let base = parse_val(toks[0], line_no)?;
                let len = parse_val(toks[1], line_no)?;
                let val = parse_val(toks[2], line_no)?;
                init_ranges.push((base, len, val));
            }
            Some("thread") => {
                let tname = words
                    .next()
                    .ok_or_else(|| err(line_no, "thread needs a name".into()))?;
                threads.push((tname.to_string(), Vec::new()));
            }
            Some("vm") => {
                let mut cfg = VmConfig {
                    levels: 1,
                    root: 0x100,
                    page_bits: 4,
                    index_bits: 4,
                };
                for w in words {
                    let (k, v) = w
                        .split_once('=')
                        .ok_or_else(|| err(line_no, format!("bad vm option `{w}`")))?;
                    let n = parse_val(v, line_no)? as u32;
                    match k {
                        "levels" => cfg.levels = n,
                        "pagebits" => cfg.page_bits = n,
                        "indexbits" => cfg.index_bits = n,
                        "root" => cfg.root = parse_val(v, line_no)?,
                        other => return Err(err(line_no, format!("unknown vm option `{other}`"))),
                    }
                }
                vm = Some(cfg);
            }
            Some("config") => {
                for w in words {
                    let (k, v) = w
                        .split_once('=')
                        .ok_or_else(|| err(line_no, format!("bad config `{w}`")))?;
                    match k {
                        "promises" => promising.promises = v == "on",
                        "rounds" => {
                            promising.value_cfg.max_rounds = v
                                .parse()
                                .map_err(|e| err(line_no, format!("bad rounds: {e}")))?
                        }
                        "maxpromises" => {
                            promising.max_promises_per_thread = v
                                .parse()
                                .map_err(|e| err(line_no, format!("bad maxpromises: {e}")))?
                        }
                        "axiomatic" => run_axiomatic = v == "on",
                        other => return Err(err(line_no, format!("unknown config key `{other}`"))),
                    }
                }
            }
            Some("observe") => observes.push((line_no, trimmed.to_string())),
            Some("check") => checks_raw.push((line_no, trimmed.to_string())),
            Some(other) => {
                return Err(err(line_no, format!("unknown directive `{other}`")));
            }
            None => {}
        }
    }

    let name = name.ok_or_else(|| err(1, "missing `litmus <name>` line".into()))?;
    let mut pb = ProgramBuilder::new(&name);
    if let Some(cfg) = vm {
        pb.vm(cfg);
    }
    for (base, len, val) in &init_ranges {
        pb.init_range(*base, *len, *val);
    }
    for (l, v) in &inits {
        let addr = if l.starts_with("0x") || l.chars().all(|c| c.is_ascii_digit()) {
            parse_val(l, 1)?
        } else {
            p.loc(l)
        };
        pb.init(addr, *v);
    }
    let thread_names: Vec<String> = threads.iter().map(|(n, _)| n.clone()).collect();
    for (tname, lines) in &threads {
        let mut tb = ThreadBuilder::new();
        for (line_no, text) in lines {
            parse_inst(&mut p, &mut tb, text, *line_no)?;
        }
        pb.threads_push(tb, tname);
    }
    for (line_no, text) in &observes {
        parse_observe(&mut p, &mut pb, &thread_names, text, *line_no)?;
    }
    let mut checks = Vec::new();
    for (line_no, text) in &checks_raw {
        checks.push(parse_check(text, *line_no)?);
    }
    Ok(ParsedLitmus {
        program: pb.build(),
        checks,
        locations: p.locations,
        promising,
        run_axiomatic,
    })
}

fn parse_val(tok: &str, line: usize) -> Result<Val, ParseError> {
    if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| err(line, format!("bad value {tok}: {e}")))
    } else {
        tok.parse::<u64>()
            .map_err(|e| err(line, format!("bad value {tok}: {e}")))
    }
}

fn parse_inst(
    p: &mut Parser,
    tb: &mut ThreadBuilder,
    text: &str,
    line: usize,
) -> Result<(), ParseError> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    // Label line: `name:`.
    if toks.len() == 1 && toks[0].ends_with(':') {
        tb.label(&toks[0][..toks[0].len() - 1]);
        return Ok(());
    }
    // `rN = ...` forms.
    if toks.len() >= 3 && toks[1] == "=" {
        let dst = parse_reg(toks[0], line)?;
        let mut rest: &[&str] = &toks[2..];
        match rest[0] {
            "load" | "ldar" => {
                let acq = rest[0] == "ldar";
                rest = &rest[1..];
                let addr = p.expr(&mut rest, line)?;
                tb.load(dst, addr, acq);
            }
            "ldrv" | "ldarv" => {
                let acq = rest[0] == "ldarv";
                rest = &rest[1..];
                let va = p.expr(&mut rest, line)?;
                tb.load_virt(dst, va, acq);
            }
            "ldxr" | "ldaxr" => {
                let acq = rest[0] == "ldaxr";
                rest = &rest[1..];
                let addr = p.expr(&mut rest, line)?;
                tb.load_ex(dst, addr, acq);
            }
            "stxr" | "stlxr" => {
                let rel = rest[0] == "stlxr";
                rest = &rest[1..];
                let addr = p.expr(&mut rest, line)?;
                let val = p.expr(&mut rest, line)?;
                tb.store_ex(dst, addr, val, rel);
            }
            op if op.starts_with("rmw") => {
                let acq = op.contains(".acq");
                let rel = op.contains(".rel");
                let kind = match rest.get(1) {
                    Some(&"add") => RmwOp::Add,
                    Some(&"swap") => RmwOp::Swap,
                    Some(&"and") => RmwOp::And,
                    Some(&"or") => RmwOp::Or,
                    other => {
                        return Err(err(line, format!("unknown rmw op {other:?}")));
                    }
                };
                rest = &rest[2..];
                let addr = p.expr(&mut rest, line)?;
                let rhs = p.expr(&mut rest, line)?;
                tb.rmw(dst, addr, kind, rhs, acq, rel);
            }
            _ => {
                let e = p.expr(&mut rest, line)?;
                tb.mov(dst, e);
            }
        }
        return Ok(());
    }
    match toks[0] {
        "strv" | "stlrv" => {
            let rel = toks[0] == "stlrv";
            let mut rest: &[&str] = &toks[1..];
            let va = p.expr(&mut rest, line)?;
            let val = p.expr(&mut rest, line)?;
            tb.store_virt(va, val, rel);
        }
        "tlbi" => {
            if toks.len() == 1 {
                tb.tlbi_all();
            } else {
                let mut rest: &[&str] = &toks[1..];
                let va = p.expr(&mut rest, line)?;
                tb.tlbi_va(va);
            }
        }
        "store" | "stlr" => {
            let rel = toks[0] == "stlr";
            let mut rest: &[&str] = &toks[1..];
            let addr = p.expr(&mut rest, line)?;
            let val = p.expr(&mut rest, line)?;
            tb.store(addr, val, rel);
        }
        "dmb" => {
            let kind = match toks.get(1) {
                Some(&"sy") | None => Fence::Sy,
                Some(&"ld") => Fence::Ld,
                Some(&"st") => Fence::St,
                other => return Err(err(line, format!("unknown dmb kind {other:?}"))),
            };
            tb.fence(kind);
        }
        "isb" => {
            tb.fence(Fence::Isb);
        }
        "beq" | "bne" | "blt" | "bge" => {
            let cond = match toks[0] {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                _ => Cond::Ge,
            };
            if toks.len() < 4 {
                return Err(err(line, "branch needs: <reg> <expr> <label>".into()));
            }
            let lhs = parse_reg(toks[1], line)?;
            let mut rest: &[&str] = &toks[2..toks.len() - 1];
            let rhs = p.expr(&mut rest, line)?;
            tb.br(cond, lhs, rhs, toks[toks.len() - 1]);
        }
        "b" => {
            let target = toks
                .get(1)
                .ok_or_else(|| err(line, "b needs a label".into()))?;
            tb.jmp(target);
        }
        "halt" => {
            tb.inst(Inst::Halt);
        }
        "panic" => {
            tb.inst(Inst::Panic);
        }
        "nop" => {
            tb.inst(Inst::Nop);
        }
        other => return Err(err(line, format!("unknown instruction `{other}`"))),
    }
    Ok(())
}

fn parse_observe(
    p: &mut Parser,
    pb: &mut ProgramBuilder,
    thread_names: &[String],
    text: &str,
    line: usize,
) -> Result<(), ParseError> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    // `observe mem <loc> as <name>` or `observe <thread>:rN as <name>`.
    match toks.get(1) {
        Some(&"mem") => {
            let loc = toks
                .get(2)
                .ok_or_else(|| err(line, "observe mem needs a location".into()))?;
            let as_name = toks
                .get(4)
                .ok_or_else(|| err(line, "observe needs `as <name>`".into()))?;
            let addr = p.loc(loc);
            pb.observe_mem(as_name, addr);
        }
        Some(spec) => {
            let (tname, reg) = spec
                .split_once(':')
                .ok_or_else(|| err(line, format!("bad observe spec `{spec}`")))?;
            let tid = thread_names
                .iter()
                .position(|n| n == tname)
                .ok_or_else(|| err(line, format!("unknown thread `{tname}`")))?;
            let reg = parse_reg(reg, line)?;
            let as_name = toks
                .get(3)
                .ok_or_else(|| err(line, "observe needs `as <name>`".into()))?;
            pb.observe_reg(as_name, tid, reg);
        }
        None => return Err(err(line, "empty observe".into())),
    }
    Ok(())
}

fn parse_check(text: &str, line: usize) -> Result<Check, ParseError> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    let model = match toks.get(1) {
        Some(&"arm") => CheckModel::Arm,
        Some(&"sc") => CheckModel::Sc,
        other => return Err(err(line, format!("check needs arm|sc, got {other:?}"))),
    };
    let allows = match toks.get(2) {
        Some(&"allows") => true,
        Some(&"forbids") => false,
        other => {
            return Err(err(
                line,
                format!("check needs allows|forbids, got {other:?}"),
            ));
        }
    };
    let mut bindings = Vec::new();
    for w in &toks[3..] {
        let (n, v) = w
            .split_once('=')
            .ok_or_else(|| err(line, format!("bad binding `{w}`")))?;
        bindings.push((n.to_string(), parse_val(v, line)?));
    }
    if bindings.is_empty() {
        return Err(err(line, "check needs at least one binding".into()));
    }
    Ok(Check {
        model,
        allows,
        bindings,
    })
}

impl ProgramBuilder {
    /// Adds an already-built thread (used by the parser).
    pub fn threads_push(&mut self, tb: ThreadBuilder, name: &str) {
        self.push_thread(tb.finish(name));
    }
}

// ---------------------------------------------------------------------------
// Pretty-printer: regenerate litmus source from a parsed test.
// ---------------------------------------------------------------------------

/// Renders a value the way the grammar reads it back.
fn fmt_val(v: u64) -> String {
    if v > 9 {
        format!("0x{v:x}")
    } else {
        v.to_string()
    }
}

/// Renders an expression in the parser's flat left-associative syntax.
///
/// Returns `None` for shapes the grammar cannot express (right-leaning
/// trees or operators outside `+ - * & |`).
fn fmt_expr(e: &Expr, rev: &BTreeMap<u64, &str>) -> Option<String> {
    match e {
        Expr::Imm(v) => Some(match rev.get(v) {
            Some(name) => (*name).to_string(),
            None => fmt_val(*v),
        }),
        Expr::Reg(r) => Some(format!("r{}", r.0)),
        Expr::Bin(op, lhs, rhs) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::And => "&",
                BinOp::Or => "|",
                _ => return None,
            };
            if matches!(**rhs, Expr::Bin(..)) {
                return None; // no parentheses in the grammar
            }
            Some(format!(
                "{} {sym} {}",
                fmt_expr(lhs, rev)?,
                fmt_expr(rhs, rev)?
            ))
        }
    }
}

/// Renders one instruction; `None` for IR-only forms (`push`/`pull`,
/// oracles, non-register branch operands).
fn fmt_inst(i: &Inst, rev: &BTreeMap<u64, &str>) -> Option<String> {
    let e = |x: &Expr| fmt_expr(x, rev);
    Some(match i {
        Inst::Mov { dst, src } => format!("r{} = {}", dst.0, e(src)?),
        Inst::Load { dst, addr, acq } => {
            format!(
                "r{} = {} {}",
                dst.0,
                if *acq { "ldar" } else { "load" },
                e(addr)?
            )
        }
        Inst::Store { val, addr, rel } => {
            format!(
                "{} {} {}",
                if *rel { "stlr" } else { "store" },
                e(addr)?,
                e(val)?
            )
        }
        Inst::LoadEx { dst, addr, acq } => {
            format!(
                "r{} = {} {}",
                dst.0,
                if *acq { "ldaxr" } else { "ldxr" },
                e(addr)?
            )
        }
        Inst::StoreEx {
            status,
            val,
            addr,
            rel,
        } => format!(
            "r{} = {} {} {}",
            status.0,
            if *rel { "stlxr" } else { "stxr" },
            e(addr)?,
            e(val)?
        ),
        Inst::Rmw {
            dst,
            addr,
            op,
            rhs,
            acq,
            rel,
        } => {
            let mut m = String::from("rmw");
            if *acq {
                m.push_str(".acq");
            }
            if *rel {
                m.push_str(".rel");
            }
            let kind = match op {
                RmwOp::Add => "add",
                RmwOp::Swap => "swap",
                RmwOp::And => "and",
                RmwOp::Or => "or",
            };
            format!("r{} = {m} {kind} {} {}", dst.0, e(addr)?, e(rhs)?)
        }
        Inst::Fence(Fence::Sy) => "dmb sy".into(),
        Inst::Fence(Fence::Ld) => "dmb ld".into(),
        Inst::Fence(Fence::St) => "dmb st".into(),
        Inst::Fence(Fence::Isb) => "isb".into(),
        Inst::Br {
            cond,
            lhs,
            rhs,
            target,
        } => {
            let Expr::Reg(r) = lhs else { return None };
            let m = match cond {
                Cond::Eq => "beq",
                Cond::Ne => "bne",
                Cond::Lt => "blt",
                Cond::Ge => "bge",
            };
            format!("{m} r{} {} L{target}", r.0, e(rhs)?)
        }
        Inst::Jmp(target) => format!("b L{target}"),
        Inst::LoadVirt { dst, va, acq } => {
            format!(
                "r{} = {} {}",
                dst.0,
                if *acq { "ldarv" } else { "ldrv" },
                e(va)?
            )
        }
        Inst::StoreVirt { val, va, rel } => {
            format!(
                "{} {} {}",
                if *rel { "stlrv" } else { "strv" },
                e(va)?,
                e(val)?
            )
        }
        Inst::Tlbi { va: None } => "tlbi".into(),
        Inst::Tlbi { va: Some(va) } => format!("tlbi {}", e(va)?),
        Inst::Halt => "halt".into(),
        Inst::Panic => "panic".into(),
        Inst::Nop => "nop".into(),
        Inst::Pull(_) | Inst::Push(_) | Inst::Oracle { .. } => return None,
    })
}

impl std::fmt::Display for ParsedLitmus {
    /// Pretty-prints the test back into the textual litmus grammar.
    ///
    /// The output re-parses to an identical [`Program`], check list, and
    /// location map: named init cells are emitted in address order so the
    /// parser's first-appearance address assignment reproduces
    /// [`ParsedLitmus::locations`] exactly. IR-only instructions that the
    /// grammar cannot express (ghost `push`/`pull`, data oracles) are
    /// rendered as `# unrepresentable` comments.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rev: BTreeMap<u64, &str> = self
            .locations
            .iter()
            .map(|(n, &a)| (a, n.as_str()))
            .collect();
        writeln!(f, "litmus {}", self.program.name)?;

        let dflt = PromisingConfig::default();
        let mut cfg = Vec::new();
        if self.promising.promises != dflt.promises {
            cfg.push(format!(
                "promises={}",
                if self.promising.promises { "on" } else { "off" }
            ));
        }
        if self.promising.value_cfg.max_rounds != dflt.value_cfg.max_rounds {
            cfg.push(format!("rounds={}", self.promising.value_cfg.max_rounds));
        }
        if self.promising.max_promises_per_thread != dflt.max_promises_per_thread {
            cfg.push(format!(
                "maxpromises={}",
                self.promising.max_promises_per_thread
            ));
        }
        if !self.run_axiomatic {
            cfg.push("axiomatic=off".into());
        }
        if !cfg.is_empty() {
            writeln!(f, "config {}", cfg.join(" "))?;
        }
        if let Some(vm) = &self.program.vm {
            writeln!(
                f,
                "vm levels={} root={} pagebits={} indexbits={}",
                vm.levels,
                fmt_val(vm.root),
                vm.page_bits,
                vm.index_bits
            )?;
        }

        // Named init cells first, in address order: the parser assigns
        // location addresses by first appearance, and init lines are
        // processed before thread bodies, so this ordering round-trips
        // the address map. Unnamed cells (initrange fills, raw-address
        // inits) follow as raw addresses, which never touch the map.
        let mut named = std::collections::BTreeSet::new();
        for (&addr, name) in &rev {
            if let Some(val) = self.program.init_mem.get(&addr) {
                writeln!(f, "init {name}={}", fmt_val(*val))?;
                named.insert(addr);
            }
        }
        for (&addr, &val) in &self.program.init_mem {
            if !named.contains(&addr) {
                writeln!(f, "init 0x{addr:x}={}", fmt_val(val))?;
            }
        }

        for t in &self.program.threads {
            writeln!(f)?;
            writeln!(f, "thread {}", t.name)?;
            let mut targets = std::collections::BTreeSet::new();
            for i in &t.code {
                match i {
                    Inst::Br { target, .. } => {
                        targets.insert(*target);
                    }
                    Inst::Jmp(target) => {
                        targets.insert(*target);
                    }
                    _ => {}
                }
            }
            for (pc, inst) in t.code.iter().enumerate() {
                if targets.contains(&pc) {
                    writeln!(f, "  L{pc}:")?;
                }
                match fmt_inst(inst, &rev) {
                    Some(s) => writeln!(f, "  {s}")?,
                    None => writeln!(f, "  # unrepresentable: {inst:?}")?,
                }
            }
            if targets.contains(&t.code.len()) {
                writeln!(f, "  L{}:", t.code.len())?;
            }
        }

        if !self.program.observables.is_empty() {
            writeln!(f)?;
        }
        for ob in &self.program.observables {
            match ob {
                crate::ir::Observable::Reg { name, tid, reg } => {
                    let tname = self
                        .program
                        .threads
                        .get(*tid)
                        .map(|t| t.name.as_str())
                        .unwrap_or("?");
                    writeln!(f, "observe {tname}:r{} as {name}", reg.0)?;
                }
                crate::ir::Observable::Mem { name, addr } => match rev.get(addr) {
                    Some(loc) => writeln!(f, "observe mem {loc} as {name}")?,
                    None => writeln!(f, "# unrepresentable observe: {ob:?}")?,
                },
            }
        }
        for c in &self.checks {
            let model = match c.model {
                CheckModel::Arm => "arm",
                CheckModel::Sc => "sc",
            };
            let verdict = if c.allows { "allows" } else { "forbids" };
            write!(f, "check {model} {verdict}")?;
            for (n, v) in &c.bindings {
                write!(f, " {n}={}", fmt_val(*v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promising::enumerate_promising;
    use crate::sc::enumerate_sc;

    const MP: &str = r#"
# Message passing, the classic.
litmus MP+dmb
init x=0 y=0

thread P0
  store x 1
  dmb sy
  store y 1

thread P1
  r0 = load y
  r1 = load x

observe P1:r0 as flag
observe P1:r1 as data
check arm allows flag=1 data=0
check sc forbids flag=1 data=0
"#;

    #[test]
    fn parse_and_run_mp() {
        let parsed = parse(MP).unwrap();
        assert_eq!(parsed.program.name, "MP+dmb");
        assert_eq!(parsed.program.threads.len(), 2);
        assert_eq!(parsed.checks.len(), 2);
        let rm = enumerate_promising(&parsed.program).unwrap();
        let sc = enumerate_sc(&parsed.program).unwrap();
        // dmb only on the writer: reader may still reorder — allowed.
        assert!(rm.contains_binding(&[("flag", 1), ("data", 0)]));
        assert!(!sc.contains_binding(&[("flag", 1), ("data", 0)]));
    }

    #[test]
    fn parse_exclusives_and_branches() {
        let text = r#"
litmus exclusive-inc
init c=0

thread P0
  retry:
  r0 = ldxr c
  r1 = stxr c r0 + 1
  bne r1 0 retry

thread P1
  retry:
  r0 = ldxr c
  r1 = stxr c r0 + 1
  bne r1 0 retry

observe mem c as c
check arm forbids c=1
check sc forbids c=1
"#;
        let parsed = parse(text).unwrap();
        let rm = enumerate_promising(&parsed.program).unwrap();
        assert!(!rm.is_empty());
        assert!(rm.iter().all(|o| o.get("c") == 2));
    }

    #[test]
    fn locations_get_distinct_addresses() {
        let parsed = parse(MP).unwrap();
        let x = parsed.locations["x"];
        let y = parsed.locations["y"];
        assert_ne!(x, y);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("litmus t\nthread P0\n  bogus foo\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));

        let e = parse("thread P0\n").unwrap_err();
        assert!(e.message.contains("litmus"));

        let e = parse("litmus t\n  store x 1\n").unwrap_err();
        assert!(e.message.contains("outside a thread"));
    }

    #[test]
    fn config_directives_apply() {
        let text = "litmus t\nconfig promises=off rounds=2 maxpromises=1\nthread P0\n  nop\n";
        let parsed = parse(text).unwrap();
        assert!(!parsed.promising.promises);
        assert_eq!(parsed.promising.value_cfg.max_rounds, 2);
        assert_eq!(parsed.promising.max_promises_per_thread, 1);
    }

    #[test]
    fn display_round_trips_mp() {
        let parsed = parse(MP).unwrap();
        let emitted = parsed.to_string();
        let again = parse(&emitted).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{emitted}"));
        assert_eq!(parsed.program, again.program, "emitted:\n{emitted}");
        assert_eq!(parsed.checks, again.checks);
        assert_eq!(parsed.locations, again.locations);
    }

    #[test]
    fn display_round_trips_branches_and_config() {
        let text = "litmus loopy\nconfig promises=off rounds=2\ninit c=0\n\
                    thread P0\n  top:\n  r0 = ldxr c\n  r1 = stxr c r0 + 1\n  bne r1 0 top\n\
                    observe mem c as c\ncheck sc allows c=2\n";
        let parsed = parse(text).unwrap();
        let emitted = parsed.to_string();
        let again = parse(&emitted).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{emitted}"));
        assert_eq!(parsed.program, again.program, "emitted:\n{emitted}");
        assert_eq!(parsed.checks, again.checks);
        assert!(!again.promising.promises);
        assert_eq!(again.promising.value_cfg.max_rounds, 2);
    }

    #[test]
    fn rmw_and_observe_mem() {
        let text = r#"
litmus rmw
init c=5
thread P0
  r0 = rmw.acq add c 3
observe P0:r0 as old
observe mem c as c
check sc allows old=5 c=8
"#;
        let parsed = parse(text).unwrap();
        let sc = enumerate_sc(&parsed.program).unwrap();
        assert!(sc.contains_binding(&[("old", 5), ("c", 8)]));
    }
}
