//! The sequentially consistent (SC) hardware model.
//!
//! SC is the interleaving model of Lamport: memory accesses of all CPUs
//! execute in some global sequential order that respects each CPU's program
//! order. [`enumerate_sc`] explores *every* interleaving (with state
//! memoization) and returns the set of observable outcomes — the right-hand
//! side of the wDRF theorem ("any behavior on RM is also observable on SC").
//!
//! Virtual accesses translate through a per-CPU TLB and, on a miss, a
//! page-table walk. Following the SC abstraction used by verification
//! frameworks (and by the paper's "on an SC model" arguments in Examples
//! 4-6), a walk is a *single atomic step* over the current page-table
//! snapshot; only the relaxed [`promising`](crate::promising) model walks
//! incrementally and can observe mixed old/new entries.

use std::collections::BTreeMap;

use vrm_explore::{digest128, Deps, ExploreConfig, Footprint, Sink, StateSpace};

use crate::ir::{Addr, Expr, Inst, Observable, Program, Val};
use crate::outcome::{Outcome, OutcomeSet, ThreadExit};
use crate::symm;
use crate::trace::{Event, EventKind, Trace};

/// Exploration limits for [`enumerate_sc`].
#[derive(Debug, Clone, Copy)]
pub struct ScConfig {
    /// Abort after visiting this many distinct states.
    pub max_states: usize,
    /// Worker threads for the exploration; `1` (the default, unless
    /// `VRM_JOBS` overrides it) selects the sequential reference driver.
    pub jobs: usize,
    /// Dynamic partial-order + thread-symmetry reduction (see
    /// `docs/REDUCTION.md`). On by default; the reduced walk visits
    /// fewer states but returns the identical outcome set. Turn off to
    /// run the exhaustive reference walk.
    pub reduction: bool,
}

impl Default for ScConfig {
    fn default() -> Self {
        Self {
            max_states: 4_000_000,
            jobs: ExploreConfig::jobs_from_env(),
            reduction: true,
        }
    }
}

/// Errors from exhaustive exploration. Budget exhaustion is *not* an
/// error any more — it truncates the enumeration, which callers see as
/// [`Completeness::Truncated`](vrm_explore::Completeness) on the
/// returned outcome set's stats. The legacy budget variants remain for
/// callers that still construct them at their own layer (e.g. schedule
/// step bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The state-space bound was exceeded (legacy: the engine now
    /// truncates instead of erroring; only caller-level step bounds
    /// still construct this).
    StateLimit(usize),
    /// A path exceeded a caller-level depth bound.
    DepthLimit(usize),
    /// The exploration outran a caller-level deadline.
    Deadline,
    /// A virtual access was executed without [`Program::vm`] being set.
    NoVmConfig,
    /// Every parallel exploration worker died to a panic.
    WorkerPanic(usize),
    /// A supplied VRMCKPT1 resume checkpoint failed validation.
    CorruptCheckpoint(vrm_explore::CheckpointFault),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::StateLimit(n) => write!(f, "state limit exceeded ({n} states)"),
            ExploreError::DepthLimit(d) => write!(f, "depth limit exceeded (depth {d})"),
            ExploreError::Deadline => write!(f, "exploration deadline exceeded"),
            ExploreError::NoVmConfig => write!(f, "virtual access without VmConfig"),
            ExploreError::WorkerPanic(n) => {
                write!(f, "exploration lost all {n} parallel workers")
            }
            ExploreError::CorruptCheckpoint(fault) => {
                write!(f, "corrupt VRMCKPT1 checkpoint: {fault}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<vrm_explore::ExploreError> for ExploreError {
    fn from(e: vrm_explore::ExploreError) -> Self {
        match e {
            vrm_explore::ExploreError::WorkerPanic(n) => ExploreError::WorkerPanic(n),
            vrm_explore::ExploreError::CorruptCheckpoint(f) => ExploreError::CorruptCheckpoint(f),
        }
    }
}

/// Run status of one modelled CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    Running,
    Done,
    Fault,
    Panic,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CpuState {
    pc: usize,
    regs: Vec<Val>,
    status: Status,
    /// Exclusive monitor: address and the write sequence observed by the
    /// last LoadEx.
    excl: Option<(Addr, u64)>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScState {
    mem: BTreeMap<Addr, Val>,
    cpus: Vec<CpuState>,
    /// Per-CPU TLB: virtual page number -> physical page base.
    tlbs: Vec<BTreeMap<Addr, Addr>>,
    /// Write sequence number per address (exclusive-monitor bookkeeping).
    wseq: BTreeMap<Addr, u64>,
}

impl ScState {
    fn initial(prog: &Program) -> Self {
        let nregs = prog.reg_count();
        ScState {
            mem: prog.init_mem.clone(),
            cpus: (0..prog.threads.len())
                .map(|_| CpuState {
                    pc: 0,
                    regs: vec![0; nregs],
                    status: Status::Running,
                    excl: None,
                })
                .collect(),
            tlbs: vec![BTreeMap::new(); prog.threads.len()],
            wseq: BTreeMap::new(),
        }
    }

    fn read(&self, addr: Addr, prog: &Program) -> Val {
        self.mem
            .get(&addr)
            .copied()
            .unwrap_or_else(|| prog.init_val(addr))
    }

    fn bump_wseq(&mut self, addr: Addr) {
        *self.wseq.entry(addr).or_insert(0) += 1;
    }

    fn all_finished(&self) -> bool {
        self.cpus.iter().all(|c| c.status != Status::Running)
    }

    fn outcome(&self, prog: &Program) -> Outcome {
        let values = prog
            .observables
            .iter()
            .map(|o| match o {
                Observable::Reg { name, tid, reg } => {
                    (name.clone(), self.cpus[*tid].regs[reg.0 as usize])
                }
                Observable::Mem { name, addr } => (name.clone(), self.read(*addr, prog)),
            })
            .collect();
        let exits = self
            .cpus
            .iter()
            .map(|c| match c.status {
                Status::Done => ThreadExit::Done,
                Status::Fault => ThreadExit::Fault,
                Status::Panic => ThreadExit::Panic,
                Status::Running => ThreadExit::Stuck,
            })
            .collect();
        Outcome { values, exits }
    }
}

fn eval(e: &Expr, regs: &[Val]) -> Val {
    match e {
        Expr::Imm(v) => *v,
        Expr::Reg(r) => regs[r.0 as usize],
        Expr::Bin(op, a, b) => {
            let (a, b) = (eval(a, regs), eval(b, regs));
            use crate::ir::BinOp::*;
            match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                And => a & b,
                Or => a | b,
                Xor => a ^ b,
                Mul => a.wrapping_mul(b),
                Shr => a.wrapping_shr(b as u32),
                Shl => a.wrapping_shl(b as u32),
                Eq => (a == b) as Val,
                Ne => (a != b) as Val,
                Lt => (a < b) as Val,
            }
        }
    }
}

/// Atomically translates `va` for CPU `tid`: TLB hit, or a full walk of
/// the current page-table snapshot (this is the SC model's abstraction of
/// translation — on SC a walk is a single step, unlike on RM hardware).
///
/// Returns `Ok(None)` on a translation fault (after emitting the events).
fn translate(
    st: &mut ScState,
    prog: &Program,
    tid: usize,
    va: Addr,
    pc: usize,
    trace: &mut Option<&mut Trace>,
) -> Result<Option<Addr>, ExploreError> {
    let vm = prog.vm.ok_or(ExploreError::NoVmConfig)?;
    let emit = |e: EventKind, trace: &mut Option<&mut Trace>| {
        if let Some(t) = trace.as_deref_mut() {
            t.push(Event { tid, pc, kind: e });
        }
    };
    let vpn = vm.vpn(va);
    if let Some(&page) = st.tlbs[tid].get(&vpn) {
        emit(EventKind::TlbHit { vpn, page }, trace);
        return Ok(Some(page + vm.offset(va)));
    }
    let mut table = vm.root;
    for level in 0..vm.levels {
        let cell = table + vm.index(va, level);
        let entry = st.read(cell, prog);
        emit(
            EventKind::WalkRead {
                va,
                addr: cell,
                val: entry,
                level,
            },
            trace,
        );
        if entry == 0 {
            emit(EventKind::Fault { va }, trace);
            return Ok(None);
        }
        table = entry;
    }
    st.tlbs[tid].insert(vpn, table);
    emit(EventKind::TlbFill { vpn, page: table }, trace);
    Ok(Some(table + vm.offset(va)))
}

/// Advances thread `tid` by one atomic SC step.
///
/// Returns `Ok(true)` if the thread took a step, `Ok(false)` if it is not
/// runnable. Emits trace events into `trace` if provided.
fn step(
    st: &mut ScState,
    prog: &Program,
    tid: usize,
    mut trace: Option<&mut Trace>,
) -> Result<bool, ExploreError> {
    let code = &prog.threads[tid].code;
    if st.cpus[tid].status != Status::Running {
        return Ok(false);
    }
    let emit = |e: EventKind, pc: usize, trace: &mut Option<&mut Trace>| {
        if let Some(t) = trace.as_deref_mut() {
            t.push(Event { tid, pc, kind: e });
        }
    };

    let cpu_pc = st.cpus[tid].pc;
    if cpu_pc >= code.len() {
        st.cpus[tid].status = Status::Done;
        return Ok(true);
    }
    let inst = code[cpu_pc].clone();
    let mut next_pc = cpu_pc + 1;
    match inst {
        Inst::Mov { dst, src } => {
            let v = eval(&src, &st.cpus[tid].regs);
            st.cpus[tid].regs[dst.0 as usize] = v;
        }
        Inst::Load { dst, addr, acq } => {
            let a = eval(&addr, &st.cpus[tid].regs);
            let v = st.read(a, prog);
            st.cpus[tid].regs[dst.0 as usize] = v;
            emit(
                EventKind::Read {
                    addr: a,
                    val: v,
                    acq,
                },
                cpu_pc,
                &mut trace,
            );
        }
        Inst::Store { val, addr, rel } => {
            let a = eval(&addr, &st.cpus[tid].regs);
            let v = eval(&val, &st.cpus[tid].regs);
            st.mem.insert(a, v);
            st.bump_wseq(a);
            emit(
                EventKind::Write {
                    addr: a,
                    val: v,
                    rel,
                },
                cpu_pc,
                &mut trace,
            );
        }
        Inst::Rmw {
            dst,
            addr,
            op,
            rhs,
            acq,
            rel,
        } => {
            let a = eval(&addr, &st.cpus[tid].regs);
            let r = eval(&rhs, &st.cpus[tid].regs);
            let old = st.read(a, prog);
            let new = op.apply(old, r);
            st.mem.insert(a, new);
            st.bump_wseq(a);
            st.cpus[tid].regs[dst.0 as usize] = old;
            emit(
                EventKind::Rmw {
                    addr: a,
                    old,
                    new,
                    acq,
                    rel,
                },
                cpu_pc,
                &mut trace,
            );
        }
        Inst::LoadEx { dst, addr, acq } => {
            let a = eval(&addr, &st.cpus[tid].regs);
            let v = st.read(a, prog);
            st.cpus[tid].regs[dst.0 as usize] = v;
            let seq = st.wseq.get(&a).copied().unwrap_or(0);
            st.cpus[tid].excl = Some((a, seq));
            emit(
                EventKind::Read {
                    addr: a,
                    val: v,
                    acq,
                },
                cpu_pc,
                &mut trace,
            );
        }
        Inst::StoreEx {
            status,
            val,
            addr,
            rel,
        } => {
            let a = eval(&addr, &st.cpus[tid].regs);
            let v = eval(&val, &st.cpus[tid].regs);
            let armed = st.cpus[tid].excl == Some((a, st.wseq.get(&a).copied().unwrap_or(0)));
            st.cpus[tid].excl = None;
            if armed {
                st.mem.insert(a, v);
                st.bump_wseq(a);
                st.cpus[tid].regs[status.0 as usize] = 0;
                emit(
                    EventKind::Write {
                        addr: a,
                        val: v,
                        rel,
                    },
                    cpu_pc,
                    &mut trace,
                );
            } else {
                st.cpus[tid].regs[status.0 as usize] = 1;
            }
        }
        Inst::Fence(f) => emit(EventKind::Fence(f), cpu_pc, &mut trace),
        Inst::Br {
            cond,
            lhs,
            rhs,
            target,
        } => {
            let l = eval(&lhs, &st.cpus[tid].regs);
            let r = eval(&rhs, &st.cpus[tid].regs);
            if cond.eval(l, r) {
                next_pc = target;
            }
        }
        Inst::Jmp(t) => next_pc = t,
        Inst::LoadVirt { dst, va, acq } => {
            let vaddr = eval(&va, &st.cpus[tid].regs);
            match translate(st, prog, tid, vaddr, cpu_pc, &mut trace)? {
                Some(pa) => {
                    let v = st.read(pa, prog);
                    st.cpus[tid].regs[dst.0 as usize] = v;
                    emit(
                        EventKind::Read {
                            addr: pa,
                            val: v,
                            acq,
                        },
                        cpu_pc,
                        &mut trace,
                    );
                }
                None => {
                    st.cpus[tid].status = Status::Fault;
                    return Ok(true);
                }
            }
        }
        Inst::StoreVirt { val, va, rel } => {
            let vaddr = eval(&va, &st.cpus[tid].regs);
            let v = eval(&val, &st.cpus[tid].regs);
            match translate(st, prog, tid, vaddr, cpu_pc, &mut trace)? {
                Some(pa) => {
                    st.mem.insert(pa, v);
                    st.bump_wseq(pa);
                    emit(
                        EventKind::Write {
                            addr: pa,
                            val: v,
                            rel,
                        },
                        cpu_pc,
                        &mut trace,
                    );
                }
                None => {
                    st.cpus[tid].status = Status::Fault;
                    return Ok(true);
                }
            }
        }
        Inst::Tlbi { va } => {
            let vm = prog.vm.ok_or(ExploreError::NoVmConfig)?;
            let vpn = va.map(|e| vm.vpn(eval(&e, &st.cpus[tid].regs)));
            for tlb in &mut st.tlbs {
                match vpn {
                    Some(p) => {
                        tlb.remove(&p);
                    }
                    None => tlb.clear(),
                }
            }
            emit(EventKind::Tlbi { vpn }, cpu_pc, &mut trace);
        }
        Inst::Pull(locs) => {
            let locs = locs.iter().map(|e| eval(e, &st.cpus[tid].regs)).collect();
            emit(EventKind::Pull { locs }, cpu_pc, &mut trace);
        }
        Inst::Push(locs) => {
            let locs = locs.iter().map(|e| eval(e, &st.cpus[tid].regs)).collect();
            emit(EventKind::Push { locs }, cpu_pc, &mut trace);
        }
        Inst::Oracle { dst, choices } => {
            // Deterministic contexts (run_schedule) take the first choice;
            // exhaustive enumeration branches over all choices separately.
            st.cpus[tid].regs[dst.0 as usize] = choices[0];
        }
        Inst::Halt => {
            st.cpus[tid].status = Status::Done;
            return Ok(true);
        }
        Inst::Panic => {
            emit(EventKind::Panic, cpu_pc, &mut trace);
            st.cpus[tid].status = Status::Panic;
            return Ok(true);
        }
        Inst::Nop => {}
    }
    st.cpus[tid].pc = next_pc;
    Ok(true)
}

/// Exhaustively enumerates every SC interleaving of `prog`.
///
/// Returns the set of observable outcomes. Livelocked branches (states whose
/// successors were all already visited without any thread finishing) yield
/// no outcome, matching the paper's treatment of execution *results*.
///
/// # Examples
///
/// ```
/// use vrm_memmodel::builder::ProgramBuilder;
/// use vrm_memmodel::ir::Reg;
/// use vrm_memmodel::sc::enumerate_sc;
///
/// // Store buffering: on SC at least one thread must see the other's write.
/// let (x, y) = (0x10, 0x20);
/// let mut p = ProgramBuilder::new("SB");
/// p.thread("T0", |t| {
///     t.store(x, 1, false);
///     t.load(Reg(0), y, false);
/// });
/// p.thread("T1", |t| {
///     t.store(y, 1, false);
///     t.load(Reg(0), x, false);
/// });
/// p.observe_reg("r0", 0, Reg(0));
/// p.observe_reg("r1", 1, Reg(0));
/// let outcomes = enumerate_sc(&p.build()).unwrap();
/// assert!(!outcomes.contains_binding(&[("r0", 0), ("r1", 0)]));
/// ```
pub fn enumerate_sc(prog: &Program) -> Result<OutcomeSet, ExploreError> {
    enumerate_sc_with(prog, &ScConfig::default())
}

/// The SC interleaving space as seen by the exploration engine: one
/// state per memoized machine configuration, expansion steps each
/// runnable thread (forking over `Oracle` choices), and finished states
/// emit their [`Outcome`]. The [`Deps`] implementation additionally
/// names per-thread footprints and the program's thread symmetry, which
/// is what the reduced drivers cut interleavings with.
struct ScSpace<'a> {
    prog: &'a Program,
    /// Non-identity tid permutations of the program's symmetry group
    /// (threads with identical code); empty when there is no symmetry.
    perms: Vec<Vec<usize>>,
    /// Static per-`[tid][pc]` future footprints: everything thread
    /// `tid` might still read or write from `pc` onward.
    futures: Vec<Vec<Footprint>>,
}

/// Applies a tid permutation to an SC state: per-thread slots (cpu
/// state, TLB) move with their thread; shared memory and the write
/// sequence are global and stay put.
fn permute_sc(st: &ScState, perm: &[usize]) -> ScState {
    let mut img = st.clone();
    for (old, &new) in perm.iter().enumerate() {
        img.cpus[new] = st.cpus[old].clone();
        img.tlbs[new] = st.tlbs[old].clone();
    }
    img
}

impl<'a> ScSpace<'a> {
    fn new(prog: &'a Program) -> Self {
        let groups = symm::symmetric_groups(prog);
        Self::with_groups(prog, &groups)
    }

    fn with_groups(prog: &'a Program, groups: &[Vec<usize>]) -> Self {
        ScSpace {
            prog,
            perms: symm::group_permutations(prog.threads.len(), groups),
            futures: prog
                .threads
                .iter()
                .map(|t| symm::thread_futures(&t.code, false))
                .collect(),
        }
    }
}

impl StateSpace for ScSpace<'_> {
    type State = ScState;
    type Emit = Result<Outcome, ExploreError>;

    fn initial(&self) -> Vec<ScState> {
        vec![ScState::initial(self.prog)]
    }

    fn expand(&self, st: &ScState, sink: &mut Sink<ScState, Self::Emit>) {
        if st.all_finished() {
            sink.emit(Ok(st.outcome(self.prog)));
            return;
        }
        for tid in 0..self.prog.threads.len() {
            self.expand_proc(st, tid, sink);
        }
    }
}

impl Deps for ScSpace<'_> {
    fn enabled(&self, st: &ScState) -> Vec<usize> {
        st.cpus
            .iter()
            .enumerate()
            .filter(|(_, c)| c.status == Status::Running)
            .map(|(tid, _)| tid)
            .collect()
    }

    fn expand_proc(&self, st: &ScState, tid: usize, sink: &mut Sink<ScState, Self::Emit>) {
        let prog = self.prog;
        if st.cpus[tid].status != Status::Running {
            return;
        }
        // Oracle choices fork the exploration.
        let pc = st.cpus[tid].pc;
        let code = &prog.threads[tid].code;
        if pc < code.len() {
            if let Inst::Oracle { dst, choices } = &code[pc] {
                for &v in choices {
                    let mut next = st.clone();
                    next.cpus[tid].regs[dst.0 as usize] = v;
                    next.cpus[tid].pc += 1;
                    sink.push(next);
                }
                return;
            }
        }
        let mut next = st.clone();
        match step(&mut next, prog, tid, None) {
            Ok(_) => sink.push(next),
            Err(e) => sink.emit(Err(e)),
        }
    }

    fn now(&self, st: &ScState, tid: usize) -> Footprint {
        let cpu = &st.cpus[tid];
        if cpu.status != Status::Running {
            return Footprint::empty();
        }
        let code = &self.prog.threads[tid].code;
        if cpu.pc >= code.len() {
            // Done-step: flips the thread's own status, touches nothing.
            return Footprint::empty();
        }
        let mut fp = Footprint::empty();
        match &code[cpu.pc] {
            Inst::Load { addr, .. } | Inst::LoadEx { addr, .. } => {
                fp.read(eval(addr, &cpu.regs));
            }
            Inst::Store { addr, .. } => {
                fp.write(eval(addr, &cpu.regs));
            }
            Inst::StoreEx { addr, .. } | Inst::Rmw { addr, .. } => {
                let a = eval(addr, &cpu.regs);
                fp.read(a);
                fp.write(a);
            }
            Inst::LoadVirt { .. } | Inst::StoreVirt { .. } | Inst::Tlbi { .. } => {
                return Footprint::top();
            }
            _ => {}
        }
        fp
    }

    fn future(&self, st: &ScState, tid: usize) -> Footprint {
        let cpu = &st.cpus[tid];
        if cpu.status != Status::Running {
            return Footprint::empty();
        }
        self.futures[tid].get(cpu.pc).cloned().unwrap_or_default()
    }

    fn canon(&self, st: &ScState) -> Option<ScState> {
        if self.perms.is_empty() {
            return None;
        }
        let mut best: Option<(u128, ScState)> = None;
        let d0 = digest128(st);
        for perm in &self.perms {
            let img = permute_sc(st, perm);
            let d = digest128(&img);
            if d < best.as_ref().map_or(d0, |(bd, _)| *bd) {
                best = Some((d, img));
            }
        }
        best.map(|(_, img)| img)
    }

    fn orbit(&self, st: &ScState) -> Vec<ScState> {
        self.perms.iter().map(|p| permute_sc(st, p)).collect()
    }
}

/// [`enumerate_sc`] with explicit limits.
///
/// Exceeding `max_states` no longer errors: the returned set holds the
/// outcomes found so far and its `stats.completeness` records the
/// truncation, which the theorem layer turns into an `Unknown` verdict.
/// If every parallel worker dies (a bug in the model, or injected
/// faults overwhelming containment) the enumeration is retried once on
/// the sequential driver, which cannot lose workers.
pub fn enumerate_sc_with(prog: &Program, cfg: &ScConfig) -> Result<OutcomeSet, ExploreError> {
    let _span = vrm_obs::span!("enumerate.sc", prog = prog.name.as_str(), jobs = cfg.jobs);
    let space = ScSpace::new(prog);
    collect_sc(&space, cfg)
}

#[doc(hidden)]
/// Campaign-mutant hook (`canon-identity`): the reduced SC enumeration
/// with every thread forced into one symmetry group regardless of code.
/// Exists so the mutation campaign can prove an unsound over-prune
/// flips a corpus verdict; not part of the public API.
pub fn enumerate_sc_all_symmetric(
    prog: &Program,
    cfg: &ScConfig,
) -> Result<OutcomeSet, ExploreError> {
    let groups = symm::all_threads_one_group(prog);
    let space = ScSpace::with_groups(prog, &groups);
    collect_sc(
        &space,
        &ScConfig {
            reduction: true,
            ..*cfg
        },
    )
}

#[doc(hidden)]
/// Campaign-mutant hook (`dpor-sleep-set-never-blocks`): the reduced SC
/// enumeration with sleep-set pruning disabled — every sibling process
/// stays awake, so the sequential walk re-derives interleavings the
/// sleep sets would have cut. Outcome-equivalent by construction, but
/// strictly larger on any program with independent steps; the campaign
/// kills the mutant by its deterministic popped-count mismatch against
/// the sound reduced walk. Not part of the public API.
pub fn enumerate_sc_sleepless(prog: &Program, cfg: &ScConfig) -> Result<OutcomeSet, ExploreError> {
    let space = ScSpace::new(prog);
    let ecfg = ExploreConfig::with_max_states(cfg.max_states).jobs(1);
    let exploration = vrm_explore::explore_reduced_sleepless(&space, &ecfg)?;
    let mut outcomes = OutcomeSet::new();
    for emit in exploration.emits {
        outcomes.insert(emit?);
    }
    outcomes.stats = exploration.stats;
    Ok(outcomes)
}

/// Runs the exploration (reduced or reference, per
/// [`ScConfig::reduction`]) and folds emissions into an [`OutcomeSet`].
/// If every parallel worker dies the enumeration is retried once on the
/// sequential driver, which cannot lose workers.
fn collect_sc(space: &ScSpace<'_>, cfg: &ScConfig) -> Result<OutcomeSet, ExploreError> {
    let ecfg = ExploreConfig::with_max_states(cfg.max_states).jobs(cfg.jobs);
    let run = |ecfg: &ExploreConfig| {
        if cfg.reduction {
            vrm_explore::explore_reduced(space, ecfg)
        } else {
            vrm_explore::explore(space, ecfg)
        }
    };
    let exploration = match run(&ecfg) {
        Ok(r) => r,
        Err(vrm_explore::ExploreError::WorkerPanic(_)) => run(&ecfg.jobs(1))?,
        Err(e) => return Err(e.into()),
    };
    let mut outcomes = OutcomeSet::new();
    for emit in exploration.emits {
        outcomes.insert(emit?);
    }
    outcomes.stats = exploration.stats;
    Ok(outcomes)
}

/// Runs one SC execution under an explicit schedule, returning the outcome
/// and the full event trace.
///
/// `schedule` lists thread ids; each entry advances that thread by one
/// atomic step (entries for finished threads are skipped). After the
/// schedule is exhausted, remaining threads run round-robin until everything
/// finishes or `max_steps` is hit.
pub fn run_schedule(
    prog: &Program,
    schedule: &[usize],
    max_steps: usize,
) -> Result<(Outcome, Trace), ExploreError> {
    let mut st = ScState::initial(prog);
    let mut trace = Trace::new();
    for &tid in schedule {
        if st.all_finished() {
            break;
        }
        step(&mut st, prog, tid, Some(&mut trace))?;
    }
    let mut steps = 0usize;
    'outer: while !st.all_finished() {
        let mut progressed = false;
        for tid in 0..prog.threads.len() {
            if st.cpus[tid].status == Status::Running {
                step(&mut st, prog, tid, Some(&mut trace))?;
                progressed = true;
                steps += 1;
                if steps > max_steps {
                    break 'outer;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    Ok((st.outcome(prog), trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{Cond, Reg, VmConfig};

    fn sb() -> Program {
        let (x, y) = (0x10, 0x20);
        let mut p = ProgramBuilder::new("SB");
        p.thread("T0", |t| {
            t.store(x, 1u64, false);
            t.load(Reg(0), y, false);
        });
        p.thread("T1", |t| {
            t.store(y, 1u64, false);
            t.load(Reg(0), x, false);
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(0));
        p.build()
    }

    #[test]
    fn sb_on_sc_forbids_both_zero() {
        let o = enumerate_sc(&sb()).unwrap();
        assert!(o.contains_binding(&[("r0", 1), ("r1", 1)]));
        assert!(o.contains_binding(&[("r0", 0), ("r1", 1)]));
        assert!(o.contains_binding(&[("r0", 1), ("r1", 0)]));
        assert!(!o.contains_binding(&[("r0", 0), ("r1", 0)]));
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn message_passing_on_sc() {
        let (x, flag) = (0x10, 0x20);
        let mut p = ProgramBuilder::new("MP");
        p.thread("T0", |t| {
            t.store(x, 42u64, false);
            t.store(flag, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), flag, false);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("flag", 1, Reg(0));
        p.observe_reg("data", 1, Reg(1));
        let o = enumerate_sc(&p.build()).unwrap();
        // flag=1 implies data=42 on SC.
        assert!(!o.contains_binding(&[("flag", 1), ("data", 0)]));
        assert!(o.contains_binding(&[("flag", 1), ("data", 42)]));
        assert!(o.contains_binding(&[("flag", 0), ("data", 0)]));
    }

    #[test]
    fn spin_loop_terminates_exploration() {
        let flag = 0x10;
        let mut p = ProgramBuilder::new("spin");
        p.thread("waiter", |t| {
            t.label("spin");
            t.load(Reg(0), flag, false);
            t.br(Cond::Ne, Reg(0), 1u64, "spin");
            t.mov(Reg(1), 99u64);
        });
        p.thread("setter", |t| {
            t.store(flag, 1u64, false);
        });
        p.observe_reg("r1", 0, Reg(1));
        let o = enumerate_sc(&p.build()).unwrap();
        // The only completed outcome has the waiter released.
        assert_eq!(o.len(), 1);
        assert!(o.contains_binding(&[("r1", 99)]));
    }

    #[test]
    fn rmw_is_atomic() {
        // Two increments always sum to 2 on SC thanks to RMW atomicity.
        let ctr = 0x10;
        let mut p = ProgramBuilder::new("inc2");
        for _ in 0..2 {
            p.thread("inc", |t| {
                t.fetch_and_inc_acq(Reg(0), ctr);
            });
        }
        p.observe_mem("ctr", ctr);
        p.observe_reg("t0", 0, Reg(0));
        p.observe_reg("t1", 1, Reg(0));
        let o = enumerate_sc(&p.build()).unwrap();
        assert_eq!(o.len(), 2); // tickets 0/1 drawn in either order
        assert!(o.iter().all(|oc| oc.get("ctr") == 2));
        assert!(o.iter().all(|oc| oc.get("t0") != oc.get("t1")));
    }

    #[test]
    fn virtual_load_walks_and_faults() {
        // 1-level table at 0x100; page 0x200 holds 7 at offset 3.
        let vm = VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        };
        let mut p = ProgramBuilder::new("vm");
        p.vm(vm);
        p.init(0x100, 0x200); // vpn 0 -> page 0x200
        p.init(0x203, 7);
        p.thread("T0", |t| {
            t.load_virt(Reg(0), 0x3u64, false); // va 3: vpn 0 offset 3
            t.load_virt(Reg(1), 0x13u64, false); // vpn 1: unmapped -> fault
        });
        p.observe_reg("r0", 0, Reg(0));
        let o = enumerate_sc(&p.build()).unwrap();
        assert_eq!(o.len(), 1);
        let oc = o.iter().next().unwrap();
        assert_eq!(oc.get("r0"), 7);
        assert_eq!(oc.exits[0], ThreadExit::Fault);
    }

    #[test]
    fn tlb_caches_translation_and_tlbi_flushes() {
        let vm = VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        };
        let mut p = ProgramBuilder::new("tlb");
        p.vm(vm);
        p.init(0x100, 0x200);
        p.init(0x200, 5);
        p.thread("T0", |t| {
            t.load_virt(Reg(0), 0u64, false); // walk, fill TLB
            t.store(0x100u64, 0u64, false); // unmap in the page table
            t.load_virt(Reg(1), 0u64, false); // TLB hit: stale OK
            t.tlbi_all();
            t.load_virt(Reg(2), 0u64, false); // walk again: fault
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 0, Reg(1));
        let o = enumerate_sc(&p.build()).unwrap();
        let oc = o.iter().next().unwrap();
        assert_eq!(oc.get("r0"), 5);
        assert_eq!(oc.get("r1"), 5); // served from stale TLB
        assert_eq!(oc.exits[0], ThreadExit::Fault);
    }

    #[test]
    fn run_schedule_produces_trace() {
        let p = sb();
        let (outcome, trace) = run_schedule(&p, &[0, 0, 1, 1], 100).unwrap();
        assert_eq!(outcome.get("r0"), 0);
        assert_eq!(outcome.get("r1"), 1);
        assert_eq!(trace.iter().filter(|e| e.is_write()).count(), 2);
        assert_eq!(trace.iter().filter(|e| e.is_read()).count(), 2);
    }

    #[test]
    fn panic_is_recorded() {
        let mut p = ProgramBuilder::new("panic");
        p.thread("T0", |t| {
            t.inst(Inst::Panic);
        });
        let o = enumerate_sc(&p.build()).unwrap();
        assert_eq!(o.iter().next().unwrap().exits[0], ThreadExit::Panic);
    }
}
