//! Seeded litmus-test generator: critical cycles and page-table-walk
//! shapes, with a shape-level shrinker.
//!
//! The hand-curated corpus under `litmus/` is only as trustworthy as
//! the shapes someone thought to write down. This module turns the
//! checkers into a *standing differential fuzzer*: a deterministic,
//! seeded generator enumerates the classic critical-cycle family
//! (diy-style cycles of `po`/`rf`/`co`/`fr` edges over 2–4 threads,
//! decorated with fences, acquire/release, and address/control
//! dependencies) plus relaxed-virtual-memory walk shapes
//! (break-before-make, TLBI placement, stale-walk races after
//! Simner et al.), and every generated program is judged by all three
//! models under the usual conformance lattice.
//!
//! ## Shape grammar
//!
//! A [`CycleShape`] is a cycle of `T ∈ [2, 4]` threads over locations
//! `x0..x{T-1}`. Thread `i` has two events: `A_i` on `x_i` and `B_i`
//! on `x_{(i+1) mod T}`, so consecutive threads communicate on a
//! shared location. The communication edge from `B_i` to `A_{i+1}`
//! picks the event kinds:
//!
//! | edge | `B_i` | `A_{i+1}` | reading |
//! |------|-------|-----------|---------|
//! | `Rf` | write | read      | read-from |
//! | `Co` | write | write     | coherence |
//! | `Fr` | read  | write     | from-read |
//!
//! The po edge `A_i → B_i` inside each thread carries one [`Link`]
//! decoration (nothing, a `dmb`, an address or control dependency),
//! and read/write events may additionally be acquire/release. With
//! all-`Po` links the cycle is usually Arm-allowed; with strong
//! decorations everywhere it is forbidden — the generator sweeps the
//! space in between, which is exactly where fence-placement bugs live.
//!
//! Programs are emitted as litmus *text* and re-parsed, so every
//! generated [`ParsedLitmus`] round-trips through the grammar by
//! construction (`tests/parser_roundtrip.rs` pins this with a
//! proptest).
//!
//! ## Determinism and reproduction
//!
//! Everything is a pure function of the seed (a SplitMix64 stream):
//! `generate(seed, cfg)` always yields the same program, and the
//! program's *name* embeds the seed, so a dumped counterexample names
//! its own reproduction recipe. See `docs/GENERATOR.md`.
//!
//! ## Mutant switches
//!
//! [`GenConfig::po_cycle_free`] and [`GenConfig::recheck_shrinks`]
//! exist for the mutation campaign (like `ServeConfig`'s switches):
//! production code never flips them, and the campaign proves that the
//! differential fuzzer would notice if someone did.

use crate::parser::{parse, ParsedLitmus};

/// SplitMix64: the small deterministic stream every seeded component
/// in this workspace uses (same mixer as the vendored proptest rng).
#[derive(Debug, Clone)]
pub struct GenRng(u64);

impl GenRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> GenRng {
        GenRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// `true` with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// The communication edge between consecutive threads of the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommEdge {
    /// Write → read (read-from candidate).
    Rf,
    /// Write → write (coherence).
    Co,
    /// Read → write (from-read).
    Fr,
}

impl CommEdge {
    /// Whether the edge's *source* event (`B_i`) is a write.
    pub fn source_is_write(&self) -> bool {
        !matches!(self, CommEdge::Fr)
    }

    /// Whether the edge's *target* event (`A_{i+1}`) is a write.
    pub fn target_is_write(&self) -> bool {
        !matches!(self, CommEdge::Rf)
    }
}

/// The decoration on the po edge between a thread's two events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// Bare program order.
    Po,
    /// `dmb sy` between the events.
    DmbSy,
    /// `dmb ld` (requires the first event to be a read).
    DmbLd,
    /// `dmb st` (requires both events to be writes).
    DmbSt,
    /// False address dependency `r * 0 + loc` from the first event's
    /// loaded value into the second event's address (first must read).
    Addr,
    /// Control dependency: a branch on the first event's loaded value
    /// in front of the second event (first must read).
    Ctrl,
    /// Control dependency plus `isb` (first must read).
    CtrlIsb,
}

/// One thread of a [`CycleShape`]: the po-edge decoration plus the
/// optional acquire/release strength on its two events. Event *kinds*
/// (read vs write) are always derived from the neighbouring edges, so
/// a shape stays well-formed under any shrinking step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadShape {
    /// Decoration on the po edge `A_i → B_i`.
    pub link: Link,
    /// First event is a load-acquire (`ldar`); only meaningful when
    /// the first event is a read.
    pub first_acq: bool,
    /// Second event is a store-release (`stlr`); only meaningful when
    /// the second event is a write.
    pub second_rel: bool,
}

/// A sampled critical cycle: the communication edges plus per-thread
/// decorations, and the seed it came from (for provenance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleShape {
    /// `edges[i]` connects thread `i`'s second event to thread
    /// `(i+1) % T`'s first event on location `x_{(i+1) % T}`.
    pub edges: Vec<CommEdge>,
    /// Per-thread decorations (`threads.len() == edges.len()`).
    pub threads: Vec<ThreadShape>,
    /// The seed this shape was sampled from; embedded in the emitted
    /// program's name so counterexamples are self-describing.
    pub seed: u64,
}

/// Generator policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Smallest cycle sampled (≥ 2).
    pub min_threads: usize,
    /// Largest cycle sampled (≤ 4 keeps enumerations cheap).
    pub max_threads: usize,
    /// **Always `false` in production.** `true` is the
    /// `gen-po-cycle-free` campaign mutant: each thread's second event
    /// targets a private location, so no critical cycle ever forms and
    /// the generated corpus can never exhibit a relaxed-only outcome.
    pub po_cycle_free: bool,
    /// **Always `true` in production.** `false` is the
    /// `gen-shrinker-loses-disagreement` campaign mutant: the shrinker
    /// applies every simplification without re-checking the failure
    /// predicate, so the minimized program can silently stop
    /// exhibiting the disagreement it was meant to witness.
    pub recheck_shrinks: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_threads: 2,
            max_threads: 4,
            po_cycle_free: false,
            recheck_shrinks: true,
        }
    }
}

impl CycleShape {
    /// Thread count of the cycle (edge count — event kinds derive
    /// from edges, so edges are the authoritative arity even while a
    /// shape is mid-construction).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the shape has no threads (never produced by
    /// [`sample_cycle`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether thread `i`'s first event (`A_i`) is a read: the target
    /// kind of the edge arriving from thread `i-1`.
    pub fn first_is_read(&self, i: usize) -> bool {
        let t = self.len();
        !self.edges[(i + t - 1) % t].target_is_write()
    }

    /// Whether thread `i`'s second event (`B_i`) is a write: the
    /// source kind of the edge leaving toward thread `i+1`.
    pub fn second_is_write(&self, i: usize) -> bool {
        self.edges[i].source_is_write()
    }

    /// The decoration actually in force on thread `i` after
    /// canonicalization: decorations that need a leading read (or a
    /// write/write pair for `dmb st`) degrade to [`Link::Po`] when the
    /// surrounding edges do not provide one. This keeps `render` total
    /// over arbitrary shapes, which is what lets the shrinker drop
    /// threads without re-validating decorations by hand.
    pub fn effective_link(&self, i: usize) -> Link {
        let link = self.threads[i].link;
        let first_read = self.first_is_read(i);
        let both_write = !first_read && self.second_is_write(i);
        match link {
            Link::Addr | Link::Ctrl | Link::CtrlIsb | Link::DmbLd if !first_read => Link::Po,
            Link::DmbSt if !both_write => Link::Po,
            l => l,
        }
    }
}

/// Samples a critical cycle from the seed. Pure: the same seed and
/// config always produce the same shape.
pub fn sample_cycle(seed: u64, cfg: &GenConfig) -> CycleShape {
    let mut rng = GenRng::new(seed);
    let lo = cfg.min_threads.max(2) as u64;
    let hi = (cfg.max_threads.max(cfg.min_threads)) as u64;
    let t = (lo + rng.below(hi - lo + 1)) as usize;
    let edges: Vec<CommEdge> = (0..t)
        .map(|_| match rng.below(3) {
            0 => CommEdge::Rf,
            1 => CommEdge::Co,
            _ => CommEdge::Fr,
        })
        .collect();
    let mut shape = CycleShape {
        edges,
        threads: Vec::with_capacity(t),
        seed,
    };
    for i in 0..t {
        let first_read = shape.first_is_read(i);
        let second_write = shape.second_is_write(i);
        // Valid decorations for this thread's event pair. `Po` is
        // listed twice so bare program order stays the most common
        // link — relaxed shapes are the interesting ones.
        let mut links = vec![Link::Po, Link::Po, Link::DmbSy];
        if first_read {
            links.extend([Link::DmbLd, Link::Addr, Link::Ctrl, Link::CtrlIsb]);
        }
        if !first_read && second_write {
            links.push(Link::DmbSt);
        }
        let link = links[rng.below(links.len() as u64) as usize];
        shape.threads.push(ThreadShape {
            link,
            first_acq: first_read && rng.chance(1, 3),
            second_rel: second_write && rng.chance(1, 3),
        });
    }
    shape
}

/// Renders a shape to litmus source text. Values are fixed (`A`-events
/// write 1, `B`-events write 2), every read is observed, and every
/// coherence-contended location's final value is observed.
pub fn render_text(shape: &CycleShape, cfg: &GenConfig) -> String {
    let t = shape.len();
    let mut out = String::new();
    out.push_str(&format!("litmus gen-cc{t}-s{:x}\n", shape.seed));
    // Full promise search on 4-thread cycles routinely needs >200k
    // states (tens of seconds per program). 4-thread shapes run the
    // promise-free fast path instead and are judged by the subset leg
    // of the conformance lattice; the exact promising == axiomatic
    // equality is checked on the tractable 2–3 thread shapes.
    if t >= 4 {
        out.push_str("config promises=off\n");
    }
    // Named locations in first-appearance order: x0..x{t-1}, then any
    // private locations the po-cycle-free mutant substitutes.
    let mut init = String::from("init");
    for j in 0..t {
        init.push_str(&format!(" x{j}=0"));
    }
    if cfg.po_cycle_free {
        for j in 0..t {
            if shape.edges[j].source_is_write() || !shape.edges[j].target_is_write() {
                init.push_str(&format!(" y{j}=0"));
            }
        }
    }
    out.push_str(&init);
    out.push('\n');

    let mut observes = Vec::new();
    for i in 0..t {
        let first_read = shape.first_is_read(i);
        let second_write = shape.second_is_write(i);
        let link = shape.effective_link(i);
        let a_loc = format!("x{i}");
        // The mutant breaks the cycle here: B_i lands on a private
        // location nobody else touches, so no communication edge ever
        // closes and every outcome is SC-explainable.
        let b_loc = if cfg.po_cycle_free {
            format!("y{i}")
        } else {
            format!("x{}", (i + 1) % t)
        };
        out.push_str(&format!("\nthread P{i}\n"));
        // A_i on x_i.
        if first_read {
            let op = if shape.threads[i].first_acq {
                "ldar"
            } else {
                "load"
            };
            out.push_str(&format!("  r0 = {op} {a_loc}\n"));
            observes.push(format!("observe P{i}:r0 as p{i}r0"));
        } else {
            out.push_str(&format!("  store {a_loc} 1\n"));
        }
        // The po-edge decoration.
        let b_addr = match link {
            Link::DmbSy => {
                out.push_str("  dmb sy\n");
                b_loc.clone()
            }
            Link::DmbLd => {
                out.push_str("  dmb ld\n");
                b_loc.clone()
            }
            Link::DmbSt => {
                out.push_str("  dmb st\n");
                b_loc.clone()
            }
            Link::Addr => format!("r0 * 0 + {b_loc}"),
            Link::Ctrl | Link::CtrlIsb => {
                out.push_str("  beq r0 r0 skip\n  skip:\n");
                if link == Link::CtrlIsb {
                    out.push_str("  isb\n");
                }
                b_loc.clone()
            }
            Link::Po => b_loc.clone(),
        };
        // B_i on x_{i+1}.
        if second_write {
            let op = if shape.threads[i].second_rel {
                "stlr"
            } else {
                "store"
            };
            out.push_str(&format!("  {op} {b_addr} 2\n"));
        } else {
            let op = if shape.threads[i].first_acq && !first_read {
                // Unreachable by construction (acq only on reads),
                // kept as a plain load for robustness.
                "load"
            } else {
                "load"
            };
            out.push_str(&format!("  r1 = {op} {b_addr}\n"));
            observes.push(format!("observe P{i}:r1 as p{i}r1"));
        }
    }

    // Final memory of every location with two writers (a coherence
    // edge): ordering is only visible through the final value.
    if !cfg.po_cycle_free {
        for j in 0..t {
            let incoming = shape.edges[(j + t - 1) % t];
            if incoming == CommEdge::Co {
                observes.push(format!("observe mem x{j} as x{j}f"));
            }
        }
    }
    out.push('\n');
    for o in &observes {
        out.push_str(o);
        out.push('\n');
    }
    out
}

/// Renders a shape to a parsed program. Generated text always parses:
/// a panic here means the generator and the grammar drifted apart.
pub fn render(shape: &CycleShape, cfg: &GenConfig) -> ParsedLitmus {
    let text = render_text(shape, cfg);
    parse(&text).unwrap_or_else(|e| panic!("generated program must parse: {e}\n{text}"))
}

/// Samples and renders in one step: the generator's front door.
pub fn generate(seed: u64, cfg: &GenConfig) -> ParsedLitmus {
    render(&sample_cycle(seed, cfg), cfg)
}

// --- page-table-walk shapes -----------------------------------------

/// Which relaxed-virtual-memory scenario a walk program exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkKind {
    /// Unmap then TLBI with no barrier between them: the invalidation
    /// can be observed before the PTE clear, so a racing walker may
    /// still hit the stale translation (paper Example 6).
    StaleTlbi,
    /// Unmap with no TLBI at all: the walker's TLB entry survives
    /// indefinitely.
    MissingTlbi,
    /// Full break-before-make: PTE clear, `dmb sy`, TLBI, `dmb sy`,
    /// then the release-store publication. The stale walk must be
    /// forbidden.
    BbmSound,
}

impl WalkKind {
    /// Short name used in generated program names and file names.
    pub fn as_str(&self) -> &'static str {
        match self {
            WalkKind::StaleTlbi => "stale-tlbi",
            WalkKind::MissingTlbi => "missing-tlbi",
            WalkKind::BbmSound => "bbm-sound",
        }
    }

    /// Whether the maintenance protocol is strong enough that the
    /// relaxed model must forbid the stale walk.
    pub fn bbm_sound(&self) -> bool {
        matches!(self, WalkKind::BbmSound)
    }
}

/// One generated page-table-walk program plus the metadata the
/// differential driver judges it by.
#[derive(Debug, Clone)]
pub struct WalkProgram {
    /// The parsed program (1-level table, promise-free, axiomatic
    /// model off — the axiomatic model has no TLB).
    pub parsed: ParsedLitmus,
    /// Scenario kind.
    pub kind: WalkKind,
    /// The virtual page number being unmapped and walked.
    pub vpn: u64,
    /// The outcome bindings naming a *stale* walk: the walker saw the
    /// publication yet still read the old page's value. SC must forbid
    /// this (the abstract `Walk` verb is illegal after `Unmap`), and
    /// the relaxed model must forbid it iff [`WalkKind::bbm_sound`].
    pub stale: Vec<(String, u64)>,
}

/// The old page's fill value, observed by a stale walk.
pub const WALK_OLD_VAL: u64 = 7;

/// Samples a page-table-walk scenario from the seed: the kind, the
/// target vpn and the in-page offset vary; the table geometry (1 level
/// at root `0x100`, 16-cell pages) is fixed.
pub fn sample_walk(seed: u64) -> WalkProgram {
    let mut rng = GenRng::new(seed);
    let kind = match rng.below(3) {
        0 => WalkKind::StaleTlbi,
        1 => WalkKind::MissingTlbi,
        _ => WalkKind::BbmSound,
    };
    // vpn 1..=15 (vpn 0 would put the page table itself in the walked
    // page's way); offset anywhere in the 16-cell page.
    let vpn = 1 + rng.below(15);
    let off = rng.below(16);
    let va = (vpn << 4) | off;
    let pte = 0x100 + vpn;
    let mut text = String::new();
    text.push_str(&format!("litmus gen-walk-{}-s{seed:x}\n", kind.as_str()));
    text.push_str("config promises=off axiomatic=off\n");
    text.push_str("vm levels=1 root=0x100 pagebits=4 indexbits=4\n");
    text.push_str(&format!("init signal=0 0x{pte:x}=0x10\n"));
    text.push_str(&format!("initrange 0x10 16 {WALK_OLD_VAL}\n"));
    text.push_str("\nthread CPU1\n");
    text.push_str(&format!("  store 0x{pte:x} 0\n"));
    if kind == WalkKind::BbmSound {
        text.push_str("  dmb sy\n");
    }
    if kind != WalkKind::MissingTlbi {
        text.push_str(&format!("  tlbi 0x{va:x}\n"));
    }
    if kind == WalkKind::BbmSound {
        text.push_str("  dmb sy\n");
    }
    text.push_str("  stlr signal 1\n");
    text.push_str("\nthread CPU2\n");
    text.push_str("  r2 = ldar signal\n");
    text.push_str(&format!("  r0 = ldrv 0x{va:x}\n"));
    text.push_str("\nobserve CPU2:r2 as saw_signal\n");
    text.push_str("observe CPU2:r0 as walked\n");
    let parsed =
        parse(&text).unwrap_or_else(|e| panic!("generated walk program must parse: {e}\n{text}"));
    WalkProgram {
        parsed,
        kind,
        vpn,
        stale: vec![
            ("saw_signal".to_string(), 1),
            ("walked".to_string(), WALK_OLD_VAL),
        ],
    }
}

// --- shrinking -------------------------------------------------------

/// One-step simplifications of a shape, in preference order: drop a
/// whole thread first (decorations re-canonicalize via
/// [`CycleShape::effective_link`]), then weaken decorations.
fn shrink_candidates(shape: &CycleShape) -> Vec<CycleShape> {
    let t = shape.len();
    let mut out = Vec::new();
    if t > 2 {
        for i in 0..t {
            let mut s = shape.clone();
            s.threads.remove(i);
            // Remove the edge *into* thread i; the edge leaving it now
            // leaves thread i-1, whose event kinds re-derive.
            s.edges.remove((i + t - 1) % t);
            out.push(s);
        }
    }
    for i in 0..t {
        let weaker = match shape.threads[i].link {
            Link::CtrlIsb => Some(Link::Ctrl),
            Link::Ctrl | Link::Addr | Link::DmbSy | Link::DmbLd | Link::DmbSt => Some(Link::Po),
            Link::Po => None,
        };
        if let Some(w) = weaker {
            let mut s = shape.clone();
            s.threads[i].link = w;
            out.push(s);
        }
        if shape.threads[i].first_acq {
            let mut s = shape.clone();
            s.threads[i].first_acq = false;
            out.push(s);
        }
        if shape.threads[i].second_rel {
            let mut s = shape.clone();
            s.threads[i].second_rel = false;
            out.push(s);
        }
    }
    out
}

/// Greedily minimizes a failing shape: repeatedly applies the first
/// one-step simplification under which `still_failing` (re-run on the
/// re-rendered program) still holds, until none applies. The result
/// therefore still exhibits the original disagreement — unless the
/// [`GenConfig::recheck_shrinks`] mutant switch is off, in which case
/// every candidate is accepted blindly and the property can be lost.
pub fn shrink<F>(shape: &CycleShape, cfg: &GenConfig, mut still_failing: F) -> CycleShape
where
    F: FnMut(&ParsedLitmus) -> bool,
{
    let mut cur = shape.clone();
    loop {
        let mut advanced = false;
        for cand in shrink_candidates(&cur) {
            if !cfg.recheck_shrinks || still_failing(&render(&cand, cfg)) {
                cur = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promising::enumerate_promising_with;
    use crate::sc::enumerate_sc;

    /// Full-range config for parse-level checks; enumeration-backed
    /// tests use [`small`] (2 threads) so they stay fast unoptimized.
    fn full() -> GenConfig {
        GenConfig::default()
    }

    fn small() -> GenConfig {
        GenConfig {
            max_threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = full();
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(render_text(&sample_cycle(seed, &cfg), &cfg), {
                render_text(&sample_cycle(seed, &cfg), &cfg)
            });
        }
    }

    #[test]
    fn generated_programs_are_well_formed() {
        // Parse-level sweep over the full 2-4 thread range: render
        // never panics (the program parses), arity is respected, every
        // read is observed, and the 4-thread tractability guard holds.
        let cfg = full();
        for seed in 0..200u64 {
            let parsed = generate(seed, &cfg);
            let t = parsed.program.threads.len();
            assert!((2..=4).contains(&t), "seed {seed}: {t} threads");
            assert!(
                !parsed.program.observables.is_empty(),
                "seed {seed}: nothing observed"
            );
            assert_eq!(
                parsed.promising.promises,
                t < 4,
                "seed {seed}: promise search must be off exactly for 4-thread shapes"
            );
        }
    }

    #[test]
    fn sc_is_subsumed_on_small_shapes() {
        let cfg = small();
        for seed in 0..12u64 {
            let parsed = generate(seed, &cfg);
            let sc = enumerate_sc(&parsed.program).unwrap();
            let rm = enumerate_promising_with(&parsed.program, &parsed.promising)
                .unwrap()
                .outcomes;
            assert!(sc.is_subset(&rm), "seed {seed}: SC not subsumed");
        }
    }

    #[test]
    fn classic_shapes_are_reachable() {
        // The construction covers the classics: find an SB (two Fr
        // edges), an MP (Rf + Fr) and a 2+2W (two Co edges) among the
        // first few hundred seeds.
        let cfg = full();
        let mut sb = false;
        let mut mp = false;
        let mut w22 = false;
        for seed in 0..400u64 {
            let s = sample_cycle(seed, &cfg);
            if s.len() != 2 {
                continue;
            }
            match (s.edges[0], s.edges[1]) {
                (CommEdge::Fr, CommEdge::Fr) => sb = true,
                (CommEdge::Rf, CommEdge::Fr) | (CommEdge::Fr, CommEdge::Rf) => mp = true,
                (CommEdge::Co, CommEdge::Co) => w22 = true,
                _ => {}
            }
        }
        assert!(sb && mp && w22, "sb:{sb} mp:{mp} 2+2w:{w22}");
    }

    #[test]
    fn some_seed_exhibits_relaxed_behavior() {
        // The whole point of the cycle family: some generated shapes
        // must show outcomes the relaxed model allows and SC forbids.
        let cfg = small();
        let found = (0..16u64).any(|seed| {
            let parsed = generate(seed, &cfg);
            let sc = enumerate_sc(&parsed.program).unwrap();
            let rm = enumerate_promising_with(&parsed.program, &parsed.promising)
                .unwrap()
                .outcomes;
            rm.len() > sc.len()
        });
        assert!(found, "no relaxed-only outcome in the first 16 seeds");
    }

    #[test]
    fn po_cycle_free_mutant_never_relaxes() {
        let cfg = GenConfig {
            po_cycle_free: true,
            ..small()
        };
        for seed in 0..12u64 {
            let parsed = generate(seed, &cfg);
            let sc = enumerate_sc(&parsed.program).unwrap();
            let rm = enumerate_promising_with(&parsed.program, &parsed.promising)
                .unwrap()
                .outcomes;
            assert_eq!(
                sc.len(),
                rm.len(),
                "seed {seed}: cycle-free program shows relaxed behavior"
            );
        }
    }

    #[test]
    fn walk_shapes_parse_and_carry_metadata() {
        for seed in 0..16u64 {
            let w = sample_walk(seed);
            assert!(w.parsed.program.vm.is_some(), "seed {seed}: no vm config");
            assert!(
                !w.parsed.run_axiomatic,
                "seed {seed}: axiomatic must be off"
            );
            assert!(!w.parsed.promising.promises, "seed {seed}");
            assert!((1..16).contains(&w.vpn), "seed {seed}: vpn {}", w.vpn);
            assert_eq!(w.stale.len(), 2);
        }
    }

    #[test]
    fn shrink_preserves_a_semantic_predicate() {
        // Find a decorated 2-thread shape that still shows relaxed
        // behavior, then shrink under "still relaxed": the result must
        // keep the property and be 1-minimal for it.
        let cfg = small();
        let relaxed = |p: &ParsedLitmus| {
            let sc = enumerate_sc(&p.program).unwrap();
            let rm = enumerate_promising_with(&p.program, &p.promising)
                .unwrap()
                .outcomes;
            rm.len() > sc.len()
        };
        let shape = (0..64u64)
            .map(|s| sample_cycle(s, &cfg))
            .find(|s| {
                let decorated = s
                    .threads
                    .iter()
                    .any(|t| t.link != Link::Po || t.first_acq || t.second_rel);
                decorated && relaxed(&render(s, &cfg))
            })
            .expect("a decorated relaxed 2-thread shape in the first 64 seeds");
        let min = shrink(&shape, &cfg, relaxed);
        assert!(relaxed(&render(&min, &cfg)), "shrink lost the property");
        for cand in shrink_candidates(&min) {
            assert!(
                !relaxed(&render(&cand, &cfg)),
                "not minimal: {cand:?} still relaxed"
            );
        }
    }

    #[test]
    fn shrink_drops_threads_and_weakens_links() {
        // Under the always-true predicate every shape collapses to the
        // 2-thread all-Po undecorated skeleton.
        let cfg = full();
        for seed in 0..16u64 {
            let s = sample_cycle(seed, &cfg);
            let min = shrink(&s, &cfg, |_| true);
            assert_eq!(min.len(), 2, "seed {seed}");
            for t in &min.threads {
                assert_eq!(t.link, Link::Po, "seed {seed}");
                assert!(!t.first_acq && !t.second_rel, "seed {seed}");
            }
        }
    }

    #[test]
    fn buggy_shrinker_loses_the_predicate() {
        // With recheck_shrinks off, candidates are accepted blindly,
        // so a predicate as simple as "still has 3 threads" is lost.
        let cfg = GenConfig {
            max_threads: 3,
            min_threads: 3,
            recheck_shrinks: false,
            ..Default::default()
        };
        let s = sample_cycle(7, &cfg);
        assert_eq!(s.len(), 3);
        let min = shrink(&s, &cfg, |p| p.program.threads.len() == 3);
        assert_eq!(min.len(), 2, "bugged shrinker should have dropped a thread");
    }
}
