//! Instruction representation for litmus-scale concurrent programs.
//!
//! The IR models the subset of AArch64 that the VRM paper's examples and
//! proofs rely on: plain and acquire loads, plain and release stores, atomic
//! read-modify-writes, `DMB`/`ISB` barriers, conditional branches (which
//! induce control dependencies), virtual-memory accesses that walk a page
//! table stored in modelled memory, TLB invalidation, and the *ghost*
//! push/pull primitives used by the push/pull Promising model of §4.1.
//!
//! Memory is word-granular: an [`Addr`] names one cell holding one [`Val`].
//! Page-table geometry (for [`Inst::LoadVirt`] / [`Inst::StoreVirt`]) is
//! described by [`VmConfig`].

use std::collections::BTreeMap;
use std::fmt;

/// A machine word value.
pub type Val = u64;

/// A word-granular memory address (one cell per address).
pub type Addr = u64;

/// A thread-local general-purpose register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary operators usable in [`Expr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Wrapping multiplication.
    Mul,
    /// Logical shift right.
    Shr,
    /// Logical shift left.
    Shl,
    /// Equality test producing 0 or 1.
    Eq,
    /// Inequality test producing 0 or 1.
    Ne,
    /// Unsigned less-than test producing 0 or 1.
    Lt,
}

/// A side-effect-free expression over registers and immediates.
///
/// Expressions are evaluated thread-locally. Any register read inside an
/// expression contributes that register's *view* (dependency information) to
/// the consuming instruction, which is how data and address dependencies are
/// tracked by the relaxed-memory models.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An immediate constant.
    Imm(Val),
    /// The current value of a register.
    Reg(Reg),
    /// A binary operation on two sub-expressions.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Builds a binary operation node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Returns the set of registers read by this expression.
    pub fn regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.collect_regs(&mut out);
        out
    }

    fn collect_regs(&self, out: &mut Vec<Reg>) {
        match self {
            Expr::Imm(_) => {}
            Expr::Reg(r) => {
                if !out.contains(r) {
                    out.push(*r);
                }
            }
            Expr::Bin(_, a, b) => {
                a.collect_regs(out);
                b.collect_regs(out);
            }
        }
    }
}

impl From<Val> for Expr {
    fn from(v: Val) -> Expr {
        Expr::Imm(v)
    }
}

impl From<Reg> for Expr {
    fn from(r: Reg) -> Expr {
        Expr::Reg(r)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::BitAnd for Expr {
    type Output = Expr;
    fn bitand(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }
}

impl std::ops::BitOr for Expr {
    type Output = Expr;
    fn bitor(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }
}

/// Branch conditions for [`Inst::Br`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if operands are equal.
    Eq,
    /// Branch if operands are not equal.
    Ne,
    /// Branch if `lhs < rhs` (unsigned).
    Lt,
    /// Branch if `lhs >= rhs` (unsigned).
    Ge,
}

impl Cond {
    /// Evaluates the condition on concrete values.
    pub fn eval(self, lhs: Val, rhs: Val) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Ge => lhs >= rhs,
        }
    }
}

/// Atomic read-modify-write operators for [`Inst::Rmw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `mem := mem + rhs` (returns the old value), e.g. `fetch_and_inc`.
    Add,
    /// `mem := rhs` (returns the old value), an atomic swap.
    Swap,
    /// `mem := mem & rhs` (returns the old value).
    And,
    /// `mem := mem | rhs` (returns the old value).
    Or,
}

impl RmwOp {
    /// Computes the new memory value from the old value and the operand.
    pub fn apply(self, old: Val, rhs: Val) -> Val {
        match self {
            RmwOp::Add => old.wrapping_add(rhs),
            RmwOp::Swap => rhs,
            RmwOp::And => old & rhs,
            RmwOp::Or => old | rhs,
        }
    }
}

/// Memory barrier kinds.
///
/// `Sy`/`Ld`/`St` model AArch64 `DMB SY` / `DMB LD` / `DMB ST`; `Isb` models
/// the instruction barrier that, combined with a control or address
/// dependency, orders later loads. `DSB` is conflated with `DMB` (we model
/// no store buffers beyond view semantics, so the completion/ordering
/// distinction does not arise), which is documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fence {
    /// Full barrier (`dmb sy`).
    Sy,
    /// Load barrier (`dmb ld`): orders prior loads before later accesses.
    Ld,
    /// Store barrier (`dmb st`): orders prior stores before later stores.
    St,
    /// Instruction synchronization barrier (`isb`).
    Isb,
}

/// One instruction of a modelled thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst := src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source expression.
        src: Expr,
    },
    /// `dst := [addr]`; `acq` selects a load-acquire (`LDAR`).
    Load {
        /// Destination register.
        dst: Reg,
        /// Address expression (contributes an address dependency).
        addr: Expr,
        /// Acquire semantics.
        acq: bool,
    },
    /// `[addr] := val`; `rel` selects a store-release (`STLR`).
    Store {
        /// Value expression (contributes a data dependency).
        val: Expr,
        /// Address expression (contributes an address dependency).
        addr: Expr,
        /// Release semantics.
        rel: bool,
    },
    /// Atomic `dst := [addr]; [addr] := op([addr], rhs)`.
    Rmw {
        /// Destination register receiving the *old* value.
        dst: Reg,
        /// Address expression.
        addr: Expr,
        /// The update operator.
        op: RmwOp,
        /// The operand expression.
        rhs: Expr,
        /// Acquire semantics on the read half.
        acq: bool,
        /// Release semantics on the write half.
        rel: bool,
    },
    /// Load-exclusive (`LDXR`/`LDAXR`): like [`Inst::Load`] but arms the
    /// exclusive monitor for `addr`.
    LoadEx {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        addr: Expr,
        /// Acquire semantics (`LDAXR`).
        acq: bool,
    },
    /// Store-exclusive (`STXR`/`STLXR`): succeeds (writing `val` and
    /// setting `status` to 0) only if no other write to `addr` intervened
    /// since the matching [`Inst::LoadEx`]; otherwise sets `status` to 1
    /// and writes nothing. Spurious failures are allowed on relaxed
    /// models.
    StoreEx {
        /// Receives 0 on success, 1 on failure.
        status: Reg,
        /// Value expression.
        val: Expr,
        /// Address expression.
        addr: Expr,
        /// Release semantics (`STLXR`).
        rel: bool,
    },
    /// A memory barrier.
    Fence(Fence),
    /// Conditional branch to instruction index `target`.
    ///
    /// The registers feeding `lhs`/`rhs` induce a control dependency on all
    /// program-order-later instructions.
    Br {
        /// The comparison.
        cond: Cond,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
        /// Branch-taken target (instruction index in the thread).
        target: usize,
    },
    /// Unconditional jump to instruction index.
    Jmp(usize),
    /// `dst := [translate(va)]`: a load through the MMU.
    ///
    /// Requires [`Program::vm`]. Consults the per-CPU TLB, walking the page
    /// table in modelled memory on a miss (each level is one interleavable
    /// memory read, address-dependent on its parent entry). Faults halt the
    /// thread with [`ThreadExit::Fault`](crate::outcome::ThreadExit).
    LoadVirt {
        /// Destination register.
        dst: Reg,
        /// Virtual address expression.
        va: Expr,
        /// Acquire semantics on the final data access.
        acq: bool,
    },
    /// `[translate(va)] := val`: a store through the MMU.
    StoreVirt {
        /// Value expression.
        val: Expr,
        /// Virtual address expression.
        va: Expr,
        /// Release semantics on the final data access.
        rel: bool,
    },
    /// TLB invalidation, broadcast to all CPUs.
    ///
    /// `va: None` invalidates entire TLBs; `Some(e)` invalidates the page
    /// containing `e`. Ordering against surrounding accesses is only
    /// guaranteed through barriers (see §2 Example 6).
    Tlbi {
        /// Optional virtual address restricting the invalidation.
        va: Option<Expr>,
    },
    /// Ghost primitive: acquire logical ownership of the listed locations.
    ///
    /// Used by the push/pull Promising model (§4.1) to encode the
    /// DRF-Kernel condition; no architectural effect.
    Pull(Vec<Expr>),
    /// Ghost primitive: release logical ownership of the listed locations.
    Push(Vec<Expr>),
    /// Nondeterministic choice: `dst` receives any of the listed values.
    ///
    /// This models the VRM paper's *data oracles* (§5.3): reads of user
    /// memory are masked by an oracle that may return any value, making the
    /// kernel's verification independent of user-program implementations.
    Oracle {
        /// Destination register.
        dst: Reg,
        /// The candidate values (must be non-empty).
        choices: Vec<Val>,
    },
    /// Stop the thread successfully.
    Halt,
    /// Abort the thread, recording a panic (the paper's `panic()`).
    Panic,
    /// No operation.
    Nop,
}

impl Inst {
    /// Returns `true` for ghost instructions with no architectural effect.
    pub fn is_ghost(&self) -> bool {
        matches!(self, Inst::Push(_) | Inst::Pull(_))
    }
}

/// The code of one hardware thread (CPU).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thread {
    /// Human-readable name (e.g. `"CPU 1"`).
    pub name: String,
    /// Straight-line code with index-addressed branch targets.
    pub code: Vec<Inst>,
}

/// Page-table geometry for virtual-memory instructions.
///
/// A walk of `va` at level `i` (0 = root) reads the cell
/// `table + ((va >> (page_bits + index_bits * (levels - 1 - i))) & mask)`;
/// a zero entry is a fault, a non-zero entry is the base of the next-level
/// table, or at the leaf the base of the physical page. The physical address
/// is `leaf_entry + (va & (2^page_bits - 1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmConfig {
    /// Number of translation levels (1..=4).
    pub levels: u32,
    /// Root table base address.
    pub root: Addr,
    /// log2 of the page size in words.
    pub page_bits: u32,
    /// log2 of the number of entries per table.
    pub index_bits: u32,
}

impl VmConfig {
    /// Returns the page number of a virtual address.
    pub fn vpn(&self, va: Addr) -> Addr {
        va >> self.page_bits
    }

    /// Returns the table index used at walk level `level` (0 = root).
    pub fn index(&self, va: Addr, level: u32) -> Addr {
        debug_assert!(level < self.levels);
        let shift = self.page_bits + self.index_bits * (self.levels - 1 - level);
        (va >> shift) & ((1 << self.index_bits) - 1)
    }

    /// Returns the in-page offset of a virtual address.
    pub fn offset(&self, va: Addr) -> Addr {
        va & ((1 << self.page_bits) - 1)
    }
}

/// What the caller wants reported in an execution outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observable {
    /// The final value of a register of a thread.
    Reg {
        /// Label in the rendered outcome.
        name: String,
        /// Owning thread index.
        tid: usize,
        /// The register.
        reg: Reg,
    },
    /// The final value of a memory cell.
    Mem {
        /// Label in the rendered outcome.
        name: String,
        /// The address.
        addr: Addr,
    },
}

/// A complete multi-threaded program plus initial memory and observables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Display name of the program (litmus test name).
    pub name: String,
    /// The threads; index = thread id (CPU number).
    pub threads: Vec<Thread>,
    /// Sparse initial memory; unnamed cells are zero.
    pub init_mem: BTreeMap<Addr, Val>,
    /// What to include in outcomes.
    pub observables: Vec<Observable>,
    /// Page-table geometry, required iff virtual accesses are used.
    pub vm: Option<VmConfig>,
}

impl Program {
    /// Returns the initial value of a memory cell (0 if unset).
    pub fn init_val(&self, addr: Addr) -> Val {
        self.init_mem.get(&addr).copied().unwrap_or(0)
    }

    /// Returns the number of registers any thread may touch (max index + 1,
    /// including registers only referenced by observables).
    pub fn reg_count(&self) -> usize {
        let mut max = 0usize;
        for t in &self.threads {
            for i in &t.code {
                for r in inst_regs(i) {
                    max = max.max(r.0 as usize + 1);
                }
            }
        }
        for o in &self.observables {
            if let Observable::Reg { reg, .. } = o {
                max = max.max(reg.0 as usize + 1);
            }
        }
        max.max(1)
    }

    /// Returns `true` if any instruction uses virtual memory or TLB ops.
    pub fn uses_vm(&self) -> bool {
        self.threads.iter().any(|t| {
            t.code.iter().any(|i| {
                matches!(
                    i,
                    Inst::LoadVirt { .. } | Inst::StoreVirt { .. } | Inst::Tlbi { .. }
                )
            })
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Imm(v) => {
                if *v > 9 {
                    write!(f, "{v:#x}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Reg(r) => write!(f, "{r}"),
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Mul => "*",
                    BinOp::Shr => ">>",
                    BinOp::Shl => "<<",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Mov { dst, src } => write!(f, "{dst} := {src}"),
            Inst::Load { dst, addr, acq } => {
                write!(f, "{dst} := {}[{addr}]", if *acq { "ldar " } else { "" })
            }
            Inst::Store { val, addr, rel } => {
                write!(f, "{}[{addr}] := {val}", if *rel { "stlr " } else { "" })
            }
            Inst::Rmw {
                dst,
                addr,
                op,
                rhs,
                acq,
                rel,
            } => write!(
                f,
                "{dst} := rmw{}{}({addr}, {op:?}, {rhs})",
                if *acq { ".acq" } else { "" },
                if *rel { ".rel" } else { "" }
            ),
            Inst::LoadEx { dst, addr, acq } => write!(
                f,
                "{dst} := {}[{addr}]",
                if *acq { "ldaxr " } else { "ldxr " }
            ),
            Inst::StoreEx {
                status,
                val,
                addr,
                rel,
            } => write!(
                f,
                "{status} := {}[{addr}] := {val}",
                if *rel { "stlxr " } else { "stxr " }
            ),
            Inst::Fence(k) => write!(f, "dmb.{k:?}"),
            Inst::Br {
                cond,
                lhs,
                rhs,
                target,
            } => write!(f, "b.{cond:?} {lhs}, {rhs} -> {target}"),
            Inst::Jmp(t) => write!(f, "b -> {t}"),
            Inst::LoadVirt { dst, va, acq } => {
                write!(f, "{dst} := {}virt[{va}]", if *acq { "ldar " } else { "" })
            }
            Inst::StoreVirt { val, va, rel } => {
                write!(f, "{}virt[{va}] := {val}", if *rel { "stlr " } else { "" })
            }
            Inst::Tlbi { va: None } => write!(f, "tlbi all"),
            Inst::Tlbi { va: Some(e) } => write!(f, "tlbi va={e}"),
            Inst::Pull(locs) => {
                write!(f, "pull ")?;
                for (i, l) in locs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                Ok(())
            }
            Inst::Push(locs) => {
                write!(f, "push ")?;
                for (i, l) in locs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                Ok(())
            }
            Inst::Oracle { dst, choices } => write!(f, "{dst} := oracle{choices:?}"),
            Inst::Halt => write!(f, "halt"),
            Inst::Panic => write!(f, "panic"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for (tid, t) in self.threads.iter().enumerate() {
            writeln!(f, "  thread {tid} ({}):", t.name)?;
            for (pc, i) in t.code.iter().enumerate() {
                writeln!(f, "    {pc:>3}: {i}")?;
            }
        }
        if !self.init_mem.is_empty() && self.init_mem.len() <= 16 {
            write!(f, "  init:")?;
            for (a, v) in &self.init_mem {
                write!(f, " [{a:#x}]={v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Collects every register mentioned by an instruction (read or written).
pub fn inst_regs(inst: &Inst) -> Vec<Reg> {
    let mut out = Vec::new();
    let push_expr = |e: &Expr, out: &mut Vec<Reg>| {
        for r in e.regs() {
            if !out.contains(&r) {
                out.push(r);
            }
        }
    };
    match inst {
        Inst::Mov { dst, src } => {
            out.push(*dst);
            push_expr(src, &mut out);
        }
        Inst::Load { dst, addr, .. } => {
            out.push(*dst);
            push_expr(addr, &mut out);
        }
        Inst::Store { val, addr, .. } => {
            push_expr(val, &mut out);
            push_expr(addr, &mut out);
        }
        Inst::Rmw { dst, addr, rhs, .. } => {
            out.push(*dst);
            push_expr(addr, &mut out);
            push_expr(rhs, &mut out);
        }
        Inst::LoadEx { dst, addr, .. } => {
            out.push(*dst);
            push_expr(addr, &mut out);
        }
        Inst::StoreEx {
            status, val, addr, ..
        } => {
            out.push(*status);
            push_expr(val, &mut out);
            push_expr(addr, &mut out);
        }
        Inst::Br { lhs, rhs, .. } => {
            push_expr(lhs, &mut out);
            push_expr(rhs, &mut out);
        }
        Inst::LoadVirt { dst, va, .. } => {
            out.push(*dst);
            push_expr(va, &mut out);
        }
        Inst::StoreVirt { val, va, .. } => {
            push_expr(val, &mut out);
            push_expr(va, &mut out);
        }
        Inst::Tlbi { va: Some(e) } => push_expr(e, &mut out),
        Inst::Oracle { dst, .. } => out.push(*dst),
        Inst::Push(es) | Inst::Pull(es) => {
            for e in es {
                push_expr(e, &mut out);
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_regs_dedup() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Reg(Reg(1)),
            Expr::bin(BinOp::Add, Expr::Reg(Reg(1)), Expr::Reg(Reg(2))),
        );
        assert_eq!(e.regs(), vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(3, 4));
        assert!(!Cond::Lt.eval(4, 4));
        assert!(Cond::Ge.eval(4, 4));
    }

    #[test]
    fn rmw_apply() {
        assert_eq!(RmwOp::Add.apply(4, 1), 5);
        assert_eq!(RmwOp::Swap.apply(4, 9), 9);
        assert_eq!(RmwOp::And.apply(0b110, 0b011), 0b010);
        assert_eq!(RmwOp::Or.apply(0b100, 0b011), 0b111);
    }

    #[test]
    fn display_round_trips_are_readable() {
        let i = Inst::Load {
            dst: Reg(1),
            addr: Expr::bin(BinOp::Add, Expr::Imm(0x10), Expr::Reg(Reg(0))),
            acq: true,
        };
        assert_eq!(i.to_string(), "r1 := ldar [(0x10 + r0)]");
        let s = Inst::StoreEx {
            status: Reg(2),
            val: Expr::Imm(1),
            addr: Expr::Imm(0x20),
            rel: true,
        };
        assert_eq!(s.to_string(), "r2 := stlxr [0x20] := 1");
        assert_eq!(Inst::Fence(Fence::Sy).to_string(), "dmb.Sy");
    }

    #[test]
    fn program_display_lists_threads() {
        let mut t = crate::builder::ThreadBuilder::new();
        t.store(0x10u64, 1u64, false);
        let prog = Program {
            name: "demo".into(),
            threads: vec![t.finish("T0")],
            init_mem: [(0x10, 7)].into(),
            observables: vec![],
            vm: None,
        };
        let text = prog.to_string();
        assert!(text.contains("thread 0 (T0):"));
        assert!(text.contains("[0x10] := 1"));
        assert!(text.contains("init: [0x10]=7"));
    }

    #[test]
    fn vm_config_indexing() {
        // 2-level, 16-word pages, 4 entries per table.
        let vm = VmConfig {
            levels: 2,
            root: 0x1000,
            page_bits: 4,
            index_bits: 2,
        };
        let va = 0b1101_1010; // l0 idx=3, l1 idx=1, offset=10
        assert_eq!(vm.index(va, 0), 0b11);
        assert_eq!(vm.index(va, 1), 0b01);
        assert_eq!(vm.offset(va), 0b1010);
        assert_eq!(vm.vpn(va), 0b1101);
    }
}
