//! The Armv8 axiomatic concurrency model.
//!
//! This is an executable rendering of the official AArch64 application-level
//! memory model (`aarch64.cat`, Deacon; formalized by Pulte et al. in
//! "Simplifying ARM Concurrency", POPL 2018) for the instruction subset of
//! this crate:
//!
//! 1. **internal visibility** — `po-loc ∪ rf ∪ co ∪ fr` is acyclic
//!    (SC-per-location / coherence);
//! 2. **atomicity** — `rmw ∩ (fre; coe)` is empty;
//! 3. **external visibility** — `ob = (obs ∪ dob ∪ aob ∪ bob)⁺` is
//!    irreflexive, where
//!    `obs = rfe ∪ fre ∪ coe`,
//!    `dob = addr ∪ data ∪ ctrl;[W] ∪ (ctrl ∪ addr;po);[ISB];po;[R]
//!         ∪ addr;po;[W] ∪ (addr ∪ data);rfi`,
//!    `aob = rmw ∪ [range(rmw)];rfi;[A]`,
//!    `bob = po;[dmb.sy];po ∪ [L];po;[A] ∪ [R];po;[dmb.ld];po
//!         ∪ [W];po;[dmb.st];po;[W] ∪ [A];po ∪ po;[L] ∪ po;[L];coi`.
//!
//! Candidate executions are enumerated exhaustively: per-thread local paths
//! (loads return values from the [`values`](crate::values) fixpoint), then
//! every reads-from assignment and coherence order. The model covers
//! user-level (plain-memory) programs only — virtual-memory and TLB
//! instructions are outside the axiomatic model, exactly as the paper notes
//! ("all of these models ... exclude system features such as MMU
//! hardware"). It exists to cross-validate the operational
//! [`promising`](crate::promising) implementation on the litmus battery.

use std::collections::BTreeSet;

use std::sync::atomic::{AtomicUsize, Ordering};

use vrm_explore::ExploreConfig;

use crate::ir::{Addr, Expr, Fence, Inst, Observable, Program, Val};
use crate::outcome::{Outcome, OutcomeSet, ThreadExit};
use crate::values::{analyze, ValueConfig};

/// Per-relation rejection counters for the candidate consistency
/// check, surfaced in `vrm-obs` metrics snapshots: together with
/// `axiomatic.candidates_accepted` they explain where the candidate
/// sweep's time went and which axiom does the pruning.
static OBS_REJ_INTERNAL: vrm_obs::Counter = vrm_obs::Counter::new("axiomatic.rejected_internal");
static OBS_REJ_ATOMICITY: vrm_obs::Counter = vrm_obs::Counter::new("axiomatic.rejected_atomicity");
static OBS_REJ_EXTERNAL: vrm_obs::Counter = vrm_obs::Counter::new("axiomatic.rejected_external");
static OBS_ACCEPTED: vrm_obs::Counter = vrm_obs::Counter::new("axiomatic.candidates_accepted");

/// Which axiom of the Armv8 external-consistency predicate rejected a
/// candidate execution — [`Candidate::rejection`]'s verdict, in the
/// order the axioms are checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RejectedBy {
    /// `internal`: acyclic(po-loc ∪ rf ∪ co ∪ fr) failed — the
    /// candidate is not even sequentially consistent per location.
    InternalVisibility,
    /// `atomicity`: rmw ∩ (fre; coe) ≠ ∅ — a foreign write landed
    /// between an exclusive pair.
    Atomicity,
    /// `external`: acyclic(ob) failed — the ordered-before relation
    /// (observed-by, dependency, barrier and release/acquire order) has
    /// a cycle.
    ExternalVisibility,
}

/// Maximum events per candidate execution (bitmask-based relations).
pub const MAX_EVENTS: usize = 64;

/// Tunables for [`enumerate_axiomatic_with`].
#[derive(Debug, Clone)]
pub struct AxConfig {
    /// Loop unroll bound (backward jumps per path).
    pub unroll: usize,
    /// Maximum local paths per thread.
    pub max_paths_per_thread: usize,
    /// Maximum candidate executions examined.
    pub max_candidates: usize,
    /// Value-analysis bounds.
    pub value_cfg: ValueConfig,
    /// Worker threads for the candidate sweep; `1` (the default, unless
    /// `VRM_JOBS` overrides it) processes the combos inline.
    pub jobs: usize,
}

impl Default for AxConfig {
    fn default() -> Self {
        Self {
            unroll: 2,
            max_paths_per_thread: 4_000,
            max_candidates: 50_000_000,
            value_cfg: ValueConfig::default(),
            jobs: ExploreConfig::jobs_from_env(),
        }
    }
}

/// Errors from axiomatic enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxError {
    /// The program uses features outside the axiomatic model.
    Unsupported(&'static str),
    /// A candidate execution had more than [`MAX_EVENTS`] events.
    TooManyEvents,
    /// The candidate bound was exceeded (legacy: the enumeration now
    /// truncates — see [`AxResult::truncated`] — instead of erroring).
    CandidateLimit,
}

impl std::fmt::Display for AxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxError::Unsupported(what) => write!(f, "axiomatic model does not support {what}"),
            AxError::TooManyEvents => write!(f, "more than {MAX_EVENTS} events"),
            AxError::CandidateLimit => write!(f, "candidate execution limit exceeded"),
        }
    }
}

impl std::error::Error for AxError {}

/// Result of axiomatic enumeration.
#[derive(Debug, Clone)]
pub struct AxResult {
    /// Outcomes of all consistent candidate executions.
    pub outcomes: OutcomeSet,
    /// Number of candidate executions checked.
    pub candidates: usize,
    /// `true` if a bound was hit (outcome set may be incomplete).
    pub truncated: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Read,
    Write,
    Fence(Fence),
}

/// One event of a thread-local path. Dependency sets are indices of *read*
/// events of the same path.
#[derive(Debug, Clone)]
struct LocalEvent {
    kind: EvKind,
    loc: Addr,
    val: Val,
    acq: bool,
    rel: bool,
    addr_deps: BTreeSet<usize>,
    data_deps: BTreeSet<usize>,
    ctrl_deps: BTreeSet<usize>,
    /// For an RMW write: local index of its paired read.
    rmw_read: Option<usize>,
}

/// One complete symbolic execution of a single thread.
#[derive(Debug, Clone)]
struct LocalPath {
    events: Vec<LocalEvent>,
    final_regs: Vec<Val>,
    exit: ThreadExit,
}

/// Evaluates an expression returning the value and the dependency set
/// (local read-event indices).
fn eval_dep(e: &Expr, regs: &[(Val, BTreeSet<usize>)]) -> (Val, BTreeSet<usize>) {
    match e {
        Expr::Imm(v) => (*v, BTreeSet::new()),
        Expr::Reg(r) => regs[r.0 as usize].clone(),
        Expr::Bin(op, a, b) => {
            let (av, mut ad) = eval_dep(a, regs);
            let (bv, bd) = eval_dep(b, regs);
            ad.extend(bd);
            use crate::ir::BinOp::*;
            let v = match op {
                Add => av.wrapping_add(bv),
                Sub => av.wrapping_sub(bv),
                And => av & bv,
                Or => av | bv,
                Xor => av ^ bv,
                Mul => av.wrapping_mul(bv),
                Shr => av.wrapping_shr(bv as u32),
                Shl => av.wrapping_shl(bv as u32),
                Eq => (av == bv) as Val,
                Ne => (av != bv) as Val,
                Lt => (av < bv) as Val,
            };
            (v, ad)
        }
    }
}

struct PathEnum<'a> {
    prog: &'a Program,
    cfg: &'a AxConfig,
    candidates: std::collections::BTreeMap<Addr, BTreeSet<Val>>,
    truncated: bool,
}

#[derive(Debug, Clone)]
struct SymState {
    pc: usize,
    regs: Vec<(Val, BTreeSet<usize>)>,
    ctrl: BTreeSet<usize>,
    fuel: usize,
    events: Vec<LocalEvent>,
    /// Exclusive monitor: (local read-event index, address).
    excl: Option<(usize, Addr)>,
}

impl<'a> PathEnum<'a> {
    fn load_cands(&self, a: Addr) -> BTreeSet<Val> {
        let mut c = self.candidates.get(&a).cloned().unwrap_or_default();
        c.insert(self.prog.init_val(a));
        c
    }

    fn enumerate(&mut self, tid: usize) -> Result<Vec<LocalPath>, AxError> {
        let nregs = self.prog.reg_count();
        let code = &self.prog.threads[tid].code;
        let fuel = self.cfg.unroll * code.len().max(1);
        let mut paths = Vec::new();
        let mut stack = vec![SymState {
            pc: 0,
            regs: vec![(0, BTreeSet::new()); nregs],
            ctrl: BTreeSet::new(),
            fuel,
            events: Vec::new(),
            excl: None,
        }];
        while let Some(mut st) = stack.pop() {
            if paths.len() + stack.len() > self.cfg.max_paths_per_thread {
                self.truncated = true;
                break;
            }
            let exit = loop {
                if st.pc >= code.len() {
                    break ThreadExit::Done;
                }
                let inst = code[st.pc].clone();
                let mut next_pc = st.pc + 1;
                match inst {
                    Inst::Mov { dst, src } => {
                        let (v, d) = eval_dep(&src, &st.regs);
                        st.regs[dst.0 as usize] = (v, d);
                    }
                    Inst::Load { dst, addr, acq } => {
                        let (a, ad) = eval_dep(&addr, &st.regs);
                        let cands = self.load_cands(a);
                        let idx = st.events.len();
                        let mut iter = cands.into_iter();
                        let first = iter.next().expect("non-empty candidates");
                        for v in iter {
                            let mut b = st.clone();
                            b.events.push(LocalEvent {
                                kind: EvKind::Read,
                                loc: a,
                                val: v,
                                acq,
                                rel: false,
                                addr_deps: ad.clone(),
                                data_deps: BTreeSet::new(),
                                ctrl_deps: b.ctrl.clone(),
                                rmw_read: None,
                            });
                            b.regs[dst.0 as usize] = (v, [idx].into());
                            b.pc = st.pc + 1;
                            stack.push(b);
                        }
                        st.events.push(LocalEvent {
                            kind: EvKind::Read,
                            loc: a,
                            val: first,
                            acq,
                            rel: false,
                            addr_deps: ad,
                            data_deps: BTreeSet::new(),
                            ctrl_deps: st.ctrl.clone(),
                            rmw_read: None,
                        });
                        st.regs[dst.0 as usize] = (first, [idx].into());
                    }
                    Inst::Store { val, addr, rel } => {
                        let (a, ad) = eval_dep(&addr, &st.regs);
                        let (v, dd) = eval_dep(&val, &st.regs);
                        st.events.push(LocalEvent {
                            kind: EvKind::Write,
                            loc: a,
                            val: v,
                            acq: false,
                            rel,
                            addr_deps: ad,
                            data_deps: dd,
                            ctrl_deps: st.ctrl.clone(),
                            rmw_read: None,
                        });
                    }
                    Inst::Rmw {
                        dst,
                        addr,
                        op,
                        rhs,
                        acq,
                        rel,
                    } => {
                        let (a, ad) = eval_dep(&addr, &st.regs);
                        let (r, rd) = eval_dep(&rhs, &st.regs);
                        let cands = self.load_cands(a);
                        let ridx = st.events.len();
                        let make = |old: Val, ctrl: &BTreeSet<usize>| {
                            let mut dd = rd.clone();
                            dd.insert(ridx);
                            (
                                LocalEvent {
                                    kind: EvKind::Read,
                                    loc: a,
                                    val: old,
                                    acq,
                                    rel: false,
                                    addr_deps: ad.clone(),
                                    data_deps: BTreeSet::new(),
                                    ctrl_deps: ctrl.clone(),
                                    rmw_read: None,
                                },
                                LocalEvent {
                                    kind: EvKind::Write,
                                    loc: a,
                                    val: op.apply(old, r),
                                    acq: false,
                                    rel,
                                    addr_deps: ad.clone(),
                                    data_deps: dd,
                                    ctrl_deps: ctrl.clone(),
                                    rmw_read: Some(ridx),
                                },
                            )
                        };
                        let mut iter = cands.into_iter();
                        let first = iter.next().expect("non-empty candidates");
                        for old in iter {
                            let mut b = st.clone();
                            let (re, we) = make(old, &b.ctrl);
                            b.events.push(re);
                            b.events.push(we);
                            b.regs[dst.0 as usize] = (old, [ridx].into());
                            b.pc = st.pc + 1;
                            stack.push(b);
                        }
                        let ctrl = st.ctrl.clone();
                        let (re, we) = make(first, &ctrl);
                        st.events.push(re);
                        st.events.push(we);
                        st.regs[dst.0 as usize] = (first, [ridx].into());
                    }
                    Inst::LoadEx { dst, addr, acq } => {
                        let (a, ad) = eval_dep(&addr, &st.regs);
                        let cands = self.load_cands(a);
                        let idx = st.events.len();
                        let mut iter = cands.into_iter();
                        let first = iter.next().expect("non-empty candidates");
                        for v in iter {
                            let mut b = st.clone();
                            b.events.push(LocalEvent {
                                kind: EvKind::Read,
                                loc: a,
                                val: v,
                                acq,
                                rel: false,
                                addr_deps: ad.clone(),
                                data_deps: BTreeSet::new(),
                                ctrl_deps: b.ctrl.clone(),
                                rmw_read: None,
                            });
                            b.regs[dst.0 as usize] = (v, [idx].into());
                            b.excl = Some((idx, a));
                            b.pc = st.pc + 1;
                            stack.push(b);
                        }
                        st.events.push(LocalEvent {
                            kind: EvKind::Read,
                            loc: a,
                            val: first,
                            acq,
                            rel: false,
                            addr_deps: ad,
                            data_deps: BTreeSet::new(),
                            ctrl_deps: st.ctrl.clone(),
                            rmw_read: None,
                        });
                        st.regs[dst.0 as usize] = (first, [idx].into());
                        st.excl = Some((idx, a));
                    }
                    Inst::StoreEx {
                        status,
                        val,
                        addr,
                        rel,
                    } => {
                        let (a, ad) = eval_dep(&addr, &st.regs);
                        let (v, dd) = eval_dep(&val, &st.regs);
                        // Failure branch: status 1, no write event.
                        {
                            let mut b = st.clone();
                            b.regs[status.0 as usize] = (1, BTreeSet::new());
                            b.excl = None;
                            b.pc = st.pc + 1;
                            stack.push(b);
                        }
                        // Success branch only with an armed matching monitor.
                        match st.excl {
                            Some((ridx, ea)) if ea == a => {
                                st.events.push(LocalEvent {
                                    kind: EvKind::Write,
                                    loc: a,
                                    val: v,
                                    acq: false,
                                    rel,
                                    addr_deps: ad,
                                    data_deps: dd,
                                    ctrl_deps: st.ctrl.clone(),
                                    rmw_read: Some(ridx),
                                });
                                st.regs[status.0 as usize] = (0, BTreeSet::new());
                                st.excl = None;
                            }
                            _ => {
                                // No monitor: only failure is possible; the
                                // pushed failure branch covers it, so this
                                // path dies here.
                                break ThreadExit::Stuck;
                            }
                        }
                    }
                    Inst::Fence(f) => {
                        st.events.push(LocalEvent {
                            kind: EvKind::Fence(f),
                            loc: 0,
                            val: 0,
                            acq: false,
                            rel: false,
                            addr_deps: BTreeSet::new(),
                            data_deps: BTreeSet::new(),
                            ctrl_deps: st.ctrl.clone(),
                            rmw_read: None,
                        });
                    }
                    Inst::Br {
                        cond,
                        lhs,
                        rhs,
                        target,
                    } => {
                        let (l, ld) = eval_dep(&lhs, &st.regs);
                        let (r, rd) = eval_dep(&rhs, &st.regs);
                        st.ctrl.extend(ld);
                        st.ctrl.extend(rd);
                        if cond.eval(l, r) {
                            if target <= st.pc {
                                if st.fuel == 0 {
                                    self.truncated = true;
                                    break ThreadExit::Stuck;
                                }
                                st.fuel -= 1;
                            }
                            next_pc = target;
                        }
                    }
                    Inst::Jmp(target) => {
                        if target <= st.pc {
                            if st.fuel == 0 {
                                self.truncated = true;
                                break ThreadExit::Stuck;
                            }
                            st.fuel -= 1;
                        }
                        next_pc = target;
                    }
                    Inst::Oracle { dst, choices } => {
                        let mut iter = choices.into_iter();
                        let first = iter.next().expect("non-empty oracle");
                        for v in iter {
                            let mut b = st.clone();
                            b.regs[dst.0 as usize] = (v, BTreeSet::new());
                            b.pc = st.pc + 1;
                            stack.push(b);
                        }
                        st.regs[dst.0 as usize] = (first, BTreeSet::new());
                    }
                    Inst::Halt => break ThreadExit::Done,
                    Inst::Panic => break ThreadExit::Panic,
                    Inst::Nop => {}
                    Inst::LoadVirt { .. } | Inst::StoreVirt { .. } | Inst::Tlbi { .. } => {
                        return Err(AxError::Unsupported("virtual memory / TLB instructions"))
                    }
                    // Ghost instructions have no architectural effect.
                    Inst::Pull(_) | Inst::Push(_) => {}
                }
                st.pc = next_pc;
            };
            if exit == ThreadExit::Stuck {
                // Paths that exceed the unroll bound are dropped (flagged).
                continue;
            }
            paths.push(LocalPath {
                events: st.events,
                final_regs: st.regs.iter().map(|(v, _)| *v).collect(),
                exit,
            });
        }
        Ok(paths)
    }
}

/// A global event in a candidate execution.
#[derive(Debug, Clone)]
struct GEvent {
    tid: usize,
    kind: EvKind,
    loc: Addr,
    val: Val,
    acq: bool,
    rel: bool,
    /// Bitmasks of global ids of addr/data/ctrl source reads.
    addr_deps: u64,
    data_deps: u64,
    ctrl_deps: u64,
    /// Global id of the paired RMW read (for the write half).
    rmw_read: Option<usize>,
}

/// Dense relation over up to 64 events: bit `j` of `rows[i]` means `(i, j)`.
#[derive(Debug, Clone)]
struct Rel {
    rows: Vec<u64>,
}

impl Rel {
    fn new(n: usize) -> Self {
        Rel { rows: vec![0; n] }
    }

    fn add(&mut self, i: usize, j: usize) {
        self.rows[i] |= 1 << j;
    }

    fn has(&self, i: usize, j: usize) -> bool {
        self.rows[i] & (1 << j) != 0
    }

    /// Is the transitive closure irreflexive?
    fn acyclic(&self) -> bool {
        let n = self.rows.len();
        let mut m = self.rows.clone();
        for k in 0..n {
            let row_k = m[k];
            for row in m.iter_mut() {
                if *row & (1 << k) != 0 {
                    *row |= row_k;
                }
            }
        }
        (0..n).all(|i| m[i] & (1 << i) == 0)
    }
}

struct Candidate<'a> {
    events: &'a [GEvent],
    /// `rf[read] = Some(write)` or `None` for reading the initial value.
    rf: Vec<Option<usize>>,
    /// Per-location coherence position of each write.
    co_pos: Vec<usize>,
    po: Rel,
}

impl<'a> Candidate<'a> {
    fn co(&self, a: usize, b: usize) -> bool {
        self.events[a].kind == EvKind::Write
            && self.events[b].kind == EvKind::Write
            && self.events[a].loc == self.events[b].loc
            && self.co_pos[a] < self.co_pos[b]
    }

    /// `fr`: read `a` → write `b` when `a`'s source is co-before `b`.
    fn fr(&self, a: usize, b: usize) -> bool {
        if self.events[a].kind != EvKind::Read || self.events[b].kind != EvKind::Write {
            return false;
        }
        if self.events[a].loc != self.events[b].loc {
            return false;
        }
        match self.rf[a] {
            None => true, // reading the initial value: before every write
            Some(w) => w != b && self.co(w, b),
        }
    }

    /// `true` iff the candidate satisfies every axiom, counting the
    /// verdict into the per-relation `vrm-obs` counters.
    fn consistent(&self) -> bool {
        match self.rejection() {
            None => {
                OBS_ACCEPTED.add(1);
                true
            }
            Some(RejectedBy::InternalVisibility) => {
                OBS_REJ_INTERNAL.add(1);
                false
            }
            Some(RejectedBy::Atomicity) => {
                OBS_REJ_ATOMICITY.add(1);
                false
            }
            Some(RejectedBy::ExternalVisibility) => {
                OBS_REJ_EXTERNAL.add(1);
                false
            }
        }
    }

    /// The external-consistency predicate of the Armv8 axiomatic model,
    /// reporting *which* axiom rejected the candidate (`None` =
    /// consistent). Axioms are checked in their documented order, so a
    /// candidate failing several reports the first.
    fn rejection(&self) -> Option<RejectedBy> {
        let n = self.events.len();
        let ext = |a: usize, b: usize| self.events[a].tid != self.events[b].tid;
        let is_w = |e: &GEvent| e.kind == EvKind::Write;
        let is_r = |e: &GEvent| e.kind == EvKind::Read;
        let is_mem = |e: &GEvent| matches!(e.kind, EvKind::Read | EvKind::Write);

        // Internal visibility: acyclic(po-loc ∪ rf ∪ co ∪ fr).
        let mut internal = Rel::new(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (ei, ej) = (&self.events[i], &self.events[j]);
                if is_mem(ei) && is_mem(ej) && ei.loc == ej.loc && self.po.has(i, j) {
                    internal.add(i, j);
                }
                if self.rf[j] == Some(i) || self.co(i, j) || self.fr(i, j) {
                    internal.add(i, j);
                }
            }
        }
        if !internal.acyclic() {
            return Some(RejectedBy::InternalVisibility);
        }

        // Atomicity: rmw ∩ (fre; coe) = ∅.
        for w in 0..n {
            let Some(r) = self.events[w].rmw_read else {
                continue;
            };
            for x in 0..n {
                if is_w(&self.events[x]) && ext(r, x) && ext(x, w) && self.fr(r, x) && self.co(x, w)
                {
                    return Some(RejectedBy::Atomicity);
                }
            }
        }

        // External visibility: acyclic(ob).
        let mut ob = Rel::new(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // obs = rfe ∪ fre ∪ coe.
                if ((self.rf[j] == Some(i)) || self.fr(i, j) || self.co(i, j)) && ext(i, j) {
                    ob.add(i, j);
                }
            }
        }
        for j in 0..n {
            let e = &self.events[j];
            for i in 0..n {
                // dob: addr ∪ data.
                if e.addr_deps & (1 << i) != 0 || e.data_deps & (1 << i) != 0 {
                    ob.add(i, j);
                }
                // dob: ctrl; [W].
                if is_w(e) && e.ctrl_deps & (1 << i) != 0 {
                    ob.add(i, j);
                }
            }
            // dob: addr; po; [W] — a write po-after an address-dependent
            // event is ordered after the address source.
            if is_w(e) {
                for m in 0..n {
                    if self.po.has(m, j) {
                        for i in 0..n {
                            if self.events[m].addr_deps & (1 << i) != 0 {
                                ob.add(i, j);
                            }
                        }
                    }
                }
            }
            // dob: (addr ∪ data); rfi.
            if is_r(e) {
                if let Some(w) = self.rf[j] {
                    if !ext(w, j) {
                        let we = &self.events[w];
                        for i in 0..n {
                            if we.addr_deps & (1 << i) != 0 || we.data_deps & (1 << i) != 0 {
                                ob.add(i, j);
                            }
                        }
                    }
                }
            }
            // aob: rmw.
            if let Some(r) = e.rmw_read {
                ob.add(r, j);
            }
            // aob: [range(rmw)]; rfi; [A].
            if is_r(e) && e.acq {
                if let Some(w) = self.rf[j] {
                    if !ext(w, j) && self.events[w].rmw_read.is_some() {
                        ob.add(w, j);
                    }
                }
            }
        }
        // dob: (ctrl ∪ addr;po); [ISB]; po; [R].
        for f in 0..n {
            if self.events[f].kind != EvKind::Fence(Fence::Isb) {
                continue;
            }
            let mut sources: u64 = self.events[f].ctrl_deps;
            for m in 0..n {
                if self.po.has(m, f) {
                    sources |= self.events[m].addr_deps;
                }
            }
            for j in 0..n {
                if is_r(&self.events[j]) && self.po.has(f, j) {
                    for i in 0..n {
                        if sources & (1 << i) != 0 {
                            ob.add(i, j);
                        }
                    }
                }
            }
        }
        // bob.
        for i in 0..n {
            for j in 0..n {
                if i == j || !self.po.has(i, j) {
                    continue;
                }
                let (ei, ej) = (&self.events[i], &self.events[j]);
                // [A]; po.
                if is_r(ei) && ei.acq {
                    ob.add(i, j);
                }
                // po; [L].
                if is_w(ej) && ej.rel {
                    ob.add(i, j);
                }
                // [L]; po; [A].
                if is_w(ei) && ei.rel && is_r(ej) && ej.acq {
                    ob.add(i, j);
                }
                for f in 0..n {
                    if self.po.has(i, f) && self.po.has(f, j) {
                        match self.events[f].kind {
                            // po; [dmb.sy]; po.
                            EvKind::Fence(Fence::Sy) => ob.add(i, j),
                            // [R]; po; [dmb.ld]; po.
                            EvKind::Fence(Fence::Ld) if is_r(ei) => {
                                ob.add(i, j);
                            }
                            // [W]; po; [dmb.st]; po; [W].
                            EvKind::Fence(Fence::St) if is_w(ei) && is_w(ej) => {
                                ob.add(i, j);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        // bob: po; [L]; coi.
        let mut extra = Vec::new();
        for i in 0..n {
            for l in 0..n {
                let el = &self.events[l];
                if i != l && self.po.has(i, l) && is_w(el) && el.rel {
                    for j in 0..n {
                        if self.co(l, j) && !ext(l, j) {
                            extra.push((i, j));
                        }
                    }
                }
            }
        }
        for (i, j) in extra {
            ob.add(i, j);
        }
        if ob.acyclic() {
            None
        } else {
            Some(RejectedBy::ExternalVisibility)
        }
    }
}

/// Exhaustively enumerates the outcomes allowed by the Armv8 axiomatic
/// model with default bounds.
///
/// # Examples
///
/// ```
/// use vrm_memmodel::builder::ProgramBuilder;
/// use vrm_memmodel::ir::Reg;
/// use vrm_memmodel::axiomatic::enumerate_axiomatic;
///
/// // Store buffering is allowed on Armv8.
/// let (x, y) = (0x10, 0x20);
/// let mut p = ProgramBuilder::new("SB");
/// p.thread("T0", |t| {
///     t.store(x, 1, false);
///     t.load(Reg(0), y, false);
/// });
/// p.thread("T1", |t| {
///     t.store(y, 1, false);
///     t.load(Reg(0), x, false);
/// });
/// p.observe_reg("r0", 0, Reg(0));
/// p.observe_reg("r1", 1, Reg(0));
/// let o = enumerate_axiomatic(&p.build()).unwrap();
/// assert!(o.contains_binding(&[("r0", 0), ("r1", 0)]));
/// ```
pub fn enumerate_axiomatic(prog: &Program) -> Result<OutcomeSet, AxError> {
    enumerate_axiomatic_with(prog, &AxConfig::default()).map(|r| r.outcomes)
}

/// [`enumerate_axiomatic`] with explicit configuration.
pub fn enumerate_axiomatic_with(prog: &Program, cfg: &AxConfig) -> Result<AxResult, AxError> {
    let _span = vrm_obs::span!(
        "enumerate.axiomatic",
        prog = prog.name.as_str(),
        jobs = cfg.jobs
    );
    if prog.uses_vm() {
        return Err(AxError::Unsupported("virtual memory / TLB instructions"));
    }
    let va = analyze(prog, &cfg.value_cfg);
    let mut pe = PathEnum {
        prog,
        cfg,
        candidates: va.mem_values.clone(),
        truncated: va.truncated,
    };
    let mut thread_paths = Vec::new();
    for tid in 0..prog.threads.len() {
        let paths = pe.enumerate(tid)?;
        if paths.is_empty() {
            // No completed path (e.g. unconditionally stuck): no outcomes.
            return Ok(AxResult {
                outcomes: OutcomeSet::new(),
                candidates: 0,
                truncated: true,
            });
        }
        thread_paths.push(paths);
    }
    // The combo space is a product of the per-thread path counts; combo
    // index `k` decodes with thread 0 least significant, matching the
    // order the old multi-radix loop walked. The sweep is partitioned
    // over the engine's index-space workers; the candidate budget is a
    // shared atomic so `max_candidates` stays a global bound.
    let total: u64 = thread_paths.iter().map(|p| p.len() as u64).product();
    let counter = AtomicUsize::new(0);
    let ecfg = ExploreConfig::default().jobs(cfg.jobs);
    // `partition` is infallible — each chunk carries its own
    // success-or-error payload, and the first failing chunk in index
    // order wins, mirroring where the sequential loop would have
    // stopped. Exceeding the candidate budget is *truncation* (the
    // outcomes found so far are a sound subset), not an error.
    let (partials, stats) = vrm_explore::partition(total, &ecfg, |range| {
        let mut partial = AxResult {
            outcomes: OutcomeSet::new(),
            candidates: 0,
            truncated: false,
        };
        for k in range {
            if counter.load(Ordering::Relaxed) > cfg.max_candidates {
                partial.truncated = true;
                break;
            }
            let mut rem = k;
            let combo: Vec<&LocalPath> = thread_paths
                .iter()
                .map(|paths| {
                    let i = (rem % paths.len() as u64) as usize;
                    rem /= paths.len() as u64;
                    &paths[i]
                })
                .collect();
            check_combo(prog, &combo, cfg, &counter, &mut partial)?;
        }
        Ok(partial)
    });
    let mut result = AxResult {
        outcomes: OutcomeSet::new(),
        candidates: 0,
        truncated: pe.truncated,
    };
    for partial in partials {
        let partial = partial?;
        result.truncated |= partial.truncated;
        for o in partial.outcomes.iter() {
            result.outcomes.insert(o.clone());
        }
    }
    result.candidates = counter.load(Ordering::Relaxed);
    result.outcomes.stats = stats;
    result.truncated |= stats.completeness.is_truncated();
    Ok(result)
}

fn check_combo(
    prog: &Program,
    combo: &[&LocalPath],
    cfg: &AxConfig,
    counter: &AtomicUsize,
    result: &mut AxResult,
) -> Result<(), AxError> {
    let mut events: Vec<GEvent> = Vec::new();
    let mut base = vec![0usize; combo.len()];
    for (tid, path) in combo.iter().enumerate() {
        base[tid] = events.len();
        if events.len() + path.events.len() > MAX_EVENTS {
            return Err(AxError::TooManyEvents);
        }
        for ev in &path.events {
            let to_mask =
                |s: &BTreeSet<usize>| s.iter().fold(0u64, |m, &li| m | (1 << (base[tid] + li)));
            events.push(GEvent {
                tid,
                kind: ev.kind,
                loc: ev.loc,
                val: ev.val,
                acq: ev.acq,
                rel: ev.rel,
                addr_deps: to_mask(&ev.addr_deps),
                data_deps: to_mask(&ev.data_deps),
                ctrl_deps: to_mask(&ev.ctrl_deps),
                rmw_read: ev.rmw_read.map(|li| base[tid] + li),
            });
        }
    }
    let n = events.len();
    let mut po = Rel::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if events[i].tid == events[j].tid {
                po.add(i, j);
            }
        }
    }

    // Reads-from choices per read.
    let reads: Vec<usize> = (0..n).filter(|&i| events[i].kind == EvKind::Read).collect();
    let mut rf_choices: Vec<Vec<Option<usize>>> = Vec::new();
    for &r in &reads {
        let mut c = Vec::new();
        if events[r].val == prog.init_val(events[r].loc) {
            c.push(None);
        }
        for w in 0..n {
            if events[w].kind == EvKind::Write
                && events[w].loc == events[r].loc
                && events[w].val == events[r].val
            {
                c.push(Some(w));
            }
        }
        if c.is_empty() {
            return Ok(()); // no producer for this read's value
        }
        rf_choices.push(c);
    }

    // Coherence orders: permutations of same-location writes.
    let mut locs: Vec<Addr> = events
        .iter()
        .filter(|e| e.kind == EvKind::Write)
        .map(|e| e.loc)
        .collect();
    locs.sort_unstable();
    locs.dedup();
    let co_orders: Vec<Vec<Vec<usize>>> = locs
        .iter()
        .map(|&l| {
            let ws: Vec<usize> = (0..n)
                .filter(|&i| events[i].kind == EvKind::Write && events[i].loc == l)
                .collect();
            perms(&ws)
        })
        .collect();

    let mut rf_idx = vec![0usize; reads.len()];
    loop {
        let mut rf = vec![None; n];
        for (k, &r) in reads.iter().enumerate() {
            rf[r] = rf_choices[k][rf_idx[k]];
        }
        let radix: Vec<usize> = co_orders.iter().map(|o| o.len().max(1)).collect();
        let mut co_idx = vec![0usize; co_orders.len()];
        loop {
            result.candidates += 1;
            if counter.fetch_add(1, Ordering::Relaxed) + 1 > cfg.max_candidates {
                // Budget exhausted: stop this combo and report the
                // outcomes found so far as a truncated (sound subset)
                // result rather than erroring.
                result.truncated = true;
                return Ok(());
            }
            let mut co_pos = vec![0usize; n];
            for (li, order) in co_orders.iter().enumerate() {
                if order.is_empty() {
                    continue;
                }
                for (pos, &w) in order[co_idx[li]].iter().enumerate() {
                    co_pos[w] = pos;
                }
            }
            let cand = Candidate {
                events: &events,
                rf: rf.clone(),
                co_pos,
                po: po.clone(),
            };
            if cand.consistent() {
                record_outcome(prog, combo, &events, &cand, result);
            }
            if !advance(&mut co_idx, &radix) {
                break;
            }
        }
        let rf_radix: Vec<usize> = rf_choices.iter().map(|c| c.len()).collect();
        if !advance(&mut rf_idx, &rf_radix) {
            break;
        }
    }
    Ok(())
}

/// Multi-radix counter increment; returns `false` on wrap-around.
fn advance(idx: &mut [usize], radix: &[usize]) -> bool {
    for i in 0..idx.len() {
        idx[i] += 1;
        if idx[i] < radix[i] {
            return true;
        }
        idx[i] = 0;
    }
    false
}

fn perms(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![];
    }
    if items.len() == 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut p in perms(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

fn record_outcome(
    prog: &Program,
    combo: &[&LocalPath],
    events: &[GEvent],
    cand: &Candidate<'_>,
    result: &mut AxResult,
) {
    let values = prog
        .observables
        .iter()
        .map(|o| match o {
            Observable::Reg { name, tid, reg } => {
                (name.clone(), combo[*tid].final_regs[reg.0 as usize])
            }
            Observable::Mem { name, addr } => {
                let mut best: Option<usize> = None;
                for (i, e) in events.iter().enumerate() {
                    if e.kind == EvKind::Write && e.loc == *addr {
                        best = match best {
                            None => Some(i),
                            Some(b) if cand.co(b, i) => Some(i),
                            b => b,
                        };
                    }
                }
                let v = best
                    .map(|i| events[i].val)
                    .unwrap_or_else(|| prog.init_val(*addr));
                (name.clone(), v)
            }
        })
        .collect();
    let exits = combo.iter().map(|p| p.exit).collect();
    result.outcomes.insert(Outcome { values, exits });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ProgramBuilder, ThreadBuilder};
    use crate::ir::{BinOp, Cond, Reg};

    const X: u64 = 0x10;
    const Y: u64 = 0x20;

    fn two_thread(
        name: &str,
        f0: impl FnOnce(&mut ThreadBuilder),
        f1: impl FnOnce(&mut ThreadBuilder),
    ) -> ProgramBuilder {
        let mut p = ProgramBuilder::new(name);
        p.thread("T0", f0);
        p.thread("T1", f1);
        p
    }

    #[test]
    fn sb_allows_both_zero() {
        let mut p = two_thread(
            "SB",
            |t| {
                t.store(X, 1u64, false);
                t.load(Reg(0), Y, false);
            },
            |t| {
                t.store(Y, 1u64, false);
                t.load(Reg(0), X, false);
            },
        );
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(0));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(o.contains_binding(&[("r0", 0), ("r1", 0)]));
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn sb_dmb_forbids_both_zero() {
        let mut p = two_thread(
            "SB+dmbs",
            |t| {
                t.store(X, 1u64, false);
                t.dmb();
                t.load(Reg(0), Y, false);
            },
            |t| {
                t.store(Y, 1u64, false);
                t.dmb();
                t.load(Reg(0), X, false);
            },
        );
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(0));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.contains_binding(&[("r0", 0), ("r1", 0)]));
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn mp_plain_allows_stale() {
        let mut p = two_thread(
            "MP",
            |t| {
                t.store(X, 42u64, false);
                t.store(Y, 1u64, false);
            },
            |t| {
                t.load(Reg(0), Y, false);
                t.load(Reg(1), X, false);
            },
        );
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(o.contains_binding(&[("f", 1), ("d", 0)]));
    }

    #[test]
    fn mp_addr_dependency_forbids_stale() {
        let mut p = two_thread(
            "MP+dmb+addr",
            |t| {
                t.store(X, 42u64, false);
                t.dmb();
                t.store(Y, 1u64, false);
            },
            |t| {
                t.load(Reg(0), Y, false);
                // Address depends on r0 (value-invariantly), a real addr dep.
                t.load(
                    Reg(1),
                    Expr::bin(
                        BinOp::Add,
                        Expr::Imm(X),
                        Expr::bin(BinOp::Mul, Expr::Reg(Reg(0)), Expr::Imm(0)),
                    ),
                    false,
                );
            },
        );
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.contains_binding(&[("f", 1), ("d", 0)]));
    }

    #[test]
    fn mp_rel_acq_forbids_stale() {
        let mut p = two_thread(
            "MP+rel+acq",
            |t| {
                t.store(X, 42u64, false);
                t.store(Y, 1u64, true);
            },
            |t| {
                t.load(Reg(0), Y, true);
                t.load(Reg(1), X, false);
            },
        );
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.contains_binding(&[("f", 1), ("d", 0)]));
    }

    #[test]
    fn lb_allowed_plain_forbidden_with_data_deps() {
        let mut p = two_thread(
            "LB",
            |t| {
                t.load(Reg(0), X, false);
                t.store(Y, 1u64, false);
            },
            |t| {
                t.load(Reg(1), Y, false);
                t.store(X, 1u64, false);
            },
        );
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(o.contains_binding(&[("r0", 1), ("r1", 1)]));

        let mut p = two_thread(
            "LB+datas",
            |t| {
                t.load(Reg(0), X, false);
                t.store(Y, Reg(0), false);
            },
            |t| {
                t.load(Reg(1), Y, false);
                t.store(X, Reg(1), false);
            },
        );
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.contains_binding(&[("r0", 1), ("r1", 1)]));
    }

    #[test]
    fn corr_coherence() {
        let mut p = two_thread(
            "CoRR",
            |t| {
                t.store(X, 1u64, false);
            },
            |t| {
                t.load(Reg(0), X, false);
                t.load(Reg(1), X, false);
            },
        );
        p.observe_reg("a", 1, Reg(0));
        p.observe_reg("b", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.contains_binding(&[("a", 1), ("b", 0)]));
    }

    #[test]
    fn atomicity_of_rmw() {
        let mut p = ProgramBuilder::new("2-inc");
        for _ in 0..2 {
            p.thread("t", |t| {
                t.fetch_and_inc_acq(Reg(0), X);
            });
        }
        p.observe_reg("a", 0, Reg(0));
        p.observe_reg("b", 1, Reg(0));
        p.observe_mem("x", X);
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.is_empty());
        for oc in o.iter() {
            assert_eq!(oc.get("x"), 2, "lost update: {oc}");
            assert_ne!(oc.get("a"), oc.get("b"), "duplicate ticket: {oc}");
        }
    }

    #[test]
    fn vm_programs_rejected() {
        let mut p = ProgramBuilder::new("vm");
        p.vm(crate::ir::VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        });
        p.thread("T0", |t| {
            t.load_virt(Reg(0), 0u64, false);
        });
        assert!(matches!(
            enumerate_axiomatic(&p.build()),
            Err(AxError::Unsupported(_))
        ));
    }

    #[test]
    fn ctrl_dependency_does_not_order_reads() {
        // Example 2's speculation: a control dependency does not order a
        // later *read*.
        let mut p = two_thread(
            "MP+ctrl",
            |t| {
                t.store(X, 42u64, false);
                t.store(Y, 1u64, false);
            },
            |t| {
                t.load(Reg(0), Y, false);
                t.br(Cond::Ne, Reg(0), 1u64, "end");
                t.load(Reg(1), X, false);
                t.label("end");
                t.inst(Inst::Halt);
            },
        );
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(o.contains_binding(&[("f", 1), ("d", 0)]));
    }

    #[test]
    fn ctrl_isb_orders_reads() {
        let mut p = two_thread(
            "MP+dmb+ctrl-isb",
            |t| {
                t.store(X, 42u64, false);
                t.dmb();
                t.store(Y, 1u64, false);
            },
            |t| {
                t.load(Reg(0), Y, false);
                t.br(Cond::Ne, Reg(0), 1u64, "end");
                t.fence(Fence::Isb);
                t.load(Reg(1), X, false);
                t.label("end");
                t.inst(Inst::Halt);
            },
        );
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.contains_binding(&[("f", 1), ("d", 0)]));
    }

    #[test]
    fn ctrl_dependency_orders_writes() {
        let mut p = two_thread(
            "LB+ctrls",
            |t| {
                t.load(Reg(0), X, false);
                t.br(Cond::Eq, Reg(0), 99u64, "skip");
                t.store(Y, 1u64, false);
                t.label("skip");
                t.inst(Inst::Halt);
            },
            |t| {
                t.load(Reg(1), Y, false);
                t.br(Cond::Eq, Reg(1), 99u64, "skip");
                t.store(X, 1u64, false);
                t.label("skip");
                t.inst(Inst::Halt);
            },
        );
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let o = enumerate_axiomatic(&p.build()).unwrap();
        assert!(!o.contains_binding(&[("r0", 1), ("r1", 1)]));
    }
}
