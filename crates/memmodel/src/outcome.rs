//! Observable execution outcomes and outcome sets.
//!
//! An [`Outcome`] is what the VRM paper calls an *execution result*: the
//! final values of the declared observables plus how each thread exited.
//! Model comparisons ("any behavior on RM is also observable on SC") are
//! stated as subset/equality relations between [`OutcomeSet`]s.

use std::collections::BTreeSet;
use std::fmt;

use vrm_explore::ExploreStats;

use crate::ir::Val;

/// How a thread finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadExit {
    /// Ran to completion (end of code or `Halt`).
    Done,
    /// Took a translation fault on a virtual access.
    Fault,
    /// Executed [`Inst::Panic`](crate::ir::Inst::Panic).
    Panic,
    /// Never finished within the exploration (e.g. stuck spinning).
    Stuck,
}

impl fmt::Display for ThreadExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadExit::Done => write!(f, "done"),
            ThreadExit::Fault => write!(f, "fault"),
            ThreadExit::Panic => write!(f, "panic"),
            ThreadExit::Stuck => write!(f, "stuck"),
        }
    }
}

/// One observable execution result.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Outcome {
    /// `(name, value)` pairs in the program's observable order.
    pub values: Vec<(String, Val)>,
    /// Exit status per thread.
    pub exits: Vec<ThreadExit>,
}

impl Outcome {
    /// Returns the value of a named observable.
    ///
    /// # Panics
    ///
    /// Panics if no observable has that name.
    pub fn get(&self, name: &str) -> Val {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no observable named {name}"))
            .1
    }

    /// Returns `true` if any thread faulted.
    pub fn any_fault(&self) -> bool {
        self.exits.contains(&ThreadExit::Fault)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, v) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
            first = false;
        }
        for (i, e) in self.exits.iter().enumerate() {
            if *e != ThreadExit::Done {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "T{i}:{e}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// A set of outcomes, i.e. the observable behaviour of a program on a model.
#[derive(Debug, Clone, Default)]
pub struct OutcomeSet {
    set: BTreeSet<Outcome>,
    /// Counters from the enumeration that produced this set (states
    /// visited, frontier peak, wall time, worker count).
    pub stats: ExploreStats,
}

/// Equality is over the outcomes only: two enumerations (say sequential
/// and parallel) exhibit the same behaviour iff their outcome sets
/// match, regardless of how the walk went.
impl PartialEq for OutcomeSet {
    fn eq(&self, other: &Self) -> bool {
        self.set == other.set
    }
}

impl Eq for OutcomeSet {}

impl OutcomeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an outcome; returns `true` if it was new.
    pub fn insert(&mut self, o: Outcome) -> bool {
        self.set.insert(o)
    }

    /// Number of distinct outcomes.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` if no outcome was recorded.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates over the outcomes in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Outcome> {
        self.set.iter()
    }

    /// Returns `true` if `self` is a subset of `other`.
    pub fn is_subset(&self, other: &OutcomeSet) -> bool {
        self.set.is_subset(&other.set)
    }

    /// Returns the outcomes present in `self` but not in `other`.
    pub fn difference(&self, other: &OutcomeSet) -> Vec<Outcome> {
        self.set.difference(&other.set).cloned().collect()
    }

    /// Returns `true` if any outcome satisfies the predicate.
    pub fn any(&self, f: impl Fn(&Outcome) -> bool) -> bool {
        self.set.iter().any(f)
    }

    /// Returns `true` if the set contains an outcome with the given
    /// `(name, value)` bindings (other observables unconstrained).
    pub fn contains_binding(&self, bindings: &[(&str, Val)]) -> bool {
        self.any(|o| bindings.iter().all(|(n, v)| o.get(n) == *v))
    }

    /// `true` iff the enumeration behind this set was cut short by a
    /// budget, in which case the set is a sound *subset* of the model's
    /// behaviour and any verdict comparing it must be `Unknown`.
    pub fn truncated(&self) -> bool {
        self.stats.completeness.is_truncated()
    }
}

impl fmt::Display for OutcomeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.set {
            writeln!(f, "  {o}")?;
        }
        Ok(())
    }
}

impl FromIterator<Outcome> for OutcomeSet {
    fn from_iter<T: IntoIterator<Item = Outcome>>(iter: T) -> Self {
        OutcomeSet {
            set: iter.into_iter().collect(),
            stats: ExploreStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(vals: &[(&str, Val)]) -> Outcome {
        Outcome {
            values: vals.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            exits: vec![ThreadExit::Done],
        }
    }

    #[test]
    fn subset_and_difference() {
        let a: OutcomeSet = [out(&[("x", 0)]), out(&[("x", 1)])].into_iter().collect();
        let b: OutcomeSet = [out(&[("x", 0)]), out(&[("x", 1)]), out(&[("x", 2)])]
            .into_iter()
            .collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(b.difference(&a), vec![out(&[("x", 2)])]);
    }

    #[test]
    fn contains_binding() {
        let a: OutcomeSet = [out(&[("x", 0), ("y", 1)])].into_iter().collect();
        assert!(a.contains_binding(&[("x", 0)]));
        assert!(a.contains_binding(&[("x", 0), ("y", 1)]));
        assert!(!a.contains_binding(&[("x", 1)]));
    }

    #[test]
    fn display_outcome() {
        let o = Outcome {
            values: vec![("r0".into(), 1), ("r1".into(), 0)],
            exits: vec![ThreadExit::Done, ThreadExit::Fault],
        };
        assert_eq!(o.to_string(), "r0=1, r1=0, T1:fault");
    }
}
