//! Litmus-test battery and cross-model conformance harness.
//!
//! The VRM paper builds on the machine-checked equivalence between the
//! Promising Arm operational model and the Armv8 axiomatic model. This
//! reproduction instead validates its two independent implementations
//! against each other: for every test in [`battery`] the outcome sets of
//! [`promising`](crate::promising) and [`axiomatic`](crate::axiomatic) must
//! coincide, and the SC outcomes must always be a subset of both.

use crate::axiomatic::{enumerate_axiomatic_with, AxConfig};
use crate::builder::ProgramBuilder;
use crate::ir::{BinOp, Cond, Expr, Fence, Inst, Program, Reg, RmwOp, Val};
use crate::outcome::OutcomeSet;
use crate::promising::{enumerate_promising_with, PromisingConfig};
use crate::sc::{enumerate_sc, enumerate_sc_with, ExploreError, ScConfig};
use vrm_explore::{Coverage, TruncationReason, Verdict};

const X: u64 = 0x10;
const Y: u64 = 0x20;
const Z: u64 = 0x30;

/// A named litmus test with its expected relaxed-memory verdict.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// The program (threads + observables).
    pub program: Program,
    /// The interesting (relaxed) final condition, as observable bindings.
    pub condition: Vec<(&'static str, Val)>,
    /// `true` if Armv8 allows the condition, `false` if it forbids it.
    pub allowed_on_arm: bool,
    /// `true` if SC allows the condition.
    pub allowed_on_sc: bool,
}

impl LitmusTest {
    /// The test's display name.
    pub fn name(&self) -> &str {
        &self.program.name
    }
}

/// Result of checking one litmus test across all three models.
#[derive(Debug, Clone)]
pub struct Conformance {
    /// Test name.
    pub name: String,
    /// Outcomes on SC.
    pub sc: OutcomeSet,
    /// Outcomes on the Promising Arm operational model.
    pub promising: OutcomeSet,
    /// Outcomes on the Armv8 axiomatic model.
    pub axiomatic: OutcomeSet,
    /// Did the operational and axiomatic outcome sets coincide?
    pub models_agree: bool,
    /// Was SC a subset of the relaxed models?
    pub sc_subsumed: bool,
    /// Did the verdicts match the test's expectations?
    pub verdicts_match: bool,
    /// Was any of the three enumerations cut short by a budget? When
    /// `true` the outcome sets are sound *subsets* and every cross-model
    /// comparison above is inconclusive rather than pass/fail.
    pub truncated: bool,
}

impl Conformance {
    /// `true` if every check passed.
    ///
    /// Note this is only meaningful when [`truncated`](Self::truncated)
    /// is `false`; callers that need the sound three-valued answer
    /// should use [`verdict`](Self::verdict).
    pub fn ok(&self) -> bool {
        self.models_agree && self.sc_subsumed && self.verdicts_match
    }

    /// Sound three-valued verdict: `Unknown` whenever any model's
    /// enumeration was truncated (a missing outcome could flip any of
    /// the subset/equality checks in either direction), otherwise
    /// `Pass`/`Fail` per [`ok`](Self::ok).
    pub fn verdict(&self) -> Verdict {
        if self.truncated {
            let mut stats = self.sc.stats;
            stats.absorb(&self.promising.stats);
            stats.absorb(&self.axiomatic.stats);
            // Axiomatic candidate-budget truncation is flagged out of
            // band; synthesize a coverage if the walk stats alone look
            // exhaustive.
            let coverage = Coverage::from_stats(&stats).unwrap_or(Coverage {
                states: stats.states,
                frontier_len: 0,
                reason: TruncationReason::StateLimit,
            });
            Verdict::Unknown { coverage }
        } else if self.ok() {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }
}

/// Runs one litmus test through all three models and cross-checks them.
pub fn check(test: &LitmusTest) -> Result<Conformance, ExploreError> {
    let sc = enumerate_sc(&test.program)?;
    let pr = enumerate_promising_with(&test.program, &PromisingConfig::default())
        .expect("promising enumeration");
    let ax = enumerate_axiomatic_with(&test.program, &AxConfig::default())
        .expect("axiomatic enumeration");
    let truncated = pr.truncated || ax.truncated;
    conformance(test, sc, pr.outcomes, ax.outcomes, truncated)
}

/// [`check`] with an explicit worker count for all three enumerations,
/// overriding the configs' `VRM_JOBS` default. The conformance gate runs
/// this at `jobs = 1` and `jobs > 1` and requires identical results.
pub fn check_with_jobs(test: &LitmusTest, jobs: usize) -> Result<Conformance, ExploreError> {
    let sc = enumerate_sc_with(
        &test.program,
        &ScConfig {
            jobs,
            ..ScConfig::default()
        },
    )?;
    let pr = enumerate_promising_with(
        &test.program,
        &PromisingConfig {
            jobs,
            ..PromisingConfig::default()
        },
    )
    .expect("promising enumeration");
    let ax = enumerate_axiomatic_with(
        &test.program,
        &AxConfig {
            jobs,
            ..AxConfig::default()
        },
    )
    .expect("axiomatic enumeration");
    let truncated = pr.truncated || ax.truncated;
    conformance(test, sc, pr.outcomes, ax.outcomes, truncated)
}

fn conformance(
    test: &LitmusTest,
    sc: OutcomeSet,
    pr: OutcomeSet,
    ax: OutcomeSet,
    models_truncated: bool,
) -> Result<Conformance, ExploreError> {
    let models_agree = pr == ax;
    let sc_subsumed = sc.is_subset(&pr) && sc.is_subset(&ax);
    let on_arm = pr.contains_binding(&test.condition);
    let on_sc = sc.contains_binding(&test.condition);
    let verdicts_match = on_arm == test.allowed_on_arm && on_sc == test.allowed_on_sc;
    let truncated = models_truncated || sc.truncated() || pr.truncated() || ax.truncated();
    Ok(Conformance {
        name: test.name().to_string(),
        sc,
        promising: pr,
        axiomatic: ax,
        models_agree,
        sc_subsumed,
        verdicts_match,
        truncated,
    })
}

fn obs2(p: &mut ProgramBuilder, a: (&str, usize, Reg), b: (&str, usize, Reg)) {
    p.observe_reg(a.0, a.1, a.2);
    p.observe_reg(b.0, b.1, b.2);
}

/// Artificial but architecturally real address dependency: `base + 0 * reg`.
fn addr_dep(base: u64, r: Reg) -> Expr {
    Expr::bin(
        BinOp::Add,
        Expr::Imm(base),
        Expr::bin(BinOp::Mul, Expr::Reg(r), Expr::Imm(0)),
    )
}

/// The standard litmus battery used for cross-model conformance.
///
/// Names follow the herd7 conventions (`SB`, `MP`, `LB`, `S`, `R`, `WRC`,
/// `ISA2`, coherence shapes `CoRR`/`CoWW`/`CoWR`, and barrier/dependency
/// variants).
pub fn battery() -> Vec<LitmusTest> {
    let mut tests = Vec::new();

    // --- Store buffering -------------------------------------------------
    {
        let mut p = ProgramBuilder::new("SB");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.load(Reg(0), Y, false);
        });
        p.thread("T1", |t| {
            t.store(Y, 1u64, false);
            t.load(Reg(0), X, false);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(0)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 0), ("r1", 0)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("SB+dmbs");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.load(Reg(0), Y, false);
        });
        p.thread("T1", |t| {
            t.store(Y, 1u64, false);
            t.dmb();
            t.load(Reg(0), X, false);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(0)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 0), ("r1", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- Message passing -------------------------------------------------
    {
        let mut p = ProgramBuilder::new("MP");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.load(Reg(1), X, false);
        });
        obs2(&mut p, ("f", 1, Reg(0)), ("d", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("f", 1), ("d", 0)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("MP+dmb+addr");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.load(Reg(1), addr_dep(X, Reg(0)), false);
        });
        obs2(&mut p, ("f", 1, Reg(0)), ("d", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("f", 1), ("d", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("MP+rel+acq");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.store(Y, 1u64, true);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, true);
            t.load(Reg(1), X, false);
        });
        obs2(&mut p, ("f", 1, Reg(0)), ("d", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("f", 1), ("d", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("MP+dmb+ctrl");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.br(Cond::Ne, Reg(0), Reg(0), "never");
            t.load(Reg(1), X, false);
            t.label("never");
            t.inst(Inst::Halt);
        });
        obs2(&mut p, ("f", 1, Reg(0)), ("d", 1, Reg(1)));
        // ctrl does not order read-read: still allowed.
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("f", 1), ("d", 0)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("MP+dmb+ctrl-isb");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.br(Cond::Ne, Reg(0), Reg(0), "never");
            t.fence(Fence::Isb);
            t.load(Reg(1), X, false);
            t.label("never");
            t.inst(Inst::Halt);
        });
        obs2(&mut p, ("f", 1, Reg(0)), ("d", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("f", 1), ("d", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- Load buffering --------------------------------------------------
    {
        let mut p = ProgramBuilder::new("LB");
        p.thread("T0", |t| {
            t.load(Reg(0), X, false);
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), Y, false);
            t.store(X, 1u64, false);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1), ("r1", 1)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("LB+datas");
        p.thread("T0", |t| {
            t.load(Reg(0), X, false);
            t.store(Y, Reg(0), false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), Y, false);
            t.store(X, Reg(1), false);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1), ("r1", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("LB+dmbs");
        p.thread("T0", |t| {
            t.load(Reg(0), X, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), Y, false);
            t.dmb();
            t.store(X, 1u64, false);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1), ("r1", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- Coherence shapes ------------------------------------------------
    {
        let mut p = ProgramBuilder::new("CoRR");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), X, false);
            t.load(Reg(1), X, false);
        });
        obs2(&mut p, ("a", 1, Reg(0)), ("b", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("a", 1), ("b", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("CoWW");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.store(X, 2u64, false);
        });
        p.observe_mem("x", X);
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("x", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("CoWR");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.load(Reg(0), X, false);
        });
        p.thread("T1", |t| {
            t.store(X, 2u64, false);
        });
        p.observe_reg("r0", 0, Reg(0));
        // Reading the initial value after own store is forbidden.
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- S and R ----------------------------------------------------------
    {
        let mut p = ProgramBuilder::new("S+dmb+data");
        p.thread("T0", |t| {
            t.store(X, 2u64, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.store(X, Reg(0), false); // writes 1 when it read 1
        });
        p.observe_reg("r0", 1, Reg(0));
        p.observe_mem("x", X);
        // S: T1 read y=1 yet its dependent store is co-before x=2.
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1), ("x", 2)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("R");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.store(Y, 2u64, false);
            t.load(Reg(0), X, false);
        });
        p.observe_reg("r1", 1, Reg(0));
        p.observe_mem("y", Y);
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r1", 0), ("y", 2)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("R+dmbs");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.store(Y, 2u64, false);
            t.dmb();
            t.load(Reg(0), X, false);
        });
        p.observe_reg("r1", 1, Reg(0));
        p.observe_mem("y", Y);
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r1", 0), ("y", 2)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- Multi-copy atomicity (WRC, ISA2) ---------------------------------
    {
        let mut p = ProgramBuilder::new("WRC+addrs");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), X, false);
            t.store(Y, Reg(0), false);
        });
        p.thread("T2", |t| {
            t.load(Reg(1), Y, false);
            t.load(Reg(2), addr_dep(X, Reg(1)), false);
        });
        p.observe_reg("r1", 2, Reg(1));
        p.observe_reg("r2", 2, Reg(2));
        // Armv8 is multi-copy atomic: forbidden with dependencies.
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r1", 1), ("r2", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("ISA2+dmb+addrs");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.store(Z, Reg(0), false);
        });
        p.thread("T2", |t| {
            t.load(Reg(1), Z, false);
            t.load(Reg(2), addr_dep(X, Reg(1)), false);
        });
        p.observe_reg("rz", 2, Reg(1));
        p.observe_reg("rx", 2, Reg(2));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("rz", 1), ("rx", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- 2+2W --------------------------------------------------------------
    {
        let mut p = ProgramBuilder::new("2+2W");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.store(Y, 2u64, false);
        });
        p.thread("T1", |t| {
            t.store(Y, 1u64, false);
            t.store(X, 2u64, false);
        });
        p.observe_mem("x", X);
        p.observe_mem("y", Y);
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("x", 1), ("y", 1)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("2+2W+dmbs");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.store(Y, 2u64, false);
        });
        p.thread("T1", |t| {
            t.store(Y, 1u64, false);
            t.dmb();
            t.store(X, 2u64, false);
        });
        p.observe_mem("x", X);
        p.observe_mem("y", Y);
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("x", 1), ("y", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- dmb.ld / dmb.st variants ------------------------------------------
    {
        let mut p = ProgramBuilder::new("MP+dmb.st+dmb.ld");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.fence(Fence::St);
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.fence(Fence::Ld);
            t.load(Reg(1), X, false);
        });
        obs2(&mut p, ("f", 1, Reg(0)), ("d", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("f", 1), ("d", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        let mut p = ProgramBuilder::new("SB+dmb.lds");
        // dmb.ld does not order store→load: SB stays allowed.
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.fence(Fence::Ld);
            t.load(Reg(0), Y, false);
        });
        p.thread("T1", |t| {
            t.store(Y, 1u64, false);
            t.fence(Fence::Ld);
            t.load(Reg(0), X, false);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(0)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 0), ("r1", 0)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }

    // --- IRIW: independent reads of independent writes -------------------
    {
        // Armv8 is multicopy-atomic: with dmb'd readers IRIW is forbidden.
        let mut p = ProgramBuilder::new("IRIW+dmbs");
        p.thread("W0", |t| {
            t.store(X, 1u64, false);
        });
        p.thread("W1", |t| {
            t.store(Y, 1u64, false);
        });
        p.thread("R0", |t| {
            t.load(Reg(0), X, false);
            t.dmb();
            t.load(Reg(1), Y, false);
        });
        p.thread("R1", |t| {
            t.load(Reg(0), Y, false);
            t.dmb();
            t.load(Reg(1), X, false);
        });
        p.observe_reg("r0x", 2, Reg(0));
        p.observe_reg("r0y", 2, Reg(1));
        p.observe_reg("r1y", 3, Reg(0));
        p.observe_reg("r1x", 3, Reg(1));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0x", 1), ("r0y", 0), ("r1y", 1), ("r1x", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        // Without barriers the readers' loads reorder: allowed, and for
        // the mundane reason of local reordering rather than
        // non-multicopy-atomicity.
        let mut p = ProgramBuilder::new("IRIW");
        p.thread("W0", |t| {
            t.store(X, 1u64, false);
        });
        p.thread("W1", |t| {
            t.store(Y, 1u64, false);
        });
        p.thread("R0", |t| {
            t.load(Reg(0), X, false);
            t.load(Reg(1), Y, false);
        });
        p.thread("R1", |t| {
            t.load(Reg(0), Y, false);
            t.load(Reg(1), X, false);
        });
        p.observe_reg("r0x", 2, Reg(0));
        p.observe_reg("r0y", 2, Reg(1));
        p.observe_reg("r1y", 3, Reg(0));
        p.observe_reg("r1x", 3, Reg(1));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0x", 1), ("r0y", 0), ("r1y", 1), ("r1x", 0)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }

    // --- RWC: read-to-write causality -------------------------------------
    {
        let mut p = ProgramBuilder::new("RWC+dmbs");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), X, false);
            t.dmb();
            t.load(Reg(1), Y, false);
        });
        p.thread("T2", |t| {
            t.store(Y, 1u64, false);
            t.dmb();
            t.load(Reg(0), X, false);
        });
        p.observe_reg("a", 1, Reg(0));
        p.observe_reg("b", 1, Reg(1));
        p.observe_reg("c", 2, Reg(0));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("a", 1), ("b", 0), ("c", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- SB with release/acquire ------------------------------------------
    {
        // Armv8's STLR/LDAR pair is RCsc: a release store is ordered
        // before a program-order-later acquire load ([L];po;[A] in bob),
        // so unlike C11's RCpc semantics this SB variant is FORBIDDEN.
        let mut p = ProgramBuilder::new("SB+rel+acq");
        p.thread("T0", |t| {
            t.store(X, 1u64, true);
            t.load(Reg(0), Y, true);
        });
        p.thread("T1", |t| {
            t.store(Y, 1u64, true);
            t.load(Reg(0), X, true);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(0)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 0), ("r1", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- Coherence read-write shapes --------------------------------------
    {
        // CoRW1: a read then write by one thread to the same location
        // cannot observe its own future write.
        let mut p = ProgramBuilder::new("CoRW1");
        p.thread("T0", |t| {
            t.load(Reg(0), X, false);
            t.store(X, 1u64, false);
        });
        p.observe_reg("r0", 0, Reg(0));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        // CoWR: a read after own write must not see an older external
        // write that is co-after its own.
        let mut p = ProgramBuilder::new("CoRW2");
        p.thread("T0", |t| {
            t.load(Reg(0), X, false);
            t.store(X, 2u64, false);
        });
        p.thread("T1", |t| {
            t.store(X, 1u64, false);
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_mem("x", X);
        // Reading 1 then having the final value be 1 means T0's store is
        // co-before T1's, yet T0 read T1's: a coherence cycle.
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1), ("x", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- Release-chain transitivity ---------------------------------------
    {
        // ISA2 with release stores and acquire loads: cumulativity through
        // a chain of rel->acq synchronization is guaranteed.
        let mut p = ProgramBuilder::new("ISA2+rel+acqs");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.store(Y, 1u64, true);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, true);
            t.store(Z, Reg(0), true);
        });
        p.thread("T2", |t| {
            t.load(Reg(1), Z, true);
            t.load(Reg(2), X, false);
        });
        p.observe_reg("rz", 2, Reg(1));
        p.observe_reg("rx", 2, Reg(2));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("rz", 1), ("rx", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- PPOCA-style: speculative write forwarding ------------------------
    {
        // A ctrl-dependent store may be forwarded to a subsequent load of
        // the same location before the branch resolves; the addr-dependent
        // load after it can still read stale data. Allowed on Arm.
        let mut p = ProgramBuilder::new("PPOCA");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.dmb();
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.br(Cond::Ne, Reg(0), Reg(0), "never");
            t.store(Z, 1u64, false);
            t.load(Reg(1), Z, false);
            t.load(Reg(2), addr_dep(X, Reg(1)), false);
            t.label("never");
            t.inst(Inst::Halt);
        });
        p.observe_reg("ry", 1, Reg(0));
        p.observe_reg("rx", 1, Reg(2));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("ry", 1), ("rx", 0)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }

    // --- RMW-enforced ordering ---------------------------------------------
    {
        // MP where the flag is an acquire RMW on the reader side: ordered.
        let mut p = ProgramBuilder::new("MP+rel+rmw.acq");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.store(Y, 1u64, true);
        });
        p.thread("T1", |t| {
            t.rmw(Reg(0), Y, RmwOp::Add, 0u64, true, false);
            t.load(Reg(1), X, false);
        });
        obs2(&mut p, ("f", 1, Reg(0)), ("d", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("f", 1), ("d", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }

    // --- Acquire ordering of later stores ----------------------------------
    {
        // LB with acquire loads: [A];po orders the stores after the loads,
        // so the cycle is forbidden even without dmb.
        let mut p = ProgramBuilder::new("LB+acqs");
        p.thread("T0", |t| {
            t.load(Reg(0), X, true);
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), Y, true);
            t.store(X, 1u64, false);
        });
        obs2(&mut p, ("r0", 0, Reg(0)), ("r1", 1, Reg(1)));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1), ("r1", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        // S without barriers: the writer's stores may reorder, so the
        // dependent-write shape is allowed.
        let mut p = ProgramBuilder::new("S");
        p.thread("T0", |t| {
            t.store(X, 2u64, false);
            t.store(Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), Y, false);
            t.store(X, Reg(0), false);
        });
        p.observe_reg("r0", 1, Reg(0));
        p.observe_mem("x", X);
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("r0", 1), ("x", 2)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }

    // --- Load/store exclusives (LDXR/STXR) --------------------------------
    {
        // Two racing exclusive increments: if both succeed, the updates
        // cannot be lost (x must be 2). Lost update is forbidden.
        let mut p = ProgramBuilder::new("EX-atomic-inc");
        for _ in 0..2 {
            p.thread("t", |t| {
                t.load_ex(Reg(0), X, false);
                t.store_ex(Reg(1), X, Expr::Reg(Reg(0)) + Expr::Imm(1), false);
            });
        }
        p.observe_reg("s0", 0, Reg(1));
        p.observe_reg("s1", 1, Reg(1));
        p.observe_mem("x", X);
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("s0", 0), ("s1", 0), ("x", 1)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        // MP where the flag publication is a successful STLXR and the
        // observation an LDAXR: ordered like rel/acq.
        let mut p = ProgramBuilder::new("MP+stlxr+ldaxr");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.load_ex(Reg(0), Y, false);
            t.store_ex(Reg(1), Y, 1u64, true);
        });
        p.thread("T1", |t| {
            t.load_ex(Reg(0), Y, true);
            t.load(Reg(1), X, false);
        });
        p.observe_reg("s", 0, Reg(1));
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("s", 0), ("f", 1), ("d", 0)],
            allowed_on_arm: false,
            allowed_on_sc: false,
        });
    }
    {
        // Plain-exclusive MP: without acquire/release on the exclusives
        // the stale read stays allowed.
        let mut p = ProgramBuilder::new("MP+stxr+ldxr");
        p.thread("T0", |t| {
            t.store(X, 1u64, false);
            t.load_ex(Reg(0), Y, false);
            t.store_ex(Reg(1), Y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load_ex(Reg(0), Y, false);
            t.load(Reg(1), X, false);
        });
        p.observe_reg("s", 0, Reg(1));
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        tests.push(LitmusTest {
            program: p.build(),
            condition: vec![("s", 0), ("f", 1), ("d", 0)],
            allowed_on_arm: true,
            allowed_on_sc: false,
        });
    }

    tests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_is_nontrivial() {
        let b = battery();
        assert!(b.len() >= 15);
        // Some tests allowed on Arm, some forbidden.
        assert!(b.iter().any(|t| t.allowed_on_arm));
        assert!(b.iter().any(|t| !t.allowed_on_arm));
        // Nothing is SC-allowed in this battery (all conditions are the
        // relaxed outcomes).
        assert!(b.iter().all(|t| !t.allowed_on_sc));
    }

    #[test]
    fn under_budgeted_check_is_unknown_not_fail() {
        // Starve the promising enumeration of states: the walk truncates,
        // the promising outcome set is a strict subset, and a naive
        // comparison would report FAIL (models disagree). The verdict
        // must instead be Unknown with nonzero coverage.
        let test = &battery()[0]; // SB
        let sc = enumerate_sc(&test.program).unwrap();
        let pr = enumerate_promising_with(
            &test.program,
            &PromisingConfig {
                max_states: 3,
                jobs: 1,
                ..PromisingConfig::default()
            },
        )
        .unwrap();
        assert!(pr.truncated, "tiny budget must truncate");
        let ax = enumerate_axiomatic_with(&test.program, &AxConfig::default()).unwrap();
        let truncated = pr.truncated || ax.truncated;
        let c = conformance(test, sc, pr.outcomes, ax.outcomes, truncated).unwrap();
        assert!(c.truncated);
        match c.verdict() {
            Verdict::Unknown { coverage } => {
                assert!(coverage.states > 0, "coverage must report visited states");
            }
            v => panic!("truncated conformance must be Unknown, got {v}"),
        }
    }

    #[test]
    fn full_battery_conformance() {
        for test in battery() {
            let c = check(&test).unwrap();
            assert!(
                c.models_agree,
                "{}: promising != axiomatic\npromising:\n{}\naxiomatic:\n{}",
                c.name, c.promising, c.axiomatic
            );
            assert!(c.sc_subsumed, "{}: SC not subsumed", c.name);
            assert!(
                c.verdicts_match,
                "{}: verdict mismatch (cond {:?}; arm expected {}, sc expected {})\npromising:\n{}\nsc:\n{}",
                c.name,
                test.condition,
                test.allowed_on_arm,
                test.allowed_on_sc,
                c.promising,
                c.sc
            );
        }
    }
}
