//! The litmus verdict pipeline, shared between front ends.
//!
//! The `litmus` CLI, the bench harness and the `vrm-serve` daemon must
//! all judge a litmus program **identically** — same enumerations, same
//! conformance rule, same check evaluation, same truncation handling —
//! or a verdict served from one front end would contradict another on
//! the same input. This module is that single pipeline: [`run_litmus`]
//! takes a [`ParsedLitmus`] plus budget overrides and returns a
//! [`LitmusRun`] holding every component of the judgement, so front
//! ends only differ in how they render it.
//!
//! The pipeline, in order:
//!
//! 1. exhaustive SC enumeration ([`enumerate_sc_with`]);
//! 2. promising-Arm enumeration ([`enumerate_promising_with`]);
//! 3. if either reference walk truncated, every comparison below is
//!    unsound in both directions — the verdict degrades to `Unknown`;
//! 4. the axiomatic model ([`enumerate_axiomatic_with`]) when the file
//!    enables it, discarded if itself truncated;
//! 5. conformance: with promises on, promising must equal axiomatic
//!    exactly; the promise-free fast path must be a subset of it;
//! 6. SC ⊆ RM inclusion plus the file's `check` expectations (`arm`
//!    checks judged against the axiomatic set when available, else the
//!    promising set; `sc` checks against SC).

use std::time::Instant;

use vrm_explore::{Coverage, ExploreStats, TruncationReason, Verdict};

use crate::axiomatic::{enumerate_axiomatic_with, AxConfig};
use crate::parser::{CheckModel, ParsedLitmus};
use crate::promising::enumerate_promising_with;
use crate::sc::{enumerate_sc_with, ExploreError, ScConfig};

/// Front-end budget overrides applied on top of the file's own
/// configuration, mirroring the `litmus` CLI's `--jobs`/`--max-states`
/// flags. `None` fields leave the parsed defaults untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOverrides {
    /// Worker count for all three enumerations.
    pub jobs: Option<usize>,
    /// State budget for the SC and promising walks.
    pub max_states: Option<usize>,
}

/// One evaluated `check` expectation from the litmus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Which model the expectation addresses.
    pub model: CheckModel,
    /// `true` for `allows`, `false` for `forbids`.
    pub allows: bool,
    /// The outcome bindings the expectation names.
    pub bindings: Vec<(String, u64)>,
    /// Whether the enumerated set agreed with the expectation.
    pub holds: bool,
}

/// Everything [`run_litmus`] concluded about one program: the verdict
/// plus every component a front end might want to render or assert on.
#[derive(Debug, Clone)]
pub struct LitmusRun {
    /// The program's name as parsed.
    pub name: String,
    /// Distinct SC outcomes.
    pub sc_outcomes: usize,
    /// Distinct promising-Arm outcomes.
    pub rm_outcomes: usize,
    /// Distinct axiomatic outcomes, when the cross-check ran.
    pub ax_outcomes: Option<usize>,
    /// Conformance summary: `"yes"` (promising == axiomatic), `"sub"`
    /// (promise-free promising ⊆ axiomatic), `"NO"`, or `"n/a"` when
    /// the axiomatic model did not run.
    pub conform: &'static str,
    /// The file's `check` expectations, each with its evaluation.
    pub checks: Vec<CheckOutcome>,
    /// Whether any reference enumeration was budget-truncated.
    pub truncated: bool,
    /// The three-valued judgement (truncation forces `Unknown`).
    pub verdict: Verdict,
    /// Combined SC + promising exploration statistics.
    pub stats: ExploreStats,
    /// Wall time of the enumerations, nanoseconds.
    pub wall_ns: u64,
}

impl LitmusRun {
    /// The run's process exit code under the shared 0/1/3 convention.
    pub fn exit_code(&self) -> i32 {
        self.verdict.exit_code()
    }
}

/// Runs the whole litmus pipeline on an already-parsed program. See
/// the module docs for the exact judgement; every front end calls this
/// so their verdicts bit-match.
pub fn run_litmus(parsed: &ParsedLitmus, ov: &RunOverrides) -> Result<LitmusRun, ExploreError> {
    let mut pm_cfg = parsed.promising.clone();
    let mut sc_cfg = ScConfig::default();
    if let Some(jobs) = ov.jobs {
        pm_cfg.jobs = jobs;
        sc_cfg.jobs = jobs;
    }
    if let Some(n) = ov.max_states {
        pm_cfg.max_states = n;
        sc_cfg.max_states = n;
    }
    let prog = &parsed.program;
    let started = Instant::now();
    let sc = enumerate_sc_with(prog, &sc_cfg)?;
    let rm_res = enumerate_promising_with(prog, &pm_cfg)?;
    // A budget-truncated walk on either reference model makes every
    // comparison unsound in both directions: degrade to UNKNOWN.
    let truncated = sc.truncated() || rm_res.truncated;
    let mut stats = sc.stats;
    stats.absorb(&rm_res.outcomes.stats);
    let rm = rm_res.outcomes;
    // None for VM/TLB programs, disabled files, or truncated
    // (unroll-bounded) enumerations where comparison is unsound.
    let ax = if parsed.run_axiomatic {
        let mut ax_cfg = AxConfig::default();
        if let Some(jobs) = ov.jobs {
            ax_cfg.jobs = jobs;
        }
        enumerate_axiomatic_with(prog, &ax_cfg)
            .ok()
            .filter(|r| !r.truncated)
            .map(|r| r.outcomes)
    } else {
        None
    };
    let wall_ns = started.elapsed().as_nanos() as u64;
    // Full promise search must agree exactly with the axiomatic model;
    // the promise-free fast path is a sound under-approximation.
    let conform = match &ax {
        Some(ax) if pm_cfg.promises => {
            if *ax == rm {
                "yes"
            } else {
                "NO"
            }
        }
        Some(ax) => {
            if rm.is_subset(ax) {
                "sub"
            } else {
                "NO"
            }
        }
        None => "n/a",
    };
    let mut ok = conform != "NO" && sc.is_subset(&rm);
    let mut checks = Vec::with_capacity(parsed.checks.len());
    for c in &parsed.checks {
        // `arm` expectations are judged against the *complete* model
        // when available (the axiomatic set); `sc` against SC.
        let set = match c.model {
            CheckModel::Arm => ax.as_ref().unwrap_or(&rm),
            CheckModel::Sc => &sc,
        };
        let bindings: Vec<(&str, u64)> = c.bindings.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let holds = set.contains_binding(&bindings) == c.allows;
        if !holds {
            ok = false;
        }
        checks.push(CheckOutcome {
            model: c.model,
            allows: c.allows,
            bindings: c.bindings.clone(),
            holds,
        });
    }
    let verdict = if truncated {
        let coverage = Coverage::from_stats(&stats).unwrap_or(Coverage {
            states: stats.states,
            frontier_len: 0,
            reason: TruncationReason::StateLimit,
        });
        Verdict::Unknown { coverage }
    } else if ok {
        Verdict::Pass
    } else {
        Verdict::Fail
    };
    Ok(LitmusRun {
        name: prog.name.clone(),
        sc_outcomes: sc.len(),
        rm_outcomes: rm.len(),
        ax_outcomes: ax.as_ref().map(|a| a.len()),
        conform,
        checks,
        truncated,
        verdict,
        stats,
        wall_ns,
    })
}
