//! Conservative value-domain analysis.
//!
//! Both the axiomatic enumerator and the promise search need to know, up
//! front, which values could ever flow through memory: the axiomatic model
//! enumerates thread-local paths where each load returns a candidate value,
//! and the Promising model must bound the `(location, value)` domain from
//! which promises are drawn.
//!
//! The analysis iterates per-thread symbolic executions to a fixpoint: every
//! load returns *any* value currently known for its address, every store
//! contributes its `(address, value)` pair to the next round. It
//! over-approximates the reachable value flow (sound for enumerating load
//! candidates and promise targets) and is bounded by loop unrolling and
//! set-size caps for termination.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::ir::{Addr, Expr, Inst, Program, Val};

/// Tunables for [`analyze`].
#[derive(Debug, Clone, Copy)]
pub struct ValueConfig {
    /// Maximum times any backward jump is taken per path.
    pub unroll: usize,
    /// Maximum local paths explored per thread per round.
    pub max_paths: usize,
    /// Maximum distinct values tracked per address.
    pub max_vals_per_addr: usize,
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
}

impl Default for ValueConfig {
    fn default() -> Self {
        Self {
            unroll: 3,
            max_paths: 20_000,
            max_vals_per_addr: 32,
            max_rounds: 8,
        }
    }
}

/// Result of the value-domain analysis.
#[derive(Debug, Clone, Default)]
pub struct ValueAnalysis {
    /// For each address: every value that may ever be observable there
    /// (including its initial value).
    pub mem_values: BTreeMap<Addr, BTreeSet<Val>>,
    /// Per-thread plain (non-RMW, non-virtual) stores.
    pub plain_stores: Vec<BTreeSet<(Addr, Val)>>,
    /// Per-thread RMW-produced stores (promisable as exclusive writes).
    pub rmw_stores: Vec<BTreeSet<(Addr, Val)>>,
    /// Per-thread data-read address sets (physical addresses for virtual
    /// accesses; page-table-walk reads are MMU reads and not included).
    pub reads: Vec<BTreeSet<Addr>>,
    /// Per-thread data-write address sets.
    pub writes: Vec<BTreeSet<Addr>>,
    /// `true` if a bound was hit and the domain may be incomplete.
    pub truncated: bool,
}

impl ValueAnalysis {
    /// Candidate values a load of `addr` may return (always includes the
    /// initial value).
    pub fn candidates(&self, addr: Addr, prog: &Program) -> BTreeSet<Val> {
        let mut s = self.mem_values.get(&addr).cloned().unwrap_or_default();
        s.insert(prog.init_val(addr));
        s
    }
}

struct PathState {
    pc: usize,
    regs: Vec<Val>,
    /// Remaining backward-jump budget.
    fuel: usize,
    /// Own stores along this path (program-order forwarding candidates).
    overlay: BTreeMap<Addr, Val>,
}

struct Analyzer<'a> {
    prog: &'a Program,
    cfg: ValueConfig,
    mem_values: BTreeMap<Addr, BTreeSet<Val>>,
    new_plain: BTreeSet<(Addr, Val)>,
    new_rmw: BTreeSet<(Addr, Val)>,
    new_any: BTreeSet<(Addr, Val)>,
    new_reads: BTreeSet<Addr>,
    new_writes: BTreeSet<Addr>,
    paths: usize,
    truncated: bool,
}

/// A back-edge is *benign* when its loop body cannot generate new
/// analysis facts with further unrolling: only loads (which branch over
/// the same candidate set every iteration), branches, fences, and nops.
/// No stores means the overlay and the store domains are loop-invariant,
/// and with no register arithmetic (`Mov`, `Oracle`, RMW) the register
/// states reachable after iteration *k* are exactly those reachable
/// after iteration 1, so the exiting continuations of a fuel-exhausted
/// path were already explored from an earlier iteration. Spin loops
/// (`ld; br back`) are the motivating case: under campaign budgets they
/// used to mark the whole domain truncated, turning every verdict that
/// crossed them into UNKNOWN.
fn benign_back_edge(code: &[Inst], target: usize, pc: usize) -> bool {
    code[target..=pc].iter().all(|i| {
        matches!(
            i,
            Inst::Load { .. }
                | Inst::LoadEx { .. }
                | Inst::Br { .. }
                | Inst::Jmp(_)
                | Inst::Fence(_)
                | Inst::Nop
        )
    })
}

impl<'a> Analyzer<'a> {
    fn load_candidates(&self, addr: Addr, overlay: &BTreeMap<Addr, Val>) -> BTreeSet<Val> {
        let mut c: BTreeSet<Val> = self.mem_values.get(&addr).cloned().unwrap_or_default();
        c.insert(self.prog.init_val(addr));
        if let Some(v) = overlay.get(&addr) {
            c.insert(*v);
        }
        c
    }

    fn eval(&self, e: &Expr, regs: &[Val]) -> Val {
        match e {
            Expr::Imm(v) => *v,
            Expr::Reg(r) => regs[r.0 as usize],
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.eval(a, regs), self.eval(b, regs));
                use crate::ir::BinOp::*;
                match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    And => a & b,
                    Or => a | b,
                    Xor => a ^ b,
                    Mul => a.wrapping_mul(b),
                    Shr => a.wrapping_shr(b as u32),
                    Shl => a.wrapping_shl(b as u32),
                    Eq => (a == b) as Val,
                    Ne => (a != b) as Val,
                    Lt => (a < b) as Val,
                }
            }
        }
    }

    fn run_thread(&mut self, tid: usize) {
        let nregs = self.prog.reg_count();
        let mut stack = vec![PathState {
            pc: 0,
            regs: vec![0; nregs],
            fuel: self.cfg.unroll * self.prog.threads[tid].code.len().max(1),
            overlay: BTreeMap::new(),
        }];
        while let Some(mut st) = stack.pop() {
            self.paths += 1;
            if self.paths > self.cfg.max_paths {
                self.truncated = true;
                return;
            }
            loop {
                let code = &self.prog.threads[tid].code;
                if st.pc >= code.len() {
                    break;
                }
                let inst = code[st.pc].clone();
                let mut next_pc = st.pc + 1;
                match inst {
                    Inst::Mov { dst, src } => {
                        st.regs[dst.0 as usize] = self.eval(&src, &st.regs);
                    }
                    Inst::Load { dst, addr, .. } => {
                        let a = self.eval(&addr, &st.regs);
                        self.new_reads.insert(a);
                        let cands = self.load_candidates(a, &st.overlay);
                        let mut iter = cands.into_iter();
                        let first = iter.next().unwrap_or(0);
                        for v in iter {
                            let mut branch = PathState {
                                pc: st.pc + 1,
                                regs: st.regs.clone(),
                                fuel: st.fuel,
                                overlay: st.overlay.clone(),
                            };
                            branch.regs[dst.0 as usize] = v;
                            stack.push(branch);
                        }
                        st.regs[dst.0 as usize] = first;
                    }
                    Inst::Store { val, addr, .. } => {
                        let a = self.eval(&addr, &st.regs);
                        let v = self.eval(&val, &st.regs);
                        self.new_plain.insert((a, v));
                        self.new_any.insert((a, v));
                        self.new_writes.insert(a);
                        st.overlay.insert(a, v);
                    }
                    Inst::Rmw {
                        dst, addr, op, rhs, ..
                    } => {
                        let a = self.eval(&addr, &st.regs);
                        let r = self.eval(&rhs, &st.regs);
                        self.new_reads.insert(a);
                        self.new_writes.insert(a);
                        let cands = self.load_candidates(a, &st.overlay);
                        let mut iter = cands.into_iter();
                        let first = iter.next().unwrap_or(0);
                        for old in iter {
                            let mut branch = PathState {
                                pc: st.pc + 1,
                                regs: st.regs.clone(),
                                fuel: st.fuel,
                                overlay: st.overlay.clone(),
                            };
                            branch.regs[dst.0 as usize] = old;
                            let new = op.apply(old, r);
                            branch.overlay.insert(a, new);
                            self.new_rmw.insert((a, new));
                            self.new_any.insert((a, new));
                            stack.push(branch);
                        }
                        st.regs[dst.0 as usize] = first;
                        let new = op.apply(first, r);
                        self.new_rmw.insert((a, new));
                        self.new_any.insert((a, new));
                        st.overlay.insert(a, new);
                    }
                    Inst::LoadEx { dst, addr, .. } => {
                        let a = self.eval(&addr, &st.regs);
                        self.new_reads.insert(a);
                        let cands = self.load_candidates(a, &st.overlay);
                        let mut iter = cands.into_iter();
                        let first = iter.next().unwrap_or(0);
                        for v in iter {
                            let mut branch = PathState {
                                pc: st.pc + 1,
                                regs: st.regs.clone(),
                                fuel: st.fuel,
                                overlay: st.overlay.clone(),
                            };
                            branch.regs[dst.0 as usize] = v;
                            stack.push(branch);
                        }
                        st.regs[dst.0 as usize] = first;
                    }
                    Inst::StoreEx {
                        status, val, addr, ..
                    } => {
                        let a = self.eval(&addr, &st.regs);
                        let v = self.eval(&val, &st.regs);
                        self.new_writes.insert(a);
                        // Failure path (status 1, no write).
                        let mut fail = PathState {
                            pc: st.pc + 1,
                            regs: st.regs.clone(),
                            fuel: st.fuel,
                            overlay: st.overlay.clone(),
                        };
                        fail.regs[status.0 as usize] = 1;
                        stack.push(fail);
                        // Success path: exclusive writes are promisable.
                        self.new_rmw.insert((a, v));
                        self.new_any.insert((a, v));
                        st.overlay.insert(a, v);
                        st.regs[status.0 as usize] = 0;
                    }
                    Inst::Br {
                        cond,
                        lhs,
                        rhs,
                        target,
                    } => {
                        let l = self.eval(&lhs, &st.regs);
                        let r = self.eval(&rhs, &st.regs);
                        if cond.eval(l, r) {
                            if target <= st.pc {
                                if st.fuel == 0 {
                                    if !benign_back_edge(code, target, st.pc) {
                                        self.truncated = true;
                                    }
                                    break;
                                }
                                st.fuel -= 1;
                            }
                            next_pc = target;
                        }
                    }
                    Inst::Jmp(target) => {
                        if target <= st.pc {
                            if st.fuel == 0 {
                                if !benign_back_edge(code, target, st.pc) {
                                    self.truncated = true;
                                }
                                break;
                            }
                            st.fuel -= 1;
                        }
                        next_pc = target;
                    }
                    Inst::LoadVirt { dst, va, .. } => {
                        // Translate using candidate PTE values; explore one
                        // candidate per branch like a chain of loads.
                        let vaddr = self.eval(&va, &st.regs);
                        for pa in self.walk_pas(vaddr, &st.overlay) {
                            self.new_reads.insert(pa);
                        }
                        if let Some(vals) = self.walk_candidates(vaddr, &st.overlay) {
                            let mut iter = vals.into_iter();
                            let first = iter.next().unwrap_or(0);
                            for v in iter {
                                let mut branch = PathState {
                                    pc: st.pc + 1,
                                    regs: st.regs.clone(),
                                    fuel: st.fuel,
                                    overlay: st.overlay.clone(),
                                };
                                branch.regs[dst.0 as usize] = v;
                                stack.push(branch);
                            }
                            st.regs[dst.0 as usize] = first;
                        } else {
                            st.regs[dst.0 as usize] = 0;
                        }
                    }
                    Inst::StoreVirt { val, va, .. } => {
                        let vaddr = self.eval(&va, &st.regs);
                        let v = self.eval(&val, &st.regs);
                        for pa in self.walk_pas(vaddr, &st.overlay) {
                            self.new_any.insert((pa, v));
                            self.new_writes.insert(pa);
                        }
                    }
                    Inst::Oracle { dst, choices } => {
                        let mut iter = choices.into_iter();
                        let first = iter.next().expect("non-empty oracle");
                        for v in iter {
                            let mut branch = PathState {
                                pc: st.pc + 1,
                                regs: st.regs.clone(),
                                fuel: st.fuel,
                                overlay: st.overlay.clone(),
                            };
                            branch.regs[dst.0 as usize] = v;
                            stack.push(branch);
                        }
                        st.regs[dst.0 as usize] = first;
                    }
                    Inst::Halt | Inst::Panic => break,
                    Inst::Fence(_)
                    | Inst::Tlbi { .. }
                    | Inst::Pull(_)
                    | Inst::Push(_)
                    | Inst::Nop => {}
                }
                st.pc = next_pc;
            }
        }
    }

    /// All values readable at any physical address `va` may translate to.
    fn walk_candidates(&self, va: Addr, overlay: &BTreeMap<Addr, Val>) -> Option<BTreeSet<Val>> {
        let pas = self.walk_pas(va, overlay);
        if pas.is_empty() {
            return None;
        }
        let mut out = BTreeSet::new();
        for pa in pas {
            out.extend(self.load_candidates(pa, overlay));
        }
        Some(out)
    }

    /// All physical addresses `va` may translate to under candidate PTEs.
    fn walk_pas(&self, va: Addr, overlay: &BTreeMap<Addr, Val>) -> BTreeSet<Addr> {
        let Some(vm) = self.prog.vm else {
            return BTreeSet::new();
        };
        let mut tables: BTreeSet<Addr> = [vm.root].into();
        for level in 0..vm.levels {
            let mut next = BTreeSet::new();
            for table in &tables {
                let cell = table + vm.index(va, level);
                for entry in self.load_candidates(cell, overlay) {
                    if entry != 0 {
                        next.insert(entry);
                    }
                }
            }
            tables = next;
            if tables.is_empty() {
                break;
            }
        }
        tables.iter().map(|page| page + vm.offset(va)).collect()
    }
}

/// Runs the value-domain analysis to a (bounded) fixpoint.
pub fn analyze(prog: &Program, cfg: &ValueConfig) -> ValueAnalysis {
    let mut result = ValueAnalysis {
        mem_values: prog
            .init_mem
            .iter()
            .map(|(a, v)| (*a, [*v].into()))
            .collect(),
        plain_stores: vec![BTreeSet::new(); prog.threads.len()],
        rmw_stores: vec![BTreeSet::new(); prog.threads.len()],
        reads: vec![BTreeSet::new(); prog.threads.len()],
        writes: vec![BTreeSet::new(); prog.threads.len()],
        truncated: false,
    };
    for _round in 0..cfg.max_rounds {
        let mut changed = false;
        for tid in 0..prog.threads.len() {
            let mut an = Analyzer {
                prog,
                cfg: *cfg,
                mem_values: result.mem_values.clone(),
                new_plain: BTreeSet::new(),
                new_rmw: BTreeSet::new(),
                new_any: BTreeSet::new(),
                new_reads: BTreeSet::new(),
                new_writes: BTreeSet::new(),
                paths: 0,
                truncated: false,
            };
            an.run_thread(tid);
            result.truncated |= an.truncated;
            for a in an.new_reads {
                if result.reads[tid].insert(a) {
                    changed = true;
                }
            }
            for a in an.new_writes {
                if result.writes[tid].insert(a) {
                    changed = true;
                }
            }
            for (a, v) in an.new_plain {
                if result.plain_stores[tid].insert((a, v)) {
                    changed = true;
                }
            }
            for (a, v) in an.new_rmw {
                if result.rmw_stores[tid].insert((a, v)) {
                    changed = true;
                }
            }
            for (a, v) in an.new_any {
                let set = result.mem_values.entry(a).or_default();
                if set.len() < cfg.max_vals_per_addr && set.insert(v) {
                    changed = true;
                } else if set.len() >= cfg.max_vals_per_addr && !set.contains(&v) {
                    result.truncated = true;
                }
            }
        }
        if !changed {
            return result;
        }
    }
    result.truncated = true;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::Reg;

    #[test]
    fn lb_value_domain() {
        // Example 1 shape: values {0, 1} flow through x and y.
        let (x, y) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("LB");
        p.thread("T0", |t| {
            t.load(Reg(0), x, false);
            t.store(y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), y, false);
            t.store(x, Reg(1), false);
        });
        let prog = p.build();
        let va = analyze(&prog, &ValueConfig::default());
        assert!(!va.truncated);
        assert_eq!(va.candidates(x, &prog), [0, 1].into());
        assert_eq!(va.candidates(y, &prog), [0, 1].into());
        // T1's data-dependent store can write 0 or 1.
        assert_eq!(va.plain_stores[1], [(x, 0), (x, 1)].into());
        assert_eq!(va.plain_stores[0], [(y, 1)].into());
    }

    #[test]
    fn rmw_values_grow_bounded() {
        let ctr = 0x10u64;
        let mut p = ProgramBuilder::new("ticket");
        for _ in 0..2 {
            p.thread("t", |t| {
                t.fetch_and_inc_acq(Reg(0), ctr);
            });
        }
        let prog = p.build();
        let va = analyze(&prog, &ValueConfig::default());
        // Real executions reach at most 2; the over-approximation may go a
        // little beyond but must contain {0, 1, 2}.
        let c = va.candidates(ctr, &prog);
        assert!(c.contains(&0) && c.contains(&1) && c.contains(&2));
        // RMW stores live in the rmw domain, not the plain one.
        assert!(va.plain_stores[0].is_empty());
        assert!(va.plain_stores[1].is_empty());
        assert!(va.rmw_stores[0].contains(&(ctr, 1)));
    }

    #[test]
    fn branch_dependent_store() {
        let (x, y) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("ctrl");
        p.thread("T0", |t| {
            t.load(Reg(0), x, false);
            t.br(crate::ir::Cond::Ne, Reg(0), 1u64, "skip");
            t.store(y, 7u64, false);
            t.label("skip");
            t.inst(crate::ir::Inst::Halt);
        });
        p.thread("T1", |t| {
            t.store(x, 1u64, false);
        });
        let prog = p.build();
        let va = analyze(&prog, &ValueConfig::default());
        assert!(va.plain_stores[0].contains(&(y, 7)));
        assert_eq!(va.candidates(y, &prog), [0, 7].into());
    }
}
