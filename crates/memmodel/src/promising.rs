//! The Promising Arm operational model (Pulte et al., PLDI 2019), extended
//! with the MMU/TLB behaviour modelled by the VRM paper and with the ghost
//! push/pull ownership machinery of VRM's push/pull Promising model (§4.1).
//!
//! # Model summary
//!
//! Memory is a growing list of *messages* `⟨loc, val, tid⟩`; a message's
//! timestamp is its 1-based index (timestamp 0 denotes the initial memory).
//! Threads execute their instructions *in order* but relaxed behaviour
//! arises from two mechanisms:
//!
//! * **views** — each thread tracks per-location coherence views `coh(x)`
//!   and the views `vrOld/vwOld` (past reads/writes), `vrNew/vwNew`
//!   (barrier-imposed floors for future reads/writes), `vCAP` (address and
//!   control dependencies), and `vRel` (last release write). A read may
//!   return any sufficiently-recent message: stale values model read-read
//!   reordering, and barriers/acquire-release constrain staleness exactly
//!   as Armv8's `dob`/`bob` relations demand;
//! * **promises** — a thread may append a message for a store it has not
//!   yet executed, letting other threads read it "early" (modelling
//!   store-load reordering such as load buffering, Example 1 of the paper).
//!   Every promise must remain *certifiable*: the promising thread, running
//!   solo without further promises, must be able to fulfil it.
//!
//! The MMU extension gives each CPU a TLB and performs page-table walks as
//! relaxed reads chained by address dependencies. A broadcast `TLBI`
//! carries the issuing thread's barrier views and imposes them as a floor
//! on subsequent walks of the invalidated pages — capturing precisely why
//! Sequential-TLB-Invalidation (unmap, *barrier*, TLBI) is required
//! (Example 6).
//!
//! Exhaustive enumeration with state memoization yields the complete set of
//! observable outcomes, cross-validated against the independent
//! [`axiomatic`](crate::axiomatic) implementation in `litmus::conformance`.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use vrm_explore::{digest128, Deps, ExploreConfig, Footprint, Sink, StateSpace};

use crate::ir::{Addr, Expr, Fence, Inst, Observable, Program, Val};
use crate::outcome::{Outcome, OutcomeSet, ThreadExit};
use crate::sc::ExploreError;
use crate::symm;
use crate::values::{analyze, ValueAnalysis, ValueConfig};

/// Promise certifications attempted (each is its own bounded engine
/// sub-exploration); surfaced in `vrm-obs` metrics snapshots.
static OBS_CERTIFICATIONS: vrm_obs::Counter = vrm_obs::Counter::new("promising.certifications");
/// Certifications that failed or were inconclusive — the promise was
/// refused. The gap between this and `promising.certifications` is the
/// accepted-promise rate.
static OBS_CERT_REFUSED: vrm_obs::Counter = vrm_obs::Counter::new("promising.cert_refused");

/// A timestamp into the message list (0 = initial memory).
pub type Ts = u32;

/// A view: a lower bound on timestamps, as a timestamp.
pub type View = u32;

/// One message in the global memory (promise list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Msg {
    /// Location written.
    pub loc: Addr,
    /// Value written.
    pub val: Val,
    /// Writing (or promising) thread.
    pub tid: usize,
}

/// Push/pull ownership violations detected by the ghost machinery.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GhostViolation {
    /// A `Pull` targeted a location already owned (by anyone).
    PullOwned {
        /// The pulling thread.
        tid: usize,
        /// The contended location.
        loc: Addr,
        /// The current owner.
        owner: usize,
    },
    /// A `Push` targeted a location not owned by the pushing thread.
    PushNotOwned {
        /// The pushing thread.
        tid: usize,
        /// The location.
        loc: Addr,
    },
    /// A data access to a location owned by a different thread.
    AccessNotOwner {
        /// The accessing thread.
        tid: usize,
        /// The location.
        loc: Addr,
        /// The owner.
        owner: usize,
    },
    /// A data access to a *declared shared* location while not owning it.
    UnprotectedShared {
        /// The accessing thread.
        tid: usize,
        /// The location.
        loc: Addr,
    },
    /// A `Pull` not covered by an acquire-flavoured barrier
    /// (No-Barrier-Misuse).
    PullWithoutBarrier {
        /// The pulling thread.
        tid: usize,
    },
    /// A `Push` not followed by a release-flavoured barrier before the next
    /// data access (No-Barrier-Misuse).
    PushWithoutBarrier {
        /// The pushing thread.
        tid: usize,
    },
    /// A write to a monitored kernel-page-table cell whose coherence
    /// predecessor was non-zero (Write-Once-Kernel-Mapping).
    WriteOnce {
        /// The writing thread.
        tid: usize,
        /// The page-table cell.
        loc: Addr,
        /// The non-empty entry that was overwritten.
        old: Val,
    },
}

/// Configuration of the ghost push/pull checker.
#[derive(Debug, Clone, Default)]
pub struct GhostConfig {
    /// Data locations that must only be accessed while owned
    /// (DRF-Kernel's "shared memory accesses" minus the synchronization
    /// variables and page tables, which the condition exempts).
    pub shared: BTreeSet<Addr>,
    /// Check the No-Barrier-Misuse barrier-fulfilment discipline.
    pub check_barriers: bool,
    /// Half-open address ranges of the kernel's own page table; writes to
    /// these cells must only ever replace empty (zero) entries
    /// (Write-Once-Kernel-Mapping).
    pub kernel_pt: Vec<(Addr, Addr)>,
}

/// Tunables for [`enumerate_promising_with`].
#[derive(Debug, Clone)]
pub struct PromisingConfig {
    /// Abort after visiting this many distinct states.
    pub max_states: usize,
    /// Enable promise steps (required for load-buffering behaviours).
    pub promises: bool,
    /// Maximum outstanding promises per thread.
    pub max_promises_per_thread: usize,
    /// State bound for each certification search.
    pub max_cert_states: usize,
    /// Value-analysis bounds (promise domain computation).
    pub value_cfg: ValueConfig,
    /// Optional ghost push/pull checking.
    pub ghost: Option<GhostConfig>,
    /// Worker threads for the exploration; `1` (the default, unless
    /// `VRM_JOBS` overrides it) selects the sequential reference driver.
    pub jobs: usize,
    /// Dynamic partial-order + thread-symmetry reduction (see
    /// `docs/REDUCTION.md`). On by default; automatically disabled when
    /// ghost checking is active, because ghost violations are emitted at
    /// interior states and must be observed on every interleaving. With
    /// promises enabled the per-instruction footprints are conservative
    /// (a promise can append anywhere, so active threads never commute)
    /// and the reduction comes from completion-step squashing plus
    /// symmetry; with promises off the full footprint-based DPOR kicks
    /// in. Either way the outcome set is identical to the reference
    /// walk's.
    pub reduction: bool,
}

impl Default for PromisingConfig {
    fn default() -> Self {
        Self {
            max_states: 4_000_000,
            promises: true,
            max_promises_per_thread: 2,
            max_cert_states: 100_000,
            value_cfg: ValueConfig::default(),
            ghost: None,
            jobs: ExploreConfig::jobs_from_env(),
            reduction: true,
        }
    }
}

/// Result of exhaustive Promising-model exploration.
#[derive(Debug, Clone)]
pub struct PromisingResult {
    /// The observable outcomes of all complete executions.
    pub outcomes: OutcomeSet,
    /// Distinct states visited.
    pub states_explored: usize,
    /// Push/pull violations encountered (deduplicated), if ghost checking
    /// was enabled.
    pub violations: BTreeSet<GhostViolation>,
    /// `true` if any internal bound was hit (result may be incomplete).
    pub truncated: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    Running,
    Done,
    Fault,
    Panic,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Fwd {
    ts: Ts,
    view: View,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TlbEntry {
    page: Addr,
    view: View,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum WalkKind {
    Load { dst: u8, acq: bool },
    Store { val: Val, vview: View, rel: bool },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Walk {
    va: Addr,
    level: u32,
    table: Addr,
    view: View,
    kind: WalkKind,
    pa: Option<(Addr, View)>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ThreadState {
    pc: usize,
    regs: Vec<(Val, View)>,
    coh: BTreeMap<Addr, View>,
    v_rold: View,
    v_wold: View,
    v_rnew: View,
    v_wnew: View,
    v_cap: View,
    v_rel: View,
    prom: BTreeSet<Ts>,
    fwd: BTreeMap<Addr, Fwd>,
    status: Status,
    walk: Option<Walk>,
    tlb: BTreeMap<Addr, TlbEntry>,
    walk_floor: BTreeMap<Addr, View>,
    walk_floor_all: View,
    /// Exclusive monitor: (address, timestamp read by the last LoadEx).
    excl: Option<(Addr, Ts)>,
    /// Ghost: an acquire-flavoured barrier has occurred and may cover a Pull.
    armed_acq: bool,
    /// Ghost: a Push awaits its release-flavoured barrier.
    pending_push: bool,
}

impl ThreadState {
    fn new(nregs: usize) -> Self {
        ThreadState {
            pc: 0,
            regs: vec![(0, 0); nregs],
            coh: BTreeMap::new(),
            v_rold: 0,
            v_wold: 0,
            v_rnew: 0,
            v_wnew: 0,
            v_cap: 0,
            v_rel: 0,
            prom: BTreeSet::new(),
            fwd: BTreeMap::new(),
            status: Status::Running,
            walk: None,
            tlb: BTreeMap::new(),
            walk_floor: BTreeMap::new(),
            walk_floor_all: 0,
            excl: None,
            armed_acq: false,
            pending_push: false,
        }
    }

    fn coh(&self, loc: Addr) -> View {
        self.coh.get(&loc).copied().unwrap_or(0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PState {
    mem: Vec<Msg>,
    threads: Vec<ThreadState>,
    /// Ghost ownership map (push/pull Promising model).
    owner: BTreeMap<Addr, usize>,
}

impl PState {
    fn initial(prog: &Program) -> Self {
        let nregs = prog.reg_count();
        PState {
            mem: Vec::new(),
            threads: (0..prog.threads.len())
                .map(|_| ThreadState::new(nregs))
                .collect(),
            owner: BTreeMap::new(),
        }
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.status != Status::Running && t.prom.is_empty())
    }

    fn final_val(&self, loc: Addr, prog: &Program) -> Val {
        self.mem
            .iter()
            .rev()
            .find(|m| m.loc == loc)
            .map(|m| m.val)
            .unwrap_or_else(|| prog.init_val(loc))
    }

    fn outcome(&self, prog: &Program) -> Outcome {
        let values = prog
            .observables
            .iter()
            .map(|o| match o {
                Observable::Reg { name, tid, reg } => {
                    (name.clone(), self.threads[*tid].regs[reg.0 as usize].0)
                }
                Observable::Mem { name, addr } => (name.clone(), self.final_val(*addr, prog)),
            })
            .collect();
        let exits = self
            .threads
            .iter()
            .map(|t| match t.status {
                Status::Done => ThreadExit::Done,
                Status::Fault => ThreadExit::Fault,
                Status::Panic => ThreadExit::Panic,
                Status::Running => ThreadExit::Stuck,
            })
            .collect();
        Outcome { values, exits }
    }
}

fn eval(e: &Expr, regs: &[(Val, View)]) -> (Val, View) {
    match e {
        Expr::Imm(v) => (*v, 0),
        Expr::Reg(r) => regs[r.0 as usize],
        Expr::Bin(op, a, b) => {
            let (av, avw) = eval(a, regs);
            let (bv, bvw) = eval(b, regs);
            use crate::ir::BinOp::*;
            let v = match op {
                Add => av.wrapping_add(bv),
                Sub => av.wrapping_sub(bv),
                And => av & bv,
                Or => av | bv,
                Xor => av ^ bv,
                Mul => av.wrapping_mul(bv),
                Shr => av.wrapping_shr(bv as u32),
                Shl => av.wrapping_shl(bv as u32),
                Eq => (av == bv) as Val,
                Ne => (av != bv) as Val,
                Lt => (av < bv) as Val,
            };
            (v, avw.max(bvw))
        }
    }
}

/// Timestamps a thread with view floor `limit` may read for `loc`.
///
/// The readable set is every message to `loc` no older than the newest
/// message to `loc` at or below `limit` (reading *newer* than your view is
/// always allowed; reading *staler* than what you must be aware of is not).
fn readable(mem: &[Msg], loc: Addr, limit: View) -> Vec<Ts> {
    let mut t_min: Ts = 0;
    for ts in 1..=(limit as usize).min(mem.len()) {
        if mem[ts - 1].loc == loc {
            t_min = ts as Ts;
        }
    }
    let mut out = Vec::new();
    if t_min == 0 {
        out.push(0);
    }
    for (i, m) in mem.iter().enumerate() {
        let ts = (i + 1) as Ts;
        if m.loc == loc && ts >= t_min {
            out.push(ts);
        }
    }
    out
}

fn msg_val(mem: &[Msg], loc: Addr, ts: Ts, prog: &Program) -> Val {
    if ts == 0 {
        prog.init_val(loc)
    } else {
        mem[ts as usize - 1].val
    }
}

/// The immutable context a successor expansion reads: the program, the
/// configuration and the promise-value domain. Shared by reference
/// across the engine's workers, so everything a step *writes* —
/// ghost violations, truncation — goes into an [`Effects`] buffer
/// instead of `&mut self`.
struct StepCtx<'a> {
    prog: &'a Program,
    cfg: &'a PromisingConfig,
    domain: ValueAnalysis,
}

/// Side effects of expanding one state, reported through the engine's
/// sink by the caller.
#[derive(Debug, Default)]
struct Effects {
    violations: Vec<GhostViolation>,
    truncated: bool,
}

impl<'a> StepCtx<'a> {
    /// Records a ghost violation and marks the state as panicked, so the
    /// branch stops (the push/pull hardware "panics").
    fn ghost_panic(&self, eff: &mut Effects, st: &mut PState, tid: usize, v: GhostViolation) {
        eff.violations.push(v);
        st.threads[tid].status = Status::Panic;
    }

    /// Checks a data access against the ownership discipline.
    ///
    /// Accesses between a `Push` and its fulfilling release barrier are
    /// permitted when they belong to the synchronization method itself
    /// (DRF-Kernel exempts lock implementations); the push promise's
    /// fulfilment is instead enforced at the next `Pull` and at thread
    /// termination.
    fn ghost_access(
        &self,
        eff: &mut Effects,
        st: &mut PState,
        tid: usize,
        loc: Addr,
        _releasing: bool,
    ) -> bool {
        let Some(g) = &self.cfg.ghost else {
            return true;
        };
        if let Some(&owner) = st.owner.get(&loc) {
            if owner != tid {
                self.ghost_panic(
                    eff,
                    st,
                    tid,
                    GhostViolation::AccessNotOwner { tid, loc, owner },
                );
                return false;
            }
        } else if g.shared.contains(&loc) {
            self.ghost_panic(eff, st, tid, GhostViolation::UnprotectedShared { tid, loc });
            return false;
        }
        true
    }

    /// Write-Once-Kernel-Mapping monitor: flags a write to a monitored
    /// page-table cell whose coherence-latest predecessor is non-zero.
    fn ghost_write_once(
        &self,
        eff: &mut Effects,
        st: &mut PState,
        tid: usize,
        loc: Addr,
        mem_before: &[Msg],
    ) {
        let Some(g) = &self.cfg.ghost else {
            return;
        };
        if !g.kernel_pt.iter().any(|&(lo, hi)| loc >= lo && loc < hi) {
            return;
        }
        let old = mem_before
            .iter()
            .rev()
            .find(|m| m.loc == loc)
            .map(|m| m.val)
            .unwrap_or_else(|| self.prog.init_val(loc));
        if old != 0 {
            eff.violations
                .push(GhostViolation::WriteOnce { tid, loc, old });
            st.threads[tid].status = Status::Panic;
        }
    }

    /// All successor states of `st` where thread `tid` takes one step.
    fn thread_successors(&self, st: &PState, tid: usize, eff: &mut Effects) -> Vec<PState> {
        let mut out = Vec::new();
        let code = &self.prog.threads[tid].code;
        let t = &st.threads[tid];
        if t.status != Status::Running {
            return out;
        }

        // In-progress page-table walk: one level per step.
        if let Some(walk) = t.walk.clone() {
            let vm = self.prog.vm.expect("walk requires VmConfig");
            if let Some((pa, pa_view)) = walk.pa {
                // Final data access with address view from the translation.
                match walk.kind {
                    WalkKind::Load { dst, acq } => {
                        self.read_successors(st, tid, pa, pa_view, dst, acq, true, eff, &mut out);
                    }
                    WalkKind::Store { val, vview, rel } => {
                        self.write_successors(
                            st, tid, pa, pa_view, val, vview, rel, true, eff, &mut out,
                        );
                    }
                }
                return out;
            }
            let cell = walk.table + vm.index(walk.va, walk.level);
            for ts in readable(&st.mem, cell, walk.view) {
                let entry = msg_val(&st.mem, cell, ts, self.prog);
                let mut next = st.clone();
                let nt = &mut next.threads[tid];
                let w = nt.walk.as_mut().expect("walk in progress");
                w.view = w.view.max(ts);
                if entry == 0 {
                    nt.status = Status::Fault;
                    nt.walk = None;
                } else if walk.level + 1 == vm.levels {
                    let vpn = vm.vpn(walk.va);
                    let wv = w.view;
                    w.pa = Some((entry + vm.offset(walk.va), wv));
                    nt.tlb.insert(
                        vpn,
                        TlbEntry {
                            page: entry,
                            view: wv,
                        },
                    );
                } else {
                    w.level += 1;
                    w.table = entry;
                }
                out.push(next);
            }
            return out;
        }

        if t.pc >= code.len() {
            let mut next = st.clone();
            if self.cfg.ghost.as_ref().is_some_and(|g| g.check_barriers)
                && next.threads[tid].pending_push
            {
                self.ghost_panic(
                    eff,
                    &mut next,
                    tid,
                    GhostViolation::PushWithoutBarrier { tid },
                );
            } else {
                next.threads[tid].status = Status::Done;
            }
            out.push(next);
            return out;
        }
        let inst = code[t.pc].clone();
        match inst {
            Inst::Mov { dst, src } => {
                let mut next = st.clone();
                let (v, vw) = eval(&src, &next.threads[tid].regs);
                next.threads[tid].regs[dst.0 as usize] = (v, vw);
                next.threads[tid].pc += 1;
                out.push(next);
            }
            Inst::Load { dst, addr, acq } => {
                let (a, aview) = eval(&addr, &t.regs);
                self.read_successors(st, tid, a, aview, dst.0, acq, false, eff, &mut out);
            }
            Inst::Store { val, addr, rel } => {
                let (a, aview) = eval(&addr, &t.regs);
                let (v, dview) = eval(&val, &t.regs);
                self.write_successors(st, tid, a, aview, v, dview, rel, false, eff, &mut out);
            }
            Inst::Rmw {
                dst,
                addr,
                op,
                rhs,
                acq,
                rel,
            } => {
                let (a, aview) = eval(&addr, &t.regs);
                let (r, rview) = eval(&rhs, &t.regs);
                {
                    let mut probe = st.clone();
                    if !self.ghost_access(eff, &mut probe, tid, a, rel) {
                        out.push(probe);
                        return out;
                    }
                }
                let v_pre_r = aview.max(t.v_rnew).max(if acq { t.v_rel } else { 0 });
                // Atomicity: the read half must observe the message
                // immediately co-before our write (no intervening write).
                // Option 1: append fresh — read the current co-maximal
                // message. Option 2: fulfil an outstanding promise at ts —
                // read the co-maximal message *below* ts.
                let co_max_below = |limit: Ts| -> Ts {
                    st.mem
                        .iter()
                        .enumerate()
                        .rev()
                        .filter(|(i, m)| m.loc == a && ((i + 1) as Ts) < limit)
                        .map(|(i, _)| (i + 1) as Ts)
                        .next()
                        .unwrap_or(0)
                };
                let commit_rmw = |next: &mut PState, t_r: Ts, t_w: Ts, old: Val| {
                    let nt = &mut next.threads[tid];
                    let v_post_r = if nt.fwd.get(&a).map(|f| f.ts) == Some(t_r) {
                        v_pre_r.max(nt.fwd[&a].view)
                    } else {
                        v_pre_r.max(t_r)
                    };
                    nt.regs[dst.0 as usize] = (old, v_post_r);
                    let c = nt.coh.entry(a).or_insert(0);
                    *c = (*c).max(t_w);
                    nt.v_rold = nt.v_rold.max(v_post_r);
                    nt.v_wold = nt.v_wold.max(t_w);
                    nt.v_cap = nt.v_cap.max(aview);
                    if acq {
                        nt.v_rnew = nt.v_rnew.max(v_post_r);
                        nt.v_wnew = nt.v_wnew.max(v_post_r);
                        nt.armed_acq = true;
                    }
                    if rel {
                        nt.v_rel = nt.v_rel.max(t_w);
                        nt.pending_push = false;
                    }
                    nt.fwd.insert(
                        a,
                        Fwd {
                            ts: t_w,
                            view: aview.max(rview).max(v_post_r),
                        },
                    );
                    nt.pc += 1;
                };
                // Readable floor: the read may not be staler than the
                // newest same-location message at or below the view limit.
                let limit = v_pre_r.max(t.coh(a));
                let t_min = {
                    let mut m = 0;
                    for ts in 1..=(limit as usize).min(st.mem.len()) {
                        if st.mem[ts - 1].loc == a {
                            m = ts as Ts;
                        }
                    }
                    m
                };
                // Option 1: append fresh at the end of memory.
                {
                    let t_r = co_max_below(Ts::MAX);
                    if t_r >= t_min {
                        let old = msg_val(&st.mem, a, t_r, self.prog);
                        let new = op.apply(old, r);
                        let mut next = st.clone();
                        let t_w = (next.mem.len() + 1) as Ts;
                        next.mem.push(Msg {
                            loc: a,
                            val: new,
                            tid,
                        });
                        commit_rmw(&mut next, t_r, t_w, old);
                        self.ghost_write_once(eff, &mut next, tid, a, &st.mem);
                        out.push(next);
                    }
                }
                // Option 2: fulfil an outstanding promise (exclusive-write
                // promising, needed e.g. when a program-order-earlier store
                // must land co-later than this RMW's write).
                for &ts in &t.prom {
                    let m = st.mem[ts as usize - 1];
                    if m.loc != a || m.tid != tid || ts <= t.coh(a) {
                        continue;
                    }
                    let t_r = co_max_below(ts);
                    if t_r < t_min {
                        continue; // would read staler than the view allows
                    }
                    let old = msg_val(&st.mem, a, t_r, self.prog);
                    let new = op.apply(old, r);
                    if new != m.val {
                        continue;
                    }
                    // The write-half pre-view must stay below ts.
                    let v_post_r = if t.fwd.get(&a).map(|f| f.ts) == Some(t_r) {
                        v_pre_r.max(t.fwd[&a].view)
                    } else {
                        v_pre_r.max(t_r)
                    };
                    let v_pre_w = aview
                        .max(rview)
                        .max(t.v_cap.max(aview))
                        .max(t.v_wnew)
                        .max(v_post_r)
                        .max(if rel {
                            t.v_rold.max(t.v_wold).max(t.v_rnew).max(t.v_rel)
                        } else {
                            0
                        });
                    if ts <= v_pre_w {
                        continue;
                    }
                    let mut next = st.clone();
                    next.threads[tid].prom.remove(&ts);
                    commit_rmw(&mut next, t_r, ts, old);
                    let before: Vec<Msg> = st.mem[..ts as usize - 1].to_vec();
                    self.ghost_write_once(eff, &mut next, tid, a, &before);
                    out.push(next);
                }
            }
            Inst::LoadEx { dst, addr, acq } => {
                let (a, aview) = eval(&addr, &t.regs);
                self.read_successors_ex(st, tid, a, aview, dst.0, acq, false, true, eff, &mut out);
            }
            Inst::StoreEx {
                status,
                val,
                addr,
                rel,
            } => {
                let (a, aview) = eval(&addr, &t.regs);
                let (v, dview) = eval(&val, &t.regs);
                {
                    let mut probe = st.clone();
                    if !self.ghost_access(eff, &mut probe, tid, a, rel) {
                        out.push(probe);
                        return out;
                    }
                }
                // Failure is always allowed (spurious or real).
                {
                    let mut next = st.clone();
                    let nt = &mut next.threads[tid];
                    nt.regs[status.0 as usize] = (1, aview.max(dview));
                    nt.excl = None;
                    nt.pc += 1;
                    out.push(next);
                }
                // Success requires an armed monitor on this address with
                // no intervening write (our read is still co-maximal below
                // the write's slot).
                let Some((ea, t_r)) = t.excl else {
                    return out;
                };
                if ea != a {
                    return out;
                }
                let v_pre_w = aview
                    .max(dview)
                    .max(t.v_cap.max(aview))
                    .max(t.v_wnew)
                    .max(if rel {
                        t.v_rold.max(t.v_wold).max(t.v_rnew).max(t.v_rel)
                    } else {
                        0
                    });
                let co_max_below = |limit: Ts| -> Ts {
                    st.mem
                        .iter()
                        .enumerate()
                        .rev()
                        .filter(|(i, m)| m.loc == a && ((i + 1) as Ts) < limit)
                        .map(|(i, _)| (i + 1) as Ts)
                        .next()
                        .unwrap_or(0)
                };
                let commit_success = |next: &mut PState, t_w: Ts| {
                    let nt = &mut next.threads[tid];
                    nt.regs[status.0 as usize] = (0, aview.max(dview));
                    let c = nt.coh.entry(a).or_insert(0);
                    *c = (*c).max(t_w);
                    nt.v_wold = nt.v_wold.max(t_w);
                    nt.v_cap = nt.v_cap.max(aview);
                    if rel {
                        nt.v_rel = nt.v_rel.max(t_w);
                        nt.pending_push = false;
                    }
                    nt.fwd.insert(
                        a,
                        Fwd {
                            ts: t_w,
                            view: aview.max(dview),
                        },
                    );
                    nt.excl = None;
                    nt.pc += 1;
                };
                // Append fresh.
                if co_max_below(Ts::MAX) == t_r {
                    let mut next = st.clone();
                    let t_w = (next.mem.len() + 1) as Ts;
                    next.mem.push(Msg {
                        loc: a,
                        val: v,
                        tid,
                    });
                    commit_success(&mut next, t_w);
                    self.ghost_write_once(eff, &mut next, tid, a, &st.mem);
                    out.push(next);
                }
                // Fulfil a promise (exclusive-write promising).
                for &ts in &t.prom {
                    let m = st.mem[ts as usize - 1];
                    if m.loc == a
                        && m.val == v
                        && m.tid == tid
                        && ts > v_pre_w
                        && ts > t.coh(a)
                        && co_max_below(ts) == t_r
                    {
                        let mut next = st.clone();
                        next.threads[tid].prom.remove(&ts);
                        commit_success(&mut next, ts);
                        let before: Vec<Msg> = st.mem[..ts as usize - 1].to_vec();
                        self.ghost_write_once(eff, &mut next, tid, a, &before);
                        out.push(next);
                    }
                }
            }
            Inst::Fence(f) => {
                let mut next = st.clone();
                let nt = &mut next.threads[tid];
                match f {
                    Fence::Sy => {
                        let v = nt.v_rold.max(nt.v_wold);
                        nt.v_rnew = nt.v_rnew.max(v);
                        nt.v_wnew = nt.v_wnew.max(v);
                        nt.armed_acq = true;
                        nt.pending_push = false;
                    }
                    Fence::Ld => {
                        nt.v_rnew = nt.v_rnew.max(nt.v_rold);
                        nt.v_wnew = nt.v_wnew.max(nt.v_rold);
                        nt.armed_acq = true;
                    }
                    Fence::St => {
                        nt.v_wnew = nt.v_wnew.max(nt.v_wold);
                        nt.pending_push = false;
                    }
                    Fence::Isb => {
                        nt.v_rnew = nt.v_rnew.max(nt.v_cap);
                    }
                }
                nt.pc += 1;
                out.push(next);
            }
            Inst::Br {
                cond,
                lhs,
                rhs,
                target,
            } => {
                let (l, lview) = eval(&lhs, &t.regs);
                let (r, rview) = eval(&rhs, &t.regs);
                let mut next = st.clone();
                let nt = &mut next.threads[tid];
                nt.v_cap = nt.v_cap.max(lview).max(rview);
                nt.pc = if cond.eval(l, r) { target } else { t.pc + 1 };
                out.push(next);
            }
            Inst::Jmp(target) => {
                let mut next = st.clone();
                next.threads[tid].pc = target;
                out.push(next);
            }
            Inst::LoadVirt { dst, va, acq } => {
                let vm = self.prog.vm.expect("LoadVirt requires VmConfig");
                let (vaddr, vview) = eval(&va, &t.regs);
                let vpn = vm.vpn(vaddr);
                let mut next = st.clone();
                let nt = &mut next.threads[tid];
                nt.v_cap = nt.v_cap.max(vview);
                if let Some(e) = nt.tlb.get(&vpn) {
                    nt.walk = Some(Walk {
                        va: vaddr,
                        level: 0,
                        table: 0,
                        view: vview,
                        kind: WalkKind::Load { dst: dst.0, acq },
                        pa: Some((e.page + vm.offset(vaddr), vview.max(e.view))),
                    });
                } else {
                    let floor = nt
                        .walk_floor
                        .get(&vpn)
                        .copied()
                        .unwrap_or(0)
                        .max(nt.walk_floor_all);
                    nt.walk = Some(Walk {
                        va: vaddr,
                        level: 0,
                        table: vm.root,
                        view: vview.max(floor),
                        kind: WalkKind::Load { dst: dst.0, acq },
                        pa: None,
                    });
                }
                out.push(next);
            }
            Inst::StoreVirt { val, va, rel } => {
                let vm = self.prog.vm.expect("StoreVirt requires VmConfig");
                let (vaddr, vview) = eval(&va, &t.regs);
                let (v, dview) = eval(&val, &t.regs);
                let vpn = vm.vpn(vaddr);
                let mut next = st.clone();
                let nt = &mut next.threads[tid];
                nt.v_cap = nt.v_cap.max(vview);
                if let Some(e) = nt.tlb.get(&vpn) {
                    nt.walk = Some(Walk {
                        va: vaddr,
                        level: 0,
                        table: 0,
                        view: vview,
                        kind: WalkKind::Store {
                            val: v,
                            vview: dview,
                            rel,
                        },
                        pa: Some((e.page + vm.offset(vaddr), vview.max(e.view))),
                    });
                } else {
                    let floor = nt
                        .walk_floor
                        .get(&vpn)
                        .copied()
                        .unwrap_or(0)
                        .max(nt.walk_floor_all);
                    nt.walk = Some(Walk {
                        va: vaddr,
                        level: 0,
                        table: vm.root,
                        view: vview.max(floor),
                        kind: WalkKind::Store {
                            val: v,
                            vview: dview,
                            rel,
                        },
                        pa: None,
                    });
                }
                out.push(next);
            }
            Inst::Tlbi { va } => {
                let vm = self.prog.vm.expect("Tlbi requires VmConfig");
                let vpn = va.map(|e| vm.vpn(eval(&e, &t.regs).0));
                let v_tlbi = t.v_rnew.max(t.v_wnew);
                let mut next = st.clone();
                for u in &mut next.threads {
                    match vpn {
                        Some(p) => {
                            u.tlb.remove(&p);
                            let f = u.walk_floor.entry(p).or_insert(0);
                            *f = (*f).max(v_tlbi);
                        }
                        None => {
                            u.tlb.clear();
                            u.walk_floor_all = u.walk_floor_all.max(v_tlbi);
                        }
                    }
                }
                next.threads[tid].pc += 1;
                out.push(next);
            }
            Inst::Pull(locs) => {
                let locs: Vec<Addr> = locs.iter().map(|e| eval(e, &t.regs).0).collect();
                let mut next = st.clone();
                if self.cfg.ghost.is_some() {
                    if self.cfg.ghost.as_ref().is_some_and(|g| g.check_barriers)
                        && next.threads[tid].pending_push
                    {
                        self.ghost_panic(
                            eff,
                            &mut next,
                            tid,
                            GhostViolation::PushWithoutBarrier { tid },
                        );
                        out.push(next);
                        return out;
                    }
                    if self.cfg.ghost.as_ref().is_some_and(|g| g.check_barriers)
                        && !next.threads[tid].armed_acq
                    {
                        self.ghost_panic(
                            eff,
                            &mut next,
                            tid,
                            GhostViolation::PullWithoutBarrier { tid },
                        );
                        out.push(next);
                        return out;
                    }
                    for &loc in &locs {
                        if let Some(&owner) = next.owner.get(&loc) {
                            self.ghost_panic(
                                eff,
                                &mut next,
                                tid,
                                GhostViolation::PullOwned { tid, loc, owner },
                            );
                            out.push(next);
                            return out;
                        }
                        next.owner.insert(loc, tid);
                    }
                }
                next.threads[tid].pc += 1;
                out.push(next);
            }
            Inst::Push(locs) => {
                let locs: Vec<Addr> = locs.iter().map(|e| eval(e, &t.regs).0).collect();
                let mut next = st.clone();
                if self.cfg.ghost.is_some() {
                    for &loc in &locs {
                        if next.owner.get(&loc) != Some(&tid) {
                            self.ghost_panic(
                                eff,
                                &mut next,
                                tid,
                                GhostViolation::PushNotOwned { tid, loc },
                            );
                            out.push(next);
                            return out;
                        }
                        next.owner.remove(&loc);
                    }
                    if self.cfg.ghost.as_ref().is_some_and(|g| g.check_barriers) {
                        next.threads[tid].pending_push = true;
                        next.threads[tid].armed_acq = false;
                    }
                }
                next.threads[tid].pc += 1;
                out.push(next);
            }
            Inst::Oracle { dst, choices } => {
                for v in choices {
                    let mut next = st.clone();
                    next.threads[tid].regs[dst.0 as usize] = (v, 0);
                    next.threads[tid].pc += 1;
                    out.push(next);
                }
            }
            Inst::Halt => {
                let mut next = st.clone();
                if self.cfg.ghost.as_ref().is_some_and(|g| g.check_barriers)
                    && next.threads[tid].pending_push
                {
                    self.ghost_panic(
                        eff,
                        &mut next,
                        tid,
                        GhostViolation::PushWithoutBarrier { tid },
                    );
                } else {
                    next.threads[tid].status = Status::Done;
                }
                out.push(next);
            }
            Inst::Panic => {
                let mut next = st.clone();
                next.threads[tid].status = Status::Panic;
                out.push(next);
            }
            Inst::Nop => {
                let mut next = st.clone();
                next.threads[tid].pc += 1;
                out.push(next);
            }
        }
        out
    }

    /// Generates read successors (one per readable timestamp).
    #[allow(clippy::too_many_arguments)]
    fn read_successors(
        &self,
        st: &PState,
        tid: usize,
        a: Addr,
        aview: View,
        dst: u8,
        acq: bool,
        from_walk: bool,
        eff: &mut Effects,
        out: &mut Vec<PState>,
    ) {
        self.read_successors_ex(st, tid, a, aview, dst, acq, from_walk, false, eff, out)
    }

    /// [`Self::read_successors`] with an exclusive-monitor arming flag.
    #[allow(clippy::too_many_arguments)]
    fn read_successors_ex(
        &self,
        st: &PState,
        tid: usize,
        a: Addr,
        aview: View,
        dst: u8,
        acq: bool,
        from_walk: bool,
        exclusive: bool,
        eff: &mut Effects,
        out: &mut Vec<PState>,
    ) {
        {
            let mut probe = st.clone();
            if !self.ghost_access(eff, &mut probe, tid, a, false) {
                out.push(probe);
                return;
            }
        }
        let t = &st.threads[tid];
        let v_pre = aview.max(t.v_rnew).max(if acq { t.v_rel } else { 0 });
        let limit = v_pre.max(t.coh(a));
        for ts in readable(&st.mem, a, limit) {
            let val = msg_val(&st.mem, a, ts, self.prog);
            let mut next = st.clone();
            let nt = &mut next.threads[tid];
            let v_post = if nt.fwd.get(&a).map(|f| f.ts) == Some(ts) {
                v_pre.max(nt.fwd[&a].view)
            } else {
                v_pre.max(ts)
            };
            nt.regs[dst as usize] = (val, v_post);
            let c = nt.coh.entry(a).or_insert(0);
            *c = (*c).max(ts);
            nt.v_rold = nt.v_rold.max(v_post);
            nt.v_cap = nt.v_cap.max(aview);
            if acq {
                nt.v_rnew = nt.v_rnew.max(v_post);
                nt.v_wnew = nt.v_wnew.max(v_post);
                nt.armed_acq = true;
            }
            if exclusive {
                nt.excl = Some((a, ts));
            }
            if from_walk {
                nt.walk = None;
            }
            nt.pc += 1;
            out.push(next);
        }
    }

    /// Generates write successors: append a fresh message, and additionally
    /// fulfil each matching outstanding promise.
    #[allow(clippy::too_many_arguments)]
    fn write_successors(
        &self,
        st: &PState,
        tid: usize,
        a: Addr,
        aview: View,
        v: Val,
        dview: View,
        rel: bool,
        from_walk: bool,
        eff: &mut Effects,
        out: &mut Vec<PState>,
    ) {
        {
            let mut probe = st.clone();
            if !self.ghost_access(eff, &mut probe, tid, a, rel) {
                out.push(probe);
                return;
            }
        }
        let t = &st.threads[tid];
        let v_pre = aview
            .max(dview)
            .max(t.v_cap.max(aview))
            .max(t.v_wnew)
            .max(if rel {
                t.v_rold.max(t.v_wold).max(t.v_rnew).max(t.v_rel)
            } else {
                0
            });
        let commit = |next: &mut PState, ts: Ts| {
            let nt = &mut next.threads[tid];
            let c = nt.coh.entry(a).or_insert(0);
            *c = (*c).max(ts);
            nt.v_wold = nt.v_wold.max(ts);
            nt.v_cap = nt.v_cap.max(aview);
            if rel {
                nt.v_rel = nt.v_rel.max(ts);
                nt.pending_push = false;
            }
            nt.fwd.insert(
                a,
                Fwd {
                    ts,
                    view: aview.max(dview),
                },
            );
            if from_walk {
                nt.walk = None;
            }
            nt.pc += 1;
        };
        // Option 1: append fresh.
        {
            let mut next = st.clone();
            let ts = (next.mem.len() + 1) as Ts;
            next.mem.push(Msg {
                loc: a,
                val: v,
                tid,
            });
            commit(&mut next, ts);
            self.ghost_write_once(eff, &mut next, tid, a, &st.mem);
            out.push(next);
        }
        // Option 2: fulfil an outstanding promise.
        for &ts in &t.prom {
            let m = st.mem[ts as usize - 1];
            if m.loc == a && m.val == v && m.tid == tid && ts > v_pre && ts > t.coh(a) {
                let mut next = st.clone();
                next.threads[tid].prom.remove(&ts);
                commit(&mut next, ts);
                let before: Vec<Msg> = st.mem[..ts as usize - 1].to_vec();
                self.ghost_write_once(eff, &mut next, tid, a, &before);
                out.push(next);
            }
        }
    }

    /// Candidate promise steps for thread `tid`: one successor per
    /// store in the thread's value-analysis domain (not yet certified).
    /// Returns `(state, loc, val, ts)` so witness searches can describe
    /// the promise.
    fn promise_steps(&self, st: &PState, tid: usize) -> Vec<(PState, Addr, Val, Ts)> {
        let mut out = Vec::new();
        if !self.cfg.promises || st.threads[tid].prom.len() >= self.cfg.max_promises_per_thread {
            return out;
        }
        let mut dom = self.domain.plain_stores[tid].clone();
        dom.extend(self.domain.rmw_stores[tid].iter().copied());
        for (loc, val) in dom {
            let mut next = st.clone();
            let ts = (next.mem.len() + 1) as Ts;
            next.mem.push(Msg { loc, val, tid });
            next.threads[tid].prom.insert(ts);
            out.push((next, loc, val, ts));
        }
        out
    }

    /// Checks that thread `tid` can fulfil all its outstanding promises
    /// running solo with no new promises.
    ///
    /// The certification search is itself an engine exploration —
    /// always sequential (it already runs inside a worker's expansion)
    /// and bounded by [`PromisingConfig::max_cert_states`] instead of
    /// the top-level state limit.
    fn certify(&self, st: &PState, tid: usize, eff: &mut Effects) -> bool {
        if st.threads[tid].prom.is_empty() {
            return true;
        }
        OBS_CERTIFICATIONS.add(1);
        let _span = vrm_obs::span!("certify", tid = tid, promises = st.threads[tid].prom.len());
        let ecfg = ExploreConfig::with_max_states(self.cfg.max_cert_states);
        let space = CertifySpace {
            ctx: self,
            root: st,
            tid,
        };
        let ok = match vrm_explore::explore(&space, &ecfg) {
            Ok(expl) => {
                let mut ok = false;
                for e in expl.emits {
                    match e {
                        CertEmit::Fulfilled => ok = true,
                        CertEmit::Violation(v) => eff.violations.push(v),
                    }
                }
                // A truncated certification that found no fulfilment is
                // inconclusive: conservatively refuse the promise, and
                // flag the whole enumeration as incomplete (a fulfilment
                // might exist past the bound). A fulfilment found before
                // the bound is sound regardless of truncation.
                if !ok && expl.stats.completeness.is_truncated() {
                    eff.truncated = true;
                }
                ok
            }
            Err(_) => {
                // WorkerPanic cannot happen (the search is sequential);
                // treat it as an inconclusive certification anyway.
                eff.truncated = true;
                false
            }
        };
        if !ok {
            OBS_CERT_REFUSED.add(1);
        }
        ok
    }
}

/// The certification search as a state space: the promising thread runs
/// solo, making no further promises, halting at the first state whose
/// promise set is empty.
struct CertifySpace<'a, 'b> {
    ctx: &'b StepCtx<'a>,
    root: &'b PState,
    tid: usize,
}

enum CertEmit {
    Fulfilled,
    Violation(GhostViolation),
}

impl StateSpace for CertifySpace<'_, '_> {
    type State = PState;
    type Emit = CertEmit;

    fn initial(&self) -> Vec<PState> {
        vec![self.root.clone()]
    }

    fn expand(&self, s: &PState, sink: &mut Sink<PState, CertEmit>) {
        if s.threads[self.tid].prom.is_empty() {
            sink.emit(CertEmit::Fulfilled);
            sink.halt();
            return;
        }
        if s.threads[self.tid].status != Status::Running {
            return;
        }
        let mut eff = Effects::default();
        for next in self.ctx.thread_successors(s, self.tid, &mut eff) {
            sink.push(next);
        }
        for v in eff.violations {
            sink.emit(CertEmit::Violation(v));
        }
    }
}

/// What the Promising-model expansion reports through the engine.
enum PEmit {
    Outcome(Outcome),
    Violation(GhostViolation),
    Truncated,
}

/// The full Promising model as a state space: every runnable thread
/// steps (including promise steps), each step gated on the stepping
/// thread's promises staying certifiable. The [`Deps`] implementation
/// names per-thread footprints and the program's thread symmetry; see
/// `docs/REDUCTION.md` for why the footprints are conservative when
/// promises are enabled.
struct PromisingSpace<'a> {
    ctx: StepCtx<'a>,
    /// Non-identity tid permutations of the program's symmetry group
    /// (identical code *and* identical promise domains); empty when
    /// there is no symmetry.
    perms: Vec<Vec<usize>>,
    /// Static per-`[tid][pc]` future footprints (with the
    /// [`symm::MEM_APPEND`] token on stores); consulted when promises
    /// are off, and for pure-reader threads even when they are on.
    futures: Vec<Vec<Footprint>>,
    /// Per-thread: `true` when the thread's code contains no store of
    /// any kind, so it can never promise (its promise domain is empty),
    /// is never certification-gated, and never mutates shared memory —
    /// which makes precise footprints sound even with promises enabled.
    readers: Vec<bool>,
}

/// Whether a thread's code is free of store-like instructions (plain,
/// exclusive, RMW, or virtual): such a *pure reader* only ever changes
/// its own thread-local state.
fn is_pure_reader(code: &[Inst]) -> bool {
    !code.iter().any(|i| {
        matches!(
            i,
            Inst::Store { .. } | Inst::StoreEx { .. } | Inst::Rmw { .. } | Inst::StoreVirt { .. }
        )
    })
}

/// Applies a tid permutation to a promising state: per-thread machine
/// state moves with its thread, message and ownership tid labels are
/// renamed, shared memory order stays put.
fn permute_pstate(st: &PState, perm: &[usize]) -> PState {
    let mut img = st.clone();
    for (old, &new) in perm.iter().enumerate() {
        img.threads[new] = st.threads[old].clone();
    }
    for m in &mut img.mem {
        m.tid = perm[m.tid];
    }
    for owner in img.owner.values_mut() {
        *owner = perm[*owner];
    }
    img
}

impl StateSpace for PromisingSpace<'_> {
    type State = PState;
    type Emit = PEmit;

    fn initial(&self) -> Vec<PState> {
        vec![PState::initial(self.ctx.prog)]
    }

    fn expand(&self, st: &PState, sink: &mut Sink<PState, PEmit>) {
        if st.all_finished() {
            sink.emit(PEmit::Outcome(st.outcome(self.ctx.prog)));
            return;
        }
        for tid in 0..self.ctx.prog.threads.len() {
            self.expand_proc(st, tid, sink);
        }
    }
}

impl Deps for PromisingSpace<'_> {
    fn enabled(&self, st: &PState) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Running)
            .map(|(tid, _)| tid)
            .collect()
    }

    fn expand_proc(&self, st: &PState, tid: usize, sink: &mut Sink<PState, PEmit>) {
        let ctx = &self.ctx;
        if st.threads[tid].status != Status::Running {
            return;
        }
        let mut eff = Effects::default();
        for next in ctx.thread_successors(st, tid, &mut eff) {
            // Steps must preserve certifiability of the stepping
            // thread's outstanding promises.
            if next.threads[tid].prom.is_empty() || ctx.certify(&next, tid, &mut eff) {
                sink.push(next);
            }
        }
        // Promise steps.
        for (next, _, _, _) in ctx.promise_steps(st, tid) {
            if ctx.certify(&next, tid, &mut eff) {
                sink.push(next);
            }
        }
        for v in eff.violations {
            sink.emit(PEmit::Violation(v));
        }
        if eff.truncated {
            sink.emit(PEmit::Truncated);
        }
    }

    fn now(&self, st: &PState, tid: usize) -> Footprint {
        let t = &st.threads[tid];
        if t.status != Status::Running {
            return Footprint::empty();
        }
        if t.walk.is_some() {
            // Mid page-table walk: reads page-table cells and updates
            // the TLB — treat as touching everything.
            return Footprint::top();
        }
        let code = &self.ctx.prog.threads[tid].code;
        if t.pc >= code.len() {
            // Completion step: flips the thread's own status, touches
            // nothing. (With ghost off, which reduction requires, the
            // step is unconditional.)
            return Footprint::empty();
        }
        if self.ctx.cfg.promises && !(self.readers[tid] && t.prom.is_empty()) {
            // Any unfinished storing thread may promise (appending to
            // the global message order) and its steps are gated on
            // certification, whose result reads arbitrary memory —
            // nothing short of `top` covers that. Pure readers are
            // exempt: they cannot promise and are never cert-gated.
            return Footprint::top();
        }
        let mut fp = Footprint::empty();
        match &code[t.pc] {
            Inst::Load { addr, .. } | Inst::LoadEx { addr, .. } => {
                fp.read(eval(addr, &t.regs).0);
            }
            Inst::Store { addr, .. } => {
                fp.write(eval(addr, &t.regs).0);
                fp.write(symm::MEM_APPEND);
            }
            Inst::StoreEx { addr, .. } | Inst::Rmw { addr, .. } => {
                let a = eval(addr, &t.regs).0;
                fp.read(a);
                fp.write(a);
                fp.write(symm::MEM_APPEND);
            }
            Inst::LoadVirt { .. } | Inst::StoreVirt { .. } | Inst::Tlbi { .. } => {
                return Footprint::top();
            }
            _ => {}
        }
        fp
    }

    fn future(&self, st: &PState, tid: usize) -> Footprint {
        let t = &st.threads[tid];
        if t.status != Status::Running {
            // Done threads have no promises left (certification prunes
            // the alternative), so nothing further happens here.
            return Footprint::empty();
        }
        if t.walk.is_some() {
            return Footprint::top();
        }
        if self.ctx.cfg.promises && !self.readers[tid] {
            if t.pc >= self.ctx.prog.threads[tid].code.len() {
                // Only the completion step remains.
                return Footprint::empty();
            }
            return Footprint::top();
        }
        self.futures[tid].get(t.pc).cloned().unwrap_or_default()
    }

    fn canon(&self, st: &PState) -> Option<PState> {
        if self.perms.is_empty() {
            return None;
        }
        let mut best: Option<(u128, PState)> = None;
        let d0 = digest128(st);
        for perm in &self.perms {
            let img = permute_pstate(st, perm);
            let d = digest128(&img);
            if d < best.as_ref().map_or(d0, |(bd, _)| *bd) {
                best = Some((d, img));
            }
        }
        best.map(|(_, img)| img)
    }

    fn orbit(&self, st: &PState) -> Vec<PState> {
        self.perms.iter().map(|p| permute_pstate(st, p)).collect()
    }
}

/// Exhaustively enumerates the observable outcomes of `prog` on the
/// Promising Arm model with default bounds.
///
/// # Examples
///
/// ```
/// use vrm_memmodel::builder::ProgramBuilder;
/// use vrm_memmodel::ir::Reg;
/// use vrm_memmodel::promising::enumerate_promising;
///
/// // Load buffering (paper Example 1): both reads may see 1 on Arm.
/// let (x, y) = (0x10, 0x20);
/// let mut p = ProgramBuilder::new("LB");
/// p.thread("CPU 1", |t| {
///     t.load(Reg(0), x, false);
///     t.store(y, 1, false);
/// });
/// p.thread("CPU 2", |t| {
///     t.load(Reg(1), y, false);
///     t.store(x, Reg(1), false);
/// });
/// p.observe_reg("r0", 0, Reg(0));
/// p.observe_reg("r1", 1, Reg(1));
/// let rm = enumerate_promising(&p.build()).unwrap();
/// assert!(rm.contains_binding(&[("r0", 1), ("r1", 1)]));
/// ```
pub fn enumerate_promising(prog: &Program) -> Result<OutcomeSet, ExploreError> {
    enumerate_promising_with(prog, &PromisingConfig::default()).map(|r| r.outcomes)
}

/// [`enumerate_promising`] with explicit configuration, returning detailed
/// exploration results (ghost violations, truncation).
pub fn enumerate_promising_with(
    prog: &Program,
    cfg: &PromisingConfig,
) -> Result<PromisingResult, ExploreError> {
    let _span = vrm_obs::span!(
        "enumerate.promising",
        prog = prog.name.as_str(),
        jobs = cfg.jobs,
        promises = u64::from(cfg.promises),
    );
    let domain = if cfg.promises {
        analyze(prog, &cfg.value_cfg)
    } else {
        ValueAnalysis {
            plain_stores: vec![Default::default(); prog.threads.len()],
            rmw_stores: vec![Default::default(); prog.threads.len()],
            ..Default::default()
        }
    };
    let mut truncated = domain.truncated;
    // Symmetric threads must also have identical promise domains, or a
    // permuted state would not step identically (identical code makes
    // this automatic, but the guard keeps symmetry sound even if the
    // value analysis ever becomes context-sensitive).
    let mut groups = symm::symmetric_groups(prog);
    groups.retain(|g| {
        g.iter().all(|&i| {
            domain.plain_stores[i] == domain.plain_stores[g[0]]
                && domain.rmw_stores[i] == domain.rmw_stores[g[0]]
        })
    });
    let futures = prog
        .threads
        .iter()
        .map(|t| symm::thread_futures(&t.code, true))
        .collect();
    let space = PromisingSpace {
        ctx: StepCtx { prog, cfg, domain },
        perms: symm::group_permutations(prog.threads.len(), &groups),
        futures,
        readers: prog
            .threads
            .iter()
            .map(|t| is_pure_reader(&t.code))
            .collect(),
    };
    // Ghost violations are emitted at interior states of particular
    // interleavings, which reduction is free to cut — so the reduced
    // walk only runs when ghost checking is off.
    let reduced = cfg.reduction && cfg.ghost.is_none();
    let run = |ecfg: &ExploreConfig| {
        if reduced {
            vrm_explore::explore_reduced(&space, ecfg)
        } else {
            vrm_explore::explore(&space, ecfg)
        }
    };
    let ecfg = ExploreConfig::with_max_states(cfg.max_states).jobs(cfg.jobs);
    let exploration = match run(&ecfg) {
        Ok(r) => r,
        Err(vrm_explore::ExploreError::WorkerPanic(_)) => run(&ecfg.jobs(1))?,
        Err(e) => return Err(e.into()),
    };
    truncated |= exploration.stats.completeness.is_truncated();
    let mut outcomes = OutcomeSet::new();
    let mut violations = BTreeSet::new();
    for e in exploration.emits {
        match e {
            PEmit::Outcome(o) => {
                outcomes.insert(o);
            }
            PEmit::Violation(v) => {
                violations.insert(v);
            }
            PEmit::Truncated => truncated = true,
        }
    }
    outcomes.stats = exploration.stats;
    Ok(PromisingResult {
        outcomes,
        states_explored: exploration.stats.states,
        violations,
        truncated,
    })
}

/// One step of a witness execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// The stepping thread.
    pub tid: usize,
    /// Its program counter before the step.
    pub pc: usize,
    /// Human-readable description of what happened.
    pub what: String,
}

impl std::fmt::Display for WitnessStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{} @{}: {}", self.tid, self.pc, self.what)
    }
}

/// Searches for one Promising-model execution whose outcome satisfies the
/// given bindings, returning the step-by-step witness.
///
/// This is the counterexample producer: when the wDRF theorem check finds
/// an RM-only outcome, `find_witness` explains *how* the hardware gets
/// there (which promises were made, which stale timestamps were read).
///
/// # Examples
///
/// ```
/// use vrm_memmodel::builder::ProgramBuilder;
/// use vrm_memmodel::ir::Reg;
/// use vrm_memmodel::promising::{find_witness, PromisingConfig};
///
/// let (x, f) = (0x10, 0x20);
/// let mut p = ProgramBuilder::new("MP");
/// p.thread("T0", |t| {
///     t.store(x, 42, false);
///     t.store(f, 1, false);
/// });
/// p.thread("T1", |t| {
///     t.load(Reg(0), f, false);
///     t.load(Reg(1), x, false);
/// });
/// p.observe_reg("flag", 1, Reg(0));
/// p.observe_reg("data", 1, Reg(1));
/// let cfg = PromisingConfig { promises: false, ..Default::default() };
/// let w = find_witness(&p.build(), &cfg, &[("flag", 1), ("data", 0)]).unwrap();
/// assert!(w.is_some(), "the stale read must be witnessable");
/// ```
pub fn find_witness(
    prog: &Program,
    cfg: &PromisingConfig,
    bindings: &[(&str, Val)],
) -> Result<Option<Vec<WitnessStep>>, ExploreError> {
    let domain = if cfg.promises {
        analyze(prog, &cfg.value_cfg)
    } else {
        ValueAnalysis {
            plain_stores: vec![Default::default(); prog.threads.len()],
            rmw_stores: vec![Default::default(); prog.threads.len()],
            ..Default::default()
        }
    };
    let space = WitnessSpace {
        ctx: StepCtx { prog, cfg, domain },
        bindings,
    };
    let ecfg = ExploreConfig::with_max_states(cfg.max_states).jobs(cfg.jobs);
    let exploration = match vrm_explore::explore(&space, &ecfg) {
        Ok(r) => r,
        Err(vrm_explore::ExploreError::WorkerPanic(_)) => {
            vrm_explore::explore(&space, &ecfg.jobs(1))?
        }
        Err(e) => return Err(e.into()),
    };
    Ok(exploration.emits.into_iter().next())
}

/// A witness-search node: a Promising state plus the path that reached
/// it. Deduplication is on the state alone — the first path to reach a
/// state is the one kept, exactly like the visited set the search used
/// to maintain beside its stack.
#[derive(Clone)]
struct WNode {
    st: PState,
    path: Vec<WitnessStep>,
}

impl PartialEq for WNode {
    fn eq(&self, other: &Self) -> bool {
        self.st == other.st
    }
}

impl Eq for WNode {}

impl std::hash::Hash for WNode {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.st.hash(h)
    }
}

/// The witness search as a state space: identical expansion to
/// [`PromisingSpace`], but carrying the step path and halting at the
/// first finished state whose outcome matches the bindings.
struct WitnessSpace<'a, 'b> {
    ctx: StepCtx<'a>,
    bindings: &'b [(&'b str, Val)],
}

impl StateSpace for WitnessSpace<'_, '_> {
    type State = WNode;
    type Emit = Vec<WitnessStep>;

    fn initial(&self) -> Vec<WNode> {
        vec![WNode {
            st: PState::initial(self.ctx.prog),
            path: Vec::new(),
        }]
    }

    fn expand(&self, node: &WNode, sink: &mut Sink<WNode, Vec<WitnessStep>>) {
        let ctx = &self.ctx;
        let st = &node.st;
        if st.all_finished() {
            let outcome = st.outcome(ctx.prog);
            if self.bindings.iter().all(|(n, v)| outcome.get(n) == *v) {
                sink.emit(node.path.clone());
                sink.halt();
            }
            return;
        }
        let mut eff = Effects::default();
        for tid in 0..ctx.prog.threads.len() {
            if st.threads[tid].status != Status::Running {
                continue;
            }
            let pc = st.threads[tid].pc;
            for next in ctx.thread_successors(st, tid, &mut eff) {
                if !next.threads[tid].prom.is_empty() && !ctx.certify(&next, tid, &mut eff) {
                    continue;
                }
                let mut p = node.path.clone();
                p.push(WitnessStep {
                    tid,
                    pc,
                    what: describe_step(ctx.prog, st, &next, tid),
                });
                sink.push(WNode { st: next, path: p });
            }
            for (next, loc, val, ts) in ctx.promise_steps(st, tid) {
                if ctx.certify(&next, tid, &mut eff) {
                    let mut p = node.path.clone();
                    p.push(WitnessStep {
                        tid,
                        pc,
                        what: format!("PROMISE [{loc:#x}] := {val} @ts{ts}"),
                    });
                    sink.push(WNode { st: next, path: p });
                }
            }
        }
    }
}

/// Renders a step by diffing the successor against the predecessor.
fn describe_step(prog: &Program, before: &PState, after: &PState, tid: usize) -> String {
    let t0 = &before.threads[tid];
    let t1 = &after.threads[tid];
    let mut parts: Vec<String> = Vec::new();
    let mut shown_dst: Option<u8> = None;
    if t0.pc < prog.threads[tid].code.len() {
        let inst = &prog.threads[tid].code[t0.pc];
        parts.push(inst_mnemonic(inst));
        // Always show a load's destination, even when the value happens to
        // equal the register's previous contents.
        if let Inst::Load { dst, .. } | Inst::LoadEx { dst, .. } | Inst::Rmw { dst, .. } = inst {
            let (v, view) = t1.regs[dst.0 as usize];
            parts.push(format!("r{} = {} (view ts{})", dst.0, v, view));
            shown_dst = Some(dst.0);
        }
    }
    if after.mem.len() > before.mem.len() {
        for (i, m) in after.mem.iter().enumerate().skip(before.mem.len()) {
            parts.push(format!("wrote [{:#x}] := {} @ts{}", m.loc, m.val, i + 1));
        }
    }
    if t1.prom.len() < t0.prom.len() {
        for ts in t0.prom.difference(&t1.prom) {
            parts.push(format!("fulfilled promise @ts{ts}"));
        }
    }
    for r in 0..t0.regs.len() {
        if t0.regs[r] != t1.regs[r] && shown_dst != Some(r as u8) {
            parts.push(format!(
                "r{} = {} (view ts{})",
                r, t1.regs[r].0, t1.regs[r].1
            ));
        }
    }
    if t1.status != t0.status {
        parts.push(format!("-> {:?}", t1.status));
    }
    parts.join("; ")
}

/// Short mnemonic for an instruction.
fn inst_mnemonic(i: &Inst) -> String {
    match i {
        Inst::Mov { .. } => "MOV".into(),
        Inst::Load { acq, .. } => if *acq { "LDAR" } else { "LDR" }.into(),
        Inst::Store { rel, .. } => if *rel { "STLR" } else { "STR" }.into(),
        Inst::Rmw { .. } => "RMW".into(),
        Inst::LoadEx { acq, .. } => if *acq { "LDAXR" } else { "LDXR" }.into(),
        Inst::StoreEx { rel, .. } => if *rel { "STLXR" } else { "STXR" }.into(),
        Inst::Fence(f) => format!("DMB.{f:?}"),
        Inst::Br { .. } => "B.cond".into(),
        Inst::Jmp(_) => "B".into(),
        Inst::LoadVirt { .. } => "LDR(virt)".into(),
        Inst::StoreVirt { .. } => "STR(virt)".into(),
        Inst::Tlbi { .. } => "TLBI".into(),
        Inst::Pull(_) => "PULL".into(),
        Inst::Push(_) => "PUSH".into(),
        Inst::Oracle { .. } => "ORACLE".into(),
        Inst::Halt => "HALT".into(),
        Inst::Panic => "PANIC".into(),
        Inst::Nop => "NOP".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{Reg, VmConfig};
    use crate::sc::enumerate_sc;

    fn no_promises() -> PromisingConfig {
        PromisingConfig {
            promises: false,
            ..Default::default()
        }
    }

    #[test]
    fn mp_plain_allows_stale_data() {
        // Message passing without barriers: flag=1 with data=0 is allowed
        // on Arm (read-read reordering) but not on SC.
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("MP");
        p.thread("T0", |t| {
            t.store(x, 42u64, false);
            t.store(f, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), f, false);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("flag", 1, Reg(0));
        p.observe_reg("data", 1, Reg(1));
        let prog = p.build();
        let rm = enumerate_promising_with(&prog, &no_promises())
            .unwrap()
            .outcomes;
        assert!(rm.contains_binding(&[("flag", 1), ("data", 0)]));
        let sc = enumerate_sc(&prog).unwrap();
        assert!(!sc.contains_binding(&[("flag", 1), ("data", 0)]));
        assert!(sc.is_subset(&rm));
    }

    #[test]
    fn mp_release_acquire_forbids_stale_data() {
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("MP+rel+acq");
        p.thread("T0", |t| {
            t.store(x, 42u64, false);
            t.store(f, 1u64, true);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), f, true);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("flag", 1, Reg(0));
        p.observe_reg("data", 1, Reg(1));
        let rm = enumerate_promising(&p.build()).unwrap();
        assert!(!rm.contains_binding(&[("flag", 1), ("data", 0)]));
        assert!(rm.contains_binding(&[("flag", 1), ("data", 42)]));
    }

    #[test]
    fn mp_dmb_forbids_stale_data() {
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("MP+dmbs");
        p.thread("T0", |t| {
            t.store(x, 42u64, false);
            t.dmb();
            t.store(f, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), f, false);
            t.dmb();
            t.load(Reg(1), x, false);
        });
        p.observe_reg("flag", 1, Reg(0));
        p.observe_reg("data", 1, Reg(1));
        let rm = enumerate_promising(&p.build()).unwrap();
        assert!(!rm.contains_binding(&[("flag", 1), ("data", 0)]));
    }

    #[test]
    fn sb_allows_both_zero_on_rm() {
        let (x, y) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("SB");
        p.thread("T0", |t| {
            t.store(x, 1u64, false);
            t.load(Reg(0), y, false);
        });
        p.thread("T1", |t| {
            t.store(y, 1u64, false);
            t.load(Reg(0), x, false);
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(0));
        let rm = enumerate_promising_with(&p.build(), &no_promises())
            .unwrap()
            .outcomes;
        assert!(rm.contains_binding(&[("r0", 0), ("r1", 0)]));
    }

    #[test]
    fn lb_requires_promises() {
        let (x, y) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("LB");
        p.thread("T0", |t| {
            t.load(Reg(0), x, false);
            t.store(y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), y, false);
            t.store(x, Reg(1), false);
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let prog = p.build();
        let without = enumerate_promising_with(&prog, &no_promises())
            .unwrap()
            .outcomes;
        assert!(!without.contains_binding(&[("r0", 1), ("r1", 1)]));
        let with = enumerate_promising(&prog).unwrap();
        assert!(with.contains_binding(&[("r0", 1), ("r1", 1)]));
    }

    #[test]
    fn lb_data_dependency_forbids_thin_air() {
        // LB+datas: both stores data-depend on the loads; r0=r1=1 would be
        // out-of-thin-air and must be forbidden (certification fails).
        let (x, y) = (0x10u64, 0x20u64);
        let mut p = ProgramBuilder::new("LB+datas");
        p.thread("T0", |t| {
            t.load(Reg(0), x, false);
            t.store(y, Reg(0), false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), y, false);
            t.store(x, Reg(1), false);
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let rm = enumerate_promising(&p.build()).unwrap();
        assert!(!rm.contains_binding(&[("r0", 1), ("r1", 1)]));
    }

    #[test]
    fn coherence_same_location() {
        // CoRR: two reads of the same location by one thread may not go
        // backwards in coherence order.
        let x = 0x10u64;
        let mut p = ProgramBuilder::new("CoRR");
        p.thread("T0", |t| {
            t.store(x, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), x, false);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("a", 1, Reg(0));
        p.observe_reg("b", 1, Reg(1));
        let rm = enumerate_promising(&p.build()).unwrap();
        assert!(!rm.contains_binding(&[("a", 1), ("b", 0)]));
        assert!(rm.contains_binding(&[("a", 0), ("b", 1)]));
    }

    #[test]
    fn rmw_atomicity_two_increments() {
        let c = 0x10u64;
        let mut p = ProgramBuilder::new("inc2");
        for _ in 0..2 {
            p.thread("t", |t| {
                t.fetch_and_inc_acq(Reg(0), c);
            });
        }
        p.observe_mem("ctr", c);
        p.observe_reg("t0", 0, Reg(0));
        p.observe_reg("t1", 1, Reg(0));
        let rm = enumerate_promising(&p.build()).unwrap();
        for o in rm.iter() {
            assert_eq!(o.get("ctr"), 2, "lost update: {o}");
            assert_ne!(o.get("t0"), o.get("t1"), "duplicate ticket: {o}");
        }
    }

    #[test]
    fn example4_out_of_order_page_table_reads() {
        // Paper Example 4: remap two pages; a reader may see the *second*
        // new mapping but the *first* old one (impossible on SC).
        let vm = VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        };
        // Virtual pages 0x8 and 0x9 (va 0x80, 0x90); physical pages:
        // 0x10/0x11 all-zero, 0x20/0x21 all-one.
        let mut p = ProgramBuilder::new("Example 4");
        p.vm(vm);
        p.init(0x108, 0x10);
        p.init(0x109, 0x11);
        p.init_range(0x20, 16, 1);
        p.init_range(0x21, 16, 1);
        p.thread("CPU 1", |t| {
            t.store(0x108u64, 0x20u64, false); // pte[x] := new
            t.store(0x109u64, 0x21u64, false); // pte[y] := new
        });
        p.thread("CPU 2", |t| {
            t.load_virt(Reg(0), 0x90u64, false); // r0 := [y]
            t.load_virt(Reg(1), 0x80u64, false); // r1 := [x]
        });
        p.observe_reg("r0", 1, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let prog = p.build();
        let rm = enumerate_promising_with(&prog, &no_promises())
            .unwrap()
            .outcomes;
        assert!(rm.contains_binding(&[("r0", 1), ("r1", 0)]));
        let sc = enumerate_sc(&prog).unwrap();
        assert!(!sc.contains_binding(&[("r0", 1), ("r1", 0)]));
    }

    #[test]
    fn example6_stale_tlb_without_barrier() {
        // Paper Example 6: unmap + TLBI *without* a barrier lets another
        // CPU walk the old mapping after the invalidation and cache it.
        let vm = VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        };
        let mut p = ProgramBuilder::new("Example 6 (buggy)");
        p.vm(vm);
        p.init(0x108, 0x10); // va page 8 -> pa page 0x10
        p.init_range(0x10, 16, 7);
        p.thread("CPU 1", |t| {
            t.store(0x108u64, 0u64, false); // (a) unmap
            t.tlbi_va(0x80u64); // (b) invalidate, NO barrier
        });
        p.thread("CPU 2", |t| {
            t.load_virt(Reg(0), 0x80u64, false); // (c)
            t.load_virt(Reg(1), 0x80u64, false); // (d)
        });
        p.observe_reg("r0", 1, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let prog = p.build();
        let rm = enumerate_promising_with(&prog, &no_promises())
            .unwrap()
            .outcomes;
        // Both reads may still see the old page on RM even when they both
        // executed after the TLBI; detectable as r0=r1=7 with CPU 1 done
        // first is indistinguishable here, so instead check the repaired
        // version forbids nothing extra vs SC in test below.
        assert!(rm.contains_binding(&[("r0", 7), ("r1", 7)]));
    }

    #[test]
    fn example6_fixed_with_barrier_matches_sc() {
        let vm = VmConfig {
            levels: 1,
            root: 0x100,
            page_bits: 4,
            index_bits: 4,
        };
        let build = |barrier: bool| {
            let mut p = ProgramBuilder::new("Example 6");
            p.vm(vm);
            p.init(0x108, 0x10);
            p.init_range(0x10, 16, 7);
            p.thread("CPU 1", |t| {
                t.store(0x108u64, 0u64, false);
                if barrier {
                    t.dmb();
                }
                t.tlbi_va(0x80u64);
                t.store(0x30u64, 1u64, false); // signal: TLBI complete
            });
            p.thread("CPU 2", |t| {
                t.load(Reg(2), 0x30u64, true); // wait-free observation
                t.load_virt(Reg(0), 0x80u64, false);
            });
            p.observe_reg("saw_signal", 1, Reg(2));
            p.observe_reg("r0", 1, Reg(0));
            p.build()
        };
        // Buggy: CPU 2 observed the post-TLBI signal yet still read the old
        // page through a fresh walk.
        let rm_buggy = enumerate_promising_with(&build(false), &no_promises())
            .unwrap()
            .outcomes;
        assert!(rm_buggy.contains_binding(&[("saw_signal", 1), ("r0", 7)]));
        // Fixed: after the barrier'd TLBI is observed, walks must see the
        // unmap, so the access faults rather than reading stale data.
        let rm_fixed = enumerate_promising_with(&build(true), &no_promises())
            .unwrap()
            .outcomes;
        assert!(!rm_fixed.contains_binding(&[("saw_signal", 1), ("r0", 7)]));
    }

    #[test]
    fn witness_found_for_allowed_outcome() {
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = crate::builder::ProgramBuilder::new("MP");
        p.thread("T0", |t| {
            t.store(x, 42u64, false);
            t.store(f, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), f, false);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("flag", 1, Reg(0));
        p.observe_reg("data", 1, Reg(1));
        let prog = p.build();
        let w = find_witness(&prog, &no_promises(), &[("flag", 1), ("data", 0)])
            .unwrap()
            .expect("witness");
        assert!(!w.is_empty());
        // The witness must contain both stores and both loads.
        let text: String = w
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("STR"), "{text}");
        assert!(text.contains("LDR"), "{text}");
    }

    #[test]
    fn no_witness_for_forbidden_outcome() {
        let (x, f) = (0x10u64, 0x20u64);
        let mut p = crate::builder::ProgramBuilder::new("MP+rel+acq");
        p.thread("T0", |t| {
            t.store(x, 42u64, false);
            t.store(f, 1u64, true);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), f, true);
            t.load(Reg(1), x, false);
        });
        p.observe_reg("flag", 1, Reg(0));
        p.observe_reg("data", 1, Reg(1));
        let prog = p.build();
        let w = find_witness(
            &prog,
            &PromisingConfig::default(),
            &[("flag", 1), ("data", 0)],
        )
        .unwrap();
        assert!(w.is_none());
    }

    #[test]
    fn witness_shows_promise_for_lb() {
        let (x, y) = (0x10u64, 0x20u64);
        let mut p = crate::builder::ProgramBuilder::new("LB");
        p.thread("T0", |t| {
            t.load(Reg(0), x, false);
            t.store(y, 1u64, false);
        });
        p.thread("T1", |t| {
            t.load(Reg(1), y, false);
            t.store(x, Reg(1), false);
        });
        p.observe_reg("r0", 0, Reg(0));
        p.observe_reg("r1", 1, Reg(1));
        let prog = p.build();
        let w = find_witness(&prog, &PromisingConfig::default(), &[("r0", 1), ("r1", 1)])
            .unwrap()
            .expect("witness");
        let text: String = w
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("PROMISE"), "{text}");
        assert!(text.contains("fulfilled promise"), "{text}");
    }

    #[test]
    fn ghost_pull_detects_race() {
        // Two threads access a shared counter; T0 pulls correctly, T1
        // accesses without pulling -> UnprotectedShared.
        let c = 0x10u64;
        let mut p = ProgramBuilder::new("ghost");
        p.thread("T0", |t| {
            t.pull(vec![Expr::Imm(c)]);
            t.load(Reg(0), c, false);
            t.store(c, 1u64, false);
            t.push(vec![Expr::Imm(c)]);
        });
        p.thread("T1", |t| {
            t.store(c, 2u64, false);
        });
        let cfg = PromisingConfig {
            promises: false,
            ghost: Some(GhostConfig {
                shared: [c].into(),
                check_barriers: false,
                kernel_pt: Vec::new(),
            }),
            ..Default::default()
        };
        let r = enumerate_promising_with(&p.build(), &cfg).unwrap();
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, GhostViolation::UnprotectedShared { tid: 1, .. })));
    }

    #[test]
    fn ghost_overlapping_critical_sections() {
        let c = 0x10u64;
        let mut p = ProgramBuilder::new("ghost2");
        for _ in 0..2 {
            p.thread("t", |t| {
                t.pull(vec![Expr::Imm(c)]);
                t.store(c, 1u64, false);
                t.push(vec![Expr::Imm(c)]);
            });
        }
        let cfg = PromisingConfig {
            promises: false,
            ghost: Some(GhostConfig {
                shared: [c].into(),
                check_barriers: false,
                kernel_pt: Vec::new(),
            }),
            ..Default::default()
        };
        let r = enumerate_promising_with(&p.build(), &cfg).unwrap();
        // Both threads pull unconditionally -> some interleaving must show
        // a pull of an owned location.
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, GhostViolation::PullOwned { .. })));
    }
}
