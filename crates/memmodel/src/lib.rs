//! Executable memory models for the VRM reproduction.
//!
//! This crate provides the hardware-model substrate the VRM paper builds on:
//!
//! * [`ir`] — a litmus-scale concurrent instruction set with barriers,
//!   dependencies, virtual-memory accesses, TLB maintenance, and the ghost
//!   push/pull primitives of the push/pull Promising model;
//! * [`sc`] — an exhaustive sequentially consistent executor;
//! * [`axiomatic`] — the Armv8 axiomatic concurrency model (Deacon's `cat`
//!   model as formalized by Pulte et al.), enumerated exhaustively;
//! * [`promising`] — the Promising Arm operational model (Pulte et al.,
//!   PLDI 2019), with promises, certification, and the MMU/TLB extension
//!   used by VRM;
//! * [`litmus`] — a litmus-test battery and cross-model conformance harness.
//!
//! The paper relies on the published machine-checked equivalence between
//! Promising Arm and the Armv8 axiomatic model; this reproduction instead
//! *cross-validates* the two independent implementations on the litmus
//! battery (see [`litmus`]).

#![warn(missing_docs)]

pub mod axiomatic;
pub mod builder;
pub mod gen;
pub mod ir;
pub mod litmus;
pub mod outcome;
pub mod parser;
pub mod promising;
pub mod runner;
pub mod sc;
pub mod symm;
pub mod trace;
pub mod values;

pub use builder::{ProgramBuilder, ThreadBuilder};
pub use ir::{Addr, Cond, Expr, Fence, Inst, Program, Reg, RmwOp, Val, VmConfig};
pub use outcome::{Outcome, OutcomeSet, ThreadExit};
