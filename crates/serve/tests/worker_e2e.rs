//! Process-tier identity: executing a job in a supervised worker
//! process (the real `serve worker` binary over stdio) must produce
//! exactly the verdict, state count and detail the in-process bridge
//! produces — including `Unknown` coverage and the checkpoint blob,
//! which here crosses a process boundary in hex.

use vrm_serve::job::execute_blob;
use vrm_serve::supervisor::execute_isolated;
use vrm_serve::{JobConfig, JobSpec, ServeConfig, Service, SubmitOutcome, WorkerIsolation};

fn real_worker() -> WorkerIsolation {
    WorkerIsolation {
        worker_cmd: vec![env!("CARGO_BIN_EXE_serve").into(), "worker".into()],
        ..Default::default()
    }
}

fn budget(max_states: usize) -> JobConfig {
    JobConfig {
        max_states,
        jobs: 1,
        escalate: false,
    }
}

fn corpus() -> Vec<(JobSpec, JobConfig)> {
    let unmap = JobSpec::Schedules {
        workload: "unmap".into(),
    };
    vec![
        (unmap.clone(), budget(1 << 16)),
        (unmap, budget(40)),
        (
            JobSpec::Refinement {
                workload: "unmap".into(),
            },
            budget(1 << 16),
        ),
        (
            JobSpec::Wdrf {
                name: "example1".into(),
            },
            budget(1 << 16),
        ),
    ]
}

#[test]
fn isolated_execution_matches_in_process_execution() {
    if vrm_faults::armed() {
        // Injected worker kills would add WorkerLost degradations to
        // the isolated side only.
        return;
    }
    let iso = real_worker();
    for (spec, cfg) in corpus() {
        let (inproc, in_blob) = execute_blob(&spec, &cfg, None).expect("in-process");
        let (worker, w_blob) = execute_isolated(&iso, &spec, &cfg, None).expect("isolated");
        assert_eq!(worker.verdict, inproc.verdict, "{spec:?}");
        assert_eq!(worker.states, inproc.states, "{spec:?}");
        assert_eq!(worker.detail, inproc.detail, "{spec:?}");
        assert_eq!(worker.exit_code(), inproc.exit_code(), "{spec:?}");
        assert_eq!(
            w_blob.is_some(),
            in_blob.is_some(),
            "{spec:?}: checkpoint must survive the stdio protocol"
        );
    }
}

#[test]
fn a_checkpoint_round_trips_through_worker_processes() {
    if vrm_faults::armed() {
        return;
    }
    let iso = real_worker();
    let unmap = JobSpec::Schedules {
        workload: "unmap".into(),
    };
    // One worker process parks the walk; a second, later worker
    // process resumes it — the blob's only transport is hex on stdio.
    let (small, blob) = execute_isolated(&iso, &unmap, &budget(40), None).expect("small");
    assert!(small.verdict.is_unknown());
    let blob = blob.expect("a truncated walk parks a checkpoint");
    let (big, _) = execute_isolated(&iso, &unmap, &budget(1 << 16), Some(&blob)).expect("resume");
    assert!(big.verdict.is_pass(), "{}", big.detail);
    assert!(big.resumed, "the worker must resume the shipped blob");
    assert_eq!(
        small.states + big.states_new,
        big.states,
        "resume must continue exactly where the first worker stopped"
    );
}

#[test]
fn a_parallel_isolated_service_matches_sequential_in_process_answers() {
    if vrm_faults::armed() {
        return;
    }
    // Sequential in-process ground truth…
    let jobs = corpus();
    let truth: Vec<_> = jobs
        .iter()
        .map(|(spec, cfg)| execute_blob(spec, cfg, None).expect("in-process").0)
        .collect();
    // …versus a 2-worker isolated daemon answering the same corpus
    // concurrently: the parallel == sequential identity, re-gated at
    // the process tier.
    let svc = Service::start(ServeConfig {
        workers: 2,
        isolation: Some(real_worker()),
        ..Default::default()
    });
    let ids: Vec<_> = jobs
        .iter()
        .map(
            |(spec, cfg)| match svc.submit(spec.clone(), *cfg).expect("submit") {
                SubmitOutcome::Queued(id) => id,
                SubmitOutcome::Cached { .. } => panic!("cold service cannot hit its cache"),
            },
        )
        .collect();
    for (i, id) in ids.into_iter().enumerate() {
        let snap = svc.wait(id);
        let res = snap.result.expect("done").expect("job result");
        let (spec, _) = &jobs[i];
        assert_eq!(res.verdict, truth[i].verdict, "{spec:?}");
        assert_eq!(res.states, truth[i].states, "{spec:?}");
        assert_eq!(res.exit_code(), truth[i].exit_code(), "{spec:?}");
    }
    svc.shutdown();
}
