//! The headline crash-safety contract, over a real daemon process:
//! SIGKILL a live `serve listen --state-dir` daemon mid-load, restart
//! it on the same state dir, and the warm replay of the whole corpus
//! is answered 100% from the recovered cache, bit-identical to the
//! pre-crash warm pass. Parked checkpoints survive too: a post-crash
//! larger-budget query resumes the pre-crash walk.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use vrm_obs::json::ObjWriter;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `serve listen --tcp 127.0.0.1:0 --state-dir <dir>` and
    /// reads the bound address off its first stdout line. The chaos
    /// knobs are scrubbed from the environment: this test's crashes
    /// are real SIGKILLs, not injected faults.
    fn spawn(dir: &PathBuf) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["listen", "--tcp", "127.0.0.1:0", "--workers", "2"])
            .arg("--state-dir")
            .arg(dir)
            .env_remove("VRM_FAULT_SEED")
            .env_remove("VRM_WORKER_STALL_MS")
            .env_remove("VRM_WORKER_STALL_MATCH")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("daemon prints its endpoint")
            .expect("read banner");
        let addr = banner
            .strip_prefix("listening on tcp:")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        Daemon { child, addr }
    }

    /// One request, one reply line, fresh connection (the protocol is
    /// idempotent, so this mirrors how a resilient client behaves).
    fn request(&self, line: &str) -> String {
        let mut conn = std::net::TcpStream::connect(&self.addr).expect("connect");
        conn.write_all(line.as_bytes()).expect("send");
        conn.write_all(b"\n").expect("send");
        let mut reply = String::new();
        BufReader::new(conn).read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }

    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL daemon");
        self.child.wait().expect("reap daemon");
    }
}

fn schedules_line(max_states: u64, wait: bool) -> String {
    let mut w = ObjWriter::new();
    w.field_str("op", "submit")
        .field_str("kind", "schedules")
        .field_str("workload", "unmap")
        .field_u64("max_states", max_states)
        .field_u64("jobs", 1);
    if !wait {
        w.field_bool("wait", false);
    }
    w.finish()
}

fn refinement_line(max_states: u64, wait: bool) -> String {
    let mut w = ObjWriter::new();
    w.field_str("op", "submit")
        .field_str("kind", "refinement")
        .field_str("workload", "unmap")
        .field_u64("max_states", max_states)
        .field_u64("jobs", 1);
    if !wait {
        w.field_bool("wait", false);
    }
    w.finish()
}

fn wdrf_line(name: &str) -> String {
    let mut w = ObjWriter::new();
    w.field_str("op", "submit")
        .field_str("kind", "wdrf")
        .field_str("name", name)
        .field_u64("jobs", 1);
    w.finish()
}

#[test]
fn a_sigkilled_daemon_recovers_bit_identical_warm_replies() {
    let dir = std::env::temp_dir().join(format!("vrm-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The corpus: two under-budget Unknowns (the second resumes and
    // re-parks the first's checkpoint at 60 states), a refinement Pass
    // and a wDRF theorem check.
    let corpus = vec![
        schedules_line(40, true),
        schedules_line(60, true),
        refinement_line(1 << 16, true),
        wdrf_line("example1"),
    ];

    // First life: cold compute, then a warm pass pinning the cached
    // reply bytes.
    let daemon = Daemon::spawn(&dir);
    for line in &corpus {
        let reply = daemon.request(line);
        assert!(
            reply.contains("\"cached\":false"),
            "cold pass must compute: {reply}"
        );
    }
    let warm_before: Vec<String> = corpus.iter().map(|l| daemon.request(l)).collect();
    for reply in &warm_before {
        assert!(reply.contains("\"cached\":true"), "warm pass: {reply}");
    }
    // Mid-load: fire a fresh no-wait job and SIGKILL the daemon while
    // it is (or may still be) running. Its in-flight work is allowed
    // to be lost — completed, logged work is not. (A checkpoint-free
    // refinement job, so the kill cannot race the unmap checkpoint's
    // take/re-park cycle.)
    let queued = daemon.request(&refinement_line(45, false));
    assert!(queued.contains("\"status\":\"queued\""), "{queued}");
    daemon.sigkill();

    // Second life, same state dir: the whole corpus is answered from
    // the replayed log, byte-identical to the pre-crash warm pass.
    let daemon = Daemon::spawn(&dir);
    let warm_after: Vec<String> = corpus.iter().map(|l| daemon.request(l)).collect();
    for (before, after) in warm_before.iter().zip(&warm_after) {
        assert_eq!(
            before, after,
            "a recovered warm reply must be bit-identical to the pre-crash one"
        );
        assert!(after.contains("\"cached\":true"), "100% warm hits: {after}");
    }

    // The checkpoint parked at 60 states survived the SIGKILL: a
    // larger budget resumes it instead of restarting the walk.
    let resumed = daemon.request(&schedules_line(200, true));
    assert!(
        resumed.contains("\"verdict\":\"pass\""),
        "the resumed walk completes: {resumed}"
    );
    assert!(
        resumed.contains("\"resumed\":true"),
        "the pre-crash checkpoint must be resumed: {resumed}"
    );
    daemon.sigkill();

    let _ = std::fs::remove_dir_all(&dir);
}
