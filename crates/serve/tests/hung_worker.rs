//! Chaos: one job class hangs its worker (via the worker binary's
//! `VRM_WORKER_STALL_*` knobs); the supervisor must kill it at the
//! deadline and degrade that job — and only that job — to
//! `Unknown{WorkerLost}`, while healthy jobs on the same daemon keep
//! answering correctly.
//!
//! This lives in its own test binary because the stall knobs travel by
//! process environment (inherited by every spawned worker).

use std::time::{Duration, Instant};

use vrm_explore::{TruncationReason, Verdict};
use vrm_serve::{JobConfig, JobSpec, ServeConfig, Service, SubmitOutcome, WorkerIsolation};

#[test]
fn a_stalled_job_class_degrades_without_touching_healthy_jobs() {
    if vrm_faults::armed() {
        return;
    }
    // Every worker whose job line mentions "refinement" sleeps for a
    // minute; everything else runs normally.
    std::env::set_var("VRM_WORKER_STALL_MS", "60000");
    std::env::set_var("VRM_WORKER_STALL_MATCH", "refinement");

    let svc = Service::start(ServeConfig {
        workers: 2,
        isolation: Some(WorkerIsolation {
            worker_cmd: vec![env!("CARGO_BIN_EXE_serve").into(), "worker".into()],
            // Generous enough for a debug-build worker to finish the
            // healthy walk, far under the 60s stall.
            deadline: Duration::from_secs(10),
            grace: Duration::from_millis(500),
            restarts: 1,
            backoff_base: Duration::from_millis(10),
            ignore_deadline: false,
        }),
        ..Default::default()
    });
    let cfg = JobConfig {
        max_states: 1 << 16,
        jobs: 1,
        escalate: false,
    };
    let submit = |spec: JobSpec| match svc.submit(spec, cfg).expect("submit") {
        SubmitOutcome::Queued(id) => id,
        SubmitOutcome::Cached { .. } => panic!("cold service cannot hit its cache"),
    };
    let started = Instant::now();
    let hung = submit(JobSpec::Refinement {
        workload: "unmap".into(),
    });
    let healthy = submit(JobSpec::Schedules {
        workload: "unmap".into(),
    });

    let healthy_res = svc.wait(healthy).result.expect("done").expect("result");
    assert_eq!(
        healthy_res.verdict,
        Verdict::Pass,
        "a healthy job must be untouched by its neighbour's hang"
    );

    let hung_res = svc.wait(hung).result.expect("done").expect("result");
    match hung_res.verdict {
        Verdict::Unknown { coverage } => {
            assert_eq!(coverage.reason, TruncationReason::WorkerLost)
        }
        v => panic!("the stalled job must degrade to WorkerLost, got {v:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(45),
        "the kill must land at the deadline, not after the 60s stall"
    );
    svc.shutdown();

    std::env::remove_var("VRM_WORKER_STALL_MS");
    std::env::remove_var("VRM_WORKER_STALL_MATCH");
}
