//! The daemon's durable state: a write-ahead log for the verdict
//! cache and the parked-checkpoint store.
//!
//! A restart must not forget what the daemon paid to learn. Every
//! cache-relevant mutation is appended to `serve.wal` under the
//! daemon's `--state-dir` *before* the in-memory structure applies it;
//! on the next start the log is replayed in order and a warm corpus
//! pass is bit-identical to pre-crash, 100% cache hits. The file is a
//! log, not a database: append-only records behind an 8-byte magic,
//! compacted to a live-state snapshot (atomic `rename` over the old
//! log) once the appended volume crosses a threshold.
//!
//! ## On-disk format (`VRMWAL1\n`)
//!
//! | offset | field |
//! |--------|-------|
//! | 0      | magic `b"VRMWAL1\n"` |
//! | 8      | records, back to back |
//!
//! Each record is `[kind u8][len u32 LE][payload][fnv1a64 u64 LE]`,
//! the checksum taken over the kind byte, the length bytes and the
//! payload (via [`vrm_explore::checksum64`], the same FNV-1a the
//! VRMCKPT1 container uses). Record kinds:
//!
//! | kind | meaning | payload |
//! |------|---------|---------|
//! | 1 | verdict insert | digest `u128`, verdict, `states u64`, `wall_ns u64`, detail |
//! | 2 | checkpoint park | program digest `u128`, VRMSRES1 blob |
//! | 3 | checkpoint take | program digest `u128` |
//! | 4 | verdict remove (TTL expiry) | digest `u128` |
//!
//! ## Crash-safety discipline
//!
//! The daemon is designed to die by SIGKILL mid-append. Replay
//! therefore distinguishes two corruptions:
//!
//! * a **torn tail** — the file ends inside a record (the crash
//!   interrupted the final `write_all`). Everything before the tear
//!   replays; the tear itself is truncated away on open so the next
//!   append starts on a record boundary. Counted on
//!   `serve/wal_corrupt_skipped`.
//! * a **bad checksum** mid-file (bit rot, a hostile edit): the record
//!   is skipped by its intact framing and replay continues. Also
//!   counted on `serve/wal_corrupt_skipped`. The
//!   `wal-skips-checksum` mutant disables this verification
//!   ([`StoreOptions::verify_checksums`]) and is killed by the
//!   mutation campaign.
//!
//! Appends deliberately do not fsync: the threat model is process
//! death (SIGKILL, OOM-kill, panic), which the page cache survives,
//! not power loss — a lost suffix only costs re-verification, never a
//! wrong verdict, because every record is recomputable.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use vrm_explore::{checksum64, Coverage, TruncationReason, Verdict};
use vrm_obs::serve as names;
use vrm_obs::Counter;

use crate::cache::CacheEntry;

/// Leading magic of a serve write-ahead log.
pub const WAL_MAGIC: &[u8; 8] = b"VRMWAL1\n";

/// The log's file name under the daemon's `--state-dir`.
pub const WAL_FILE: &str = "serve.wal";

/// Durability policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Whether replay verifies record checksums. **Always `true` in
    /// production**; `false` is the `serve-wal-skips-checksum` mutant,
    /// under which a corrupted verdict record is replayed as if it
    /// were intact.
    pub verify_checksums: bool,
    /// Appended bytes after which [`DurableStore::should_compact`]
    /// asks the service to snapshot live state over the grown log.
    pub compact_threshold: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            verify_checksums: true,
            compact_threshold: 1 << 20,
        }
    }
}

/// One durable mutation, in replay order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A verdict entered the cache.
    Verdict {
        /// The job's content digest (the cache key).
        digest: u128,
        /// The cached answer.
        entry: CacheEntry,
    },
    /// A suspended walk was parked, serialized as a VRMSRES1 blob.
    Park {
        /// The program digest (the checkpoint-store key).
        pdigest: u128,
        /// The serialized [`vrm_sekvm::machine::ScheduleResume`].
        blob: Vec<u8>,
    },
    /// A parked walk was taken for resumption.
    Take {
        /// The program digest.
        pdigest: u128,
    },
    /// A cached verdict was dropped (stale-`Unknown` TTL expiry).
    Remove {
        /// The job's content digest.
        digest: u128,
    },
}

/// What replaying an existing log produced.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Records dropped as torn or checksum-bad.
    pub skipped: u64,
}

/// The append handle over one `serve.wal`, plus its replay logic.
#[derive(Debug)]
pub struct DurableStore {
    path: PathBuf,
    file: Option<File>,
    opts: StoreOptions,
    /// Bytes appended since open or the last compaction.
    written: u64,
}

impl DurableStore {
    /// Opens (creating if absent) the log under `state_dir`, replays
    /// it, truncates any torn tail, and returns the append handle
    /// plus every surviving record in order.
    pub fn open(
        state_dir: &Path,
        opts: StoreOptions,
    ) -> std::io::Result<(DurableStore, ReplayOutcome)> {
        std::fs::create_dir_all(state_dir)?;
        let path = state_dir.join(WAL_FILE);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let (outcome, good_len) = replay(&bytes, &opts);
        if outcome.skipped > 0 {
            Counter::new(names::WAL_CORRUPT_SKIPPED).add(outcome.skipped);
        }
        let file = if bytes.is_empty() {
            let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
            f.write_all(WAL_MAGIC)?;
            f
        } else {
            // A torn tail is cut away so the next append starts on a
            // record boundary; mid-file skips keep their bytes (the
            // framing is intact, replay steps over them every time).
            if (good_len as u64) < bytes.len() as u64 {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(good_len as u64)?;
            }
            OpenOptions::new().append(true).open(&path)?
        };
        Ok((
            DurableStore {
                path,
                file: Some(file),
                opts,
                written: 0,
            },
            outcome,
        ))
    }

    /// The policy this store runs under.
    pub fn options(&self) -> &StoreOptions {
        &self.opts
    }

    /// Appends one record, write-ahead of the in-memory mutation it
    /// records. An I/O failure — or an injected
    /// [`vrm_faults::FaultKind::WalFail`] — degrades that record to
    /// memory-only (counted on `serve/wal_write_failed`): the daemon
    /// keeps answering, it just forgets this record on restart.
    pub fn append(&mut self, rec: &WalRecord) {
        if vrm_faults::poll(vrm_faults::Site::WalWrite) == Some(vrm_faults::FaultKind::WalFail) {
            Counter::new(names::WAL_WRITE_FAILED).add(1);
            return;
        }
        let frame = encode_record(rec);
        let ok = match &mut self.file {
            Some(f) => f.write_all(&frame).and_then(|()| f.flush()).is_ok(),
            None => false,
        };
        if ok {
            self.written += frame.len() as u64;
        } else {
            Counter::new(names::WAL_WRITE_FAILED).add(1);
        }
    }

    /// `true` once enough has been appended that the service should
    /// call [`compact`](Self::compact) with its live state.
    pub fn should_compact(&self) -> bool {
        self.written > self.opts.compact_threshold
    }

    /// Replaces the grown log with a snapshot of live state: the
    /// records are written to `serve.wal.tmp` and atomically renamed
    /// over the log, so a crash mid-compaction leaves the old log
    /// intact. Counted on `serve/wal_compactions`.
    pub fn compact(&mut self, live: impl Iterator<Item = WalRecord>) {
        let tmp = self.path.with_extension("wal.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(WAL_MAGIC)?;
            for rec in live {
                f.write_all(&encode_record(&rec))?;
            }
            f.flush()?;
            std::fs::rename(&tmp, &self.path)?;
            Ok(())
        };
        match write() {
            Ok(()) => {
                self.file = OpenOptions::new().append(true).open(&self.path).ok();
                self.written = 0;
                Counter::new(names::WAL_COMPACTIONS).add(1);
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                Counter::new(names::WAL_WRITE_FAILED).add(1);
            }
        }
    }
}

/// Parses a log image into its surviving records plus the byte length
/// of the well-framed prefix (everything past it is a torn tail).
pub fn replay(bytes: &[u8], opts: &StoreOptions) -> (ReplayOutcome, usize) {
    let mut out = ReplayOutcome::default();
    if bytes.is_empty() {
        return (out, 0);
    }
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // Not a log at all: everything is dropped and the file is
        // rewritten from the magic up.
        out.skipped = 1;
        return (out, 0);
    }
    let mut pos = WAL_MAGIC.len();
    let mut good_len = pos;
    while pos < bytes.len() {
        let Some((rec_end, kind, payload)) = frame_at(bytes, pos) else {
            // Torn tail: the final record was interrupted mid-write.
            out.skipped += 1;
            break;
        };
        let framed = &bytes[pos..pos + 5 + payload.len()];
        let sum = u64::from_le_bytes(bytes[rec_end - 8..rec_end].try_into().expect("8 bytes"));
        let intact = !opts.verify_checksums || sum == checksum64(framed);
        if intact {
            match decode_record(kind, payload) {
                Some(rec) => out.records.push(rec),
                None => out.skipped += 1,
            }
        } else {
            out.skipped += 1;
        }
        pos = rec_end;
        good_len = pos;
    }
    (out, good_len)
}

/// The `[kind][len][payload]` + checksum frame starting at `pos`, or
/// `None` when the remaining bytes cannot hold it (a torn tail).
fn frame_at(bytes: &[u8], pos: usize) -> Option<(usize, u8, &[u8])> {
    if bytes.len() - pos < 5 {
        return None;
    }
    let kind = bytes[pos];
    let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
    let rec_end = pos.checked_add(5)?.checked_add(len)?.checked_add(8)?;
    if rec_end > bytes.len() {
        return None;
    }
    Some((rec_end, kind, &bytes[pos + 5..pos + 5 + len]))
}

/// Serializes one record into its on-disk frame.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let (kind, payload) = match rec {
        WalRecord::Verdict { digest, entry } => {
            let mut p = Vec::new();
            p.extend_from_slice(&digest.to_le_bytes());
            encode_verdict(&mut p, &entry.verdict);
            p.extend_from_slice(&(entry.states as u64).to_le_bytes());
            p.extend_from_slice(&entry.wall_ns.to_le_bytes());
            p.extend_from_slice(&(entry.detail.len() as u32).to_le_bytes());
            p.extend_from_slice(entry.detail.as_bytes());
            (1u8, p)
        }
        WalRecord::Park { pdigest, blob } => {
            let mut p = Vec::new();
            p.extend_from_slice(&pdigest.to_le_bytes());
            p.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            p.extend_from_slice(blob);
            (2u8, p)
        }
        WalRecord::Take { pdigest } => (3u8, pdigest.to_le_bytes().to_vec()),
        WalRecord::Remove { digest } => (4u8, digest.to_le_bytes().to_vec()),
    };
    let mut frame = Vec::with_capacity(5 + payload.len() + 8);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let sum = checksum64(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

fn decode_record(kind: u8, payload: &[u8]) -> Option<WalRecord> {
    let mut c = payload;
    match kind {
        1 => {
            let digest = take_u128(&mut c)?;
            let verdict = decode_verdict(&mut c)?;
            let states = take_u64(&mut c)? as usize;
            let wall_ns = take_u64(&mut c)?;
            let dlen = take_u32(&mut c)? as usize;
            let detail = String::from_utf8(take(&mut c, dlen)?.to_vec()).ok()?;
            if !c.is_empty() {
                return None;
            }
            Some(WalRecord::Verdict {
                digest,
                entry: CacheEntry {
                    verdict,
                    states,
                    wall_ns,
                    detail,
                },
            })
        }
        2 => {
            let pdigest = take_u128(&mut c)?;
            let blen = take_u32(&mut c)? as usize;
            let blob = take(&mut c, blen)?.to_vec();
            if !c.is_empty() {
                return None;
            }
            Some(WalRecord::Park { pdigest, blob })
        }
        3 => {
            let pdigest = take_u128(&mut c)?;
            if !c.is_empty() {
                return None;
            }
            Some(WalRecord::Take { pdigest })
        }
        4 => {
            let digest = take_u128(&mut c)?;
            if !c.is_empty() {
                return None;
            }
            Some(WalRecord::Remove { digest })
        }
        _ => None,
    }
}

fn encode_verdict(out: &mut Vec<u8>, v: &Verdict) {
    match v {
        Verdict::Pass => out.push(0),
        Verdict::Fail => out.push(1),
        Verdict::Unknown { coverage } => {
            out.push(2);
            out.extend_from_slice(&(coverage.states as u64).to_le_bytes());
            out.extend_from_slice(&(coverage.frontier_len as u64).to_le_bytes());
            out.push(reason_tag(coverage.reason));
        }
    }
}

fn decode_verdict(c: &mut &[u8]) -> Option<Verdict> {
    match take(c, 1)?[0] {
        0 => Some(Verdict::Pass),
        1 => Some(Verdict::Fail),
        2 => {
            let states = take_u64(c)? as usize;
            let frontier_len = take_u64(c)? as usize;
            let reason = tag_reason(take(c, 1)?[0])?;
            Some(Verdict::Unknown {
                coverage: Coverage {
                    states,
                    frontier_len,
                    reason,
                },
            })
        }
        _ => None,
    }
}

/// Stable byte tag of a truncation reason (shared with the VRMSRES1
/// container's tags so both durable formats agree).
pub fn reason_tag(r: TruncationReason) -> u8 {
    match r {
        TruncationReason::StateLimit => 0,
        TruncationReason::DepthLimit => 1,
        TruncationReason::Deadline => 2,
        TruncationReason::MemoryBudget => 3,
        TruncationReason::WorkerLost => 4,
    }
}

/// Inverse of [`reason_tag`].
pub fn tag_reason(t: u8) -> Option<TruncationReason> {
    Some(match t {
        0 => TruncationReason::StateLimit,
        1 => TruncationReason::DepthLimit,
        2 => TruncationReason::Deadline,
        3 => TruncationReason::MemoryBudget,
        4 => TruncationReason::WorkerLost,
        _ => return None,
    })
}

fn take<'a>(c: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if c.len() < n {
        return None;
    }
    let (head, tail) = c.split_at(n);
    *c = tail;
    Some(head)
}

fn take_u32(c: &mut &[u8]) -> Option<u32> {
    take(c, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn take_u64(c: &mut &[u8]) -> Option<u64> {
    take(c, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn take_u128(c: &mut &[u8]) -> Option<u128> {
    take(c, 16).map(|b| u128::from_le_bytes(b.try_into().expect("16 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(detail: &str) -> CacheEntry {
        CacheEntry {
            verdict: Verdict::Pass,
            states: 117,
            wall_ns: 42,
            detail: detail.into(),
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Verdict {
                digest: 0xabc,
                entry: entry("outcomes:3"),
            },
            WalRecord::Park {
                pdigest: 0xdef,
                blob: vec![1, 2, 3, 4, 5],
            },
            WalRecord::Take { pdigest: 0xdef },
            WalRecord::Remove { digest: 0xabc },
            WalRecord::Verdict {
                digest: 7,
                entry: CacheEntry {
                    verdict: Verdict::Unknown {
                        coverage: Coverage {
                            states: 9,
                            frontier_len: 2,
                            reason: TruncationReason::WorkerLost,
                        },
                    },
                    states: 9,
                    wall_ns: 1,
                    detail: String::new(),
                },
            },
        ]
    }

    fn log_of(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn records_round_trip_through_the_log_image() {
        let records = sample_records();
        let (out, good) = replay(&log_of(&records), &StoreOptions::default());
        assert_eq!(out.records, records);
        assert_eq!(out.skipped, 0);
        assert_eq!(good, log_of(&records).len());
    }

    #[test]
    fn a_torn_tail_is_dropped_and_its_offset_reported() {
        let records = sample_records();
        let full = log_of(&records);
        let intact = log_of(&records[..4]);
        // Cut mid-way through the final record, as a SIGKILL during
        // write_all would.
        let torn = &full[..intact.len() + 3];
        let (out, good) = replay(torn, &StoreOptions::default());
        assert_eq!(out.records, records[..4]);
        assert_eq!(out.skipped, 1);
        assert_eq!(
            good,
            intact.len(),
            "the well-framed prefix must end exactly at the last whole record"
        );
    }

    #[test]
    fn a_flipped_byte_skips_exactly_that_record() {
        let records = sample_records();
        let mut bytes = log_of(&records);
        // Corrupt a payload byte of the *first* record (offset 8 is
        // the kind byte; 8+5 starts the payload).
        bytes[WAL_MAGIC.len() + 6] ^= 0x20;
        let (out, good) = replay(&bytes, &StoreOptions::default());
        assert_eq!(out.skipped, 1);
        assert_eq!(out.records, records[1..], "later records must survive");
        assert_eq!(good, bytes.len());
    }

    #[test]
    fn the_checksum_mutant_accepts_the_corrupt_record() {
        // The `serve-wal-skips-checksum` switch: with verification off,
        // a corrupted-but-decodable record is replayed as if intact —
        // the divergence the mutation campaign must detect.
        let records = vec![WalRecord::Verdict {
            digest: 1,
            entry: entry("outcomes:3"),
        }];
        let mut bytes = log_of(&records);
        let detail_last = bytes.len() - 8 - 1;
        bytes[detail_last] ^= 0x01; // "outcomes:3" -> "outcomes:2"
        let sound = replay(
            &bytes,
            &StoreOptions {
                verify_checksums: true,
                ..Default::default()
            },
        )
        .0;
        assert_eq!(sound.records.len(), 0);
        assert_eq!(sound.skipped, 1);
        let bugged = replay(
            &bytes,
            &StoreOptions {
                verify_checksums: false,
                ..Default::default()
            },
        )
        .0;
        assert_eq!(bugged.skipped, 0);
        match &bugged.records[0] {
            WalRecord::Verdict { entry, .. } => assert_eq!(entry.detail, "outcomes:2"),
            r => panic!("unexpected record {r:?}"),
        }
    }

    #[test]
    fn a_non_log_file_is_dropped_wholesale() {
        let (out, good) = replay(b"not a wal at all", &StoreOptions::default());
        assert!(out.records.is_empty());
        assert_eq!(out.skipped, 1);
        assert_eq!(good, 0, "the rewrite must start from offset zero");
    }

    #[test]
    fn open_truncates_the_torn_tail_on_disk() {
        let dir = std::env::temp_dir().join(format!(
            "vrm-serve-store-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let records = sample_records();
        {
            let (mut store, replayed) =
                DurableStore::open(&dir, StoreOptions::default()).expect("open fresh");
            assert!(replayed.records.is_empty());
            for r in &records {
                store.append(r);
            }
        }
        // Tear the tail by hand, then reopen: the survivors replay and
        // the file is cut back to the last whole record.
        let path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&path).expect("wal exists").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(len - 4).expect("tear");
        drop(f);
        let (mut store, replayed) =
            DurableStore::open(&dir, StoreOptions::default()).expect("reopen");
        assert_eq!(replayed.records, records[..4]);
        assert_eq!(replayed.skipped, 1);
        // Appending after the truncation lands on a clean boundary.
        store.append(&records[0]);
        drop(store);
        let (_, replayed) = DurableStore::open(&dir, StoreOptions::default()).expect("reopen 2");
        assert_eq!(replayed.skipped, 0);
        assert_eq!(replayed.records.len(), 5);
        assert_eq!(replayed.records[4], records[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_live_records_and_resets_the_threshold() {
        let dir = std::env::temp_dir().join(format!(
            "vrm-serve-store-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            compact_threshold: 64,
            ..Default::default()
        };
        let (mut store, _) = DurableStore::open(&dir, opts).expect("open");
        for i in 0..20u128 {
            store.append(&WalRecord::Verdict {
                digest: i,
                entry: entry("outcomes:1"),
            });
        }
        assert!(store.should_compact());
        let live = vec![
            WalRecord::Verdict {
                digest: 99,
                entry: entry("outcomes:9"),
            },
            WalRecord::Park {
                pdigest: 5,
                blob: vec![9, 9],
            },
        ];
        store.compact(live.clone().into_iter());
        assert!(!store.should_compact());
        drop(store);
        let (_, replayed) = DurableStore::open(&dir, opts).expect("reopen");
        assert_eq!(replayed.records, live);
        assert_eq!(replayed.skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
