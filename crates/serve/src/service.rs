//! The daemon's core: a bounded two-lane job scheduler in front of
//! the verdict cache, independent of any socket.
//!
//! [`Service`] is everything the daemon does *except* I/O — the
//! server, the bench load driver, and the mutation campaign's oracles
//! all drive this type directly, so the scheduling and caching
//! semantics are testable in-process.
//!
//! ## Lanes
//!
//! Fresh queries enter the **fast lane**; budget-doubling escalations
//! of `Unknown` verdicts enter the **slow lane**. Workers always drain
//! the fast lane first: an escalated walk can be orders of magnitude
//! larger than an interactive query, and the policy guarantees the
//! big walk never starves the small ones. Escalations are still
//! cheap *in aggregate* because they resume the suspended walk from
//! the checkpoint store instead of restarting.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vrm_explore::{TruncationReason, Verdict};
use vrm_obs::serve as names;
use vrm_obs::Counter;

use crate::cache::{CacheEntry, CheckpointStore, Lookup, VerdictCache};
use crate::digest::{job_digest, program_digest};
use crate::job::{execute_blob, JobConfig, JobResult, JobSpec};
use crate::store::{DurableStore, StoreOptions, WalRecord};
use crate::supervisor::{execute_isolated, WorkerIsolation};

/// Daemon-side policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Combined bound on queued (not yet running) jobs across both
    /// lanes; submissions beyond it are rejected, never buffered
    /// unboundedly.
    pub queue_cap: usize,
    /// How many budget doublings an `escalate` job gets before its
    /// `Unknown` is final.
    pub escalate_retries: usize,
    /// Whether the verdict-relevant config participates in the cache
    /// key. **Always `true` in production**; `false` is the
    /// `serve-stale-verdict-after-config-change` mutant, under which a
    /// re-query with a larger budget aliases to the old budget's
    /// cached verdict.
    pub digest_includes_config: bool,
    /// Whether workers resume parked checkpoints. **Always `true` in
    /// production**; `false` is the
    /// `serve-escalation-drops-checkpoint` mutant, under which every
    /// escalation restarts its walk from scratch.
    pub reuse_checkpoints: bool,
    /// Durable-state directory. `Some` makes the verdict cache and
    /// checkpoint store crash-safe: every mutation is written ahead to
    /// `serve.wal` in this directory and replayed on the next start
    /// ([`crate::store`]); `None` keeps the daemon memory-only.
    pub state_dir: Option<PathBuf>,
    /// Out-of-process execution policy. `Some` moves every job into a
    /// supervised worker process ([`crate::supervisor`]), so a hung or
    /// crashed exploration degrades that one job to
    /// `Unknown{WorkerLost}` instead of taking the daemon down;
    /// `None` executes in-process on the worker threads.
    pub isolation: Option<WorkerIsolation>,
    /// LRU bound on cached verdicts ([`VerdictCache::with_cap`]).
    pub verdict_cap: usize,
    /// Staleness TTL for cached `Unknown` verdicts; `None` serves a
    /// budget-bound "don't know" forever.
    pub unknown_ttl: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 256,
            escalate_retries: 2,
            digest_includes_config: true,
            reuse_checkpoints: true,
            state_dir: None,
            isolation: None,
            verdict_cap: VerdictCache::DEFAULT_CAP,
            unknown_ttl: Some(VerdictCache::DEFAULT_UNKNOWN_TTL),
        }
    }
}

/// Opaque job handle, unique per daemon lifetime.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in a lane.
    Queued,
    /// A worker is executing it (escalation rounds included).
    Running,
    /// Finished; the result is available.
    Done,
}

impl JobStatus {
    /// The wire-protocol status string.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        }
    }
}

/// A point-in-time view of one job, as returned by
/// [`Service::poll`]/[`Service::wait`].
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job's handle.
    pub id: JobId,
    /// The job's cache key (content digest).
    pub digest: u128,
    /// Lifecycle position.
    pub status: JobStatus,
    /// Present exactly when `status` is [`JobStatus::Done`]: the
    /// verdict, or a protocol-level execution error (unparsable
    /// program, unknown name).
    pub result: Option<Result<JobResult, String>>,
}

/// What [`Service::submit`] produced.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Answered from the verdict cache without queueing anything; the
    /// result's `states_new` is 0 and `wall_ns` the *original*
    /// computation's cost (what the hit saved).
    Cached {
        /// The content digest the hit was found under.
        digest: u128,
        /// The cached answer.
        result: JobResult,
    },
    /// Queued for execution; poll or wait on the handle.
    Queued(JobId),
}

struct JobEntry {
    spec: JobSpec,
    /// The config the next attempt runs under: starts as submitted
    /// (which the digest captures), budget doubles on escalation.
    run_cfg: JobConfig,
    digest: u128,
    pdigest: u128,
    status: JobStatus,
    escalations_left: usize,
    /// Fresh states and wall time accumulated across attempts.
    acc_states_new: usize,
    acc_wall_ns: u64,
    resumed_any: bool,
    result: Option<Result<JobResult, String>>,
}

#[derive(Default)]
struct SchedState {
    fast: VecDeque<JobId>,
    slow: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    cache: VerdictCache,
    checkpoints: CheckpointStore,
    /// The write-ahead log, when the daemon runs with a `--state-dir`.
    store: Option<DurableStore>,
    next_id: JobId,
    open: bool,
}

impl SchedState {
    /// Appends write-ahead of the in-memory mutation; a no-op for a
    /// memory-only daemon.
    fn wal_append(&mut self, rec: &WalRecord) {
        if let Some(store) = self.store.as_mut() {
            store.append(rec);
        }
    }

    /// Snapshots live state over the grown log once the append volume
    /// crosses the store's threshold.
    fn wal_compact_if_needed(&mut self) {
        if !self
            .store
            .as_ref()
            .is_some_and(DurableStore::should_compact)
        {
            return;
        }
        let live: Vec<WalRecord> = self
            .cache
            .iter_lru()
            .map(|(digest, entry)| WalRecord::Verdict {
                digest,
                entry: entry.clone(),
            })
            .chain(
                self.checkpoints
                    .iter_lru()
                    .map(|(pdigest, blob)| WalRecord::Park {
                        pdigest,
                        blob: blob.clone(),
                    }),
            )
            .collect();
        self.store
            .as_mut()
            .expect("compaction checked the store exists")
            .compact(live.into_iter());
    }
}

/// The daemon minus its sockets: verdict cache, checkpoint store, and
/// the two-lane worker pool.
pub struct Service {
    cfg: ServeConfig,
    state: Mutex<SchedState>,
    work: Condvar,
    done: Condvar,
}

impl Service {
    /// Builds the service and spawns its worker pool. With a
    /// `state_dir` configured, the write-ahead log is replayed first:
    /// the daemon resumes with every durable verdict and parked
    /// checkpoint its predecessor recorded (counted on
    /// `serve/wal_replayed`), so a warm corpus pass after a crash is
    /// 100% cache hits. A log that cannot be opened degrades the
    /// daemon to memory-only service rather than refusing to start.
    pub fn start(cfg: ServeConfig) -> Arc<Service> {
        let workers = cfg.workers.max(1);
        let mut cache = VerdictCache::with_policy(cfg.verdict_cap, cfg.unknown_ttl);
        let mut checkpoints = CheckpointStore::default();
        let store = cfg.state_dir.as_ref().and_then(|dir| {
            match DurableStore::open(dir, StoreOptions::default()) {
                Ok((store, replayed)) => {
                    let n = replayed.records.len() as u64;
                    for rec in replayed.records {
                        match rec {
                            WalRecord::Verdict { digest, entry } => cache.insert(digest, entry),
                            WalRecord::Park { pdigest, blob } => checkpoints.park(pdigest, blob),
                            WalRecord::Take { pdigest } => {
                                checkpoints.take(pdigest);
                            }
                            WalRecord::Remove { digest } => cache.remove(digest),
                        }
                    }
                    Counter::new(names::WAL_REPLAYED).add(n);
                    Some(store)
                }
                Err(e) => {
                    Counter::new(names::WAL_WRITE_FAILED).add(1);
                    vrm_obs::event(
                        "wal_open_failed",
                        &[("error", format!("{e}").as_str().into())],
                    );
                    None
                }
            }
        });
        let svc = Arc::new(Service {
            cfg,
            state: Mutex::new(SchedState {
                open: true,
                next_id: 1,
                cache,
                checkpoints,
                store,
                ..Default::default()
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        for w in 0..workers {
            let svc = Arc::clone(&svc);
            std::thread::Builder::new()
                .name(format!("serve-worker-{w}"))
                .spawn(move || svc.worker_loop())
                .expect("spawn serve worker");
        }
        svc
    }

    /// The policy this service runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Submits a job: answered from the cache when the content digest
    /// is already known, queued into the fast lane otherwise.
    ///
    /// `Err` means the job was rejected before execution: unparsable
    /// program, unknown name, full queue, or a shut-down service.
    pub fn submit(&self, spec: JobSpec, cfg: JobConfig) -> Result<SubmitOutcome, String> {
        let digest = job_digest(&spec, &cfg, self.cfg.digest_includes_config)?;
        let pdigest = program_digest(&spec)?;
        let mut st = self.state.lock().expect("serve state");
        if !st.open {
            return Err("service is shut down".into());
        }
        let mut expired = false;
        let hit = match st.cache.lookup(digest) {
            Lookup::Hit(entry) => Some(JobResult {
                verdict: entry.verdict,
                states: entry.states,
                states_new: 0,
                wall_ns: entry.wall_ns,
                resumed: false,
                detail: entry.detail.clone(),
            }),
            Lookup::Expired => {
                expired = true;
                None
            }
            Lookup::Miss => None,
        };
        if let Some(result) = hit {
            Counter::new(names::CACHE_HIT).add(1);
            return Ok(SubmitOutcome::Cached { digest, result });
        }
        if expired {
            // The stale Unknown was just dropped; make the removal
            // durable so a restart doesn't resurrect it, and fall
            // through to a fresh exploration (which resumes the parked
            // checkpoint, if one survived).
            st.wal_append(&WalRecord::Remove { digest });
        }
        Counter::new(names::CACHE_MISS).add(1);
        if st.fast.len() + st.slow.len() >= self.cfg.queue_cap {
            return Err(format!("queue full ({} jobs)", self.cfg.queue_cap));
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobEntry {
                spec,
                run_cfg: cfg,
                digest,
                pdigest,
                status: JobStatus::Queued,
                escalations_left: if cfg.escalate {
                    self.cfg.escalate_retries
                } else {
                    0
                },
                acc_states_new: 0,
                acc_wall_ns: 0,
                resumed_any: false,
                result: None,
            },
        );
        st.fast.push_back(id);
        Counter::new(names::JOBS_SUBMITTED).add(1);
        self.work.notify_one();
        Ok(SubmitOutcome::Queued(id))
    }

    /// A point-in-time view of a job; `None` for an unknown handle.
    pub fn poll(&self, id: JobId) -> Option<JobSnapshot> {
        let st = self.state.lock().expect("serve state");
        st.jobs.get(&id).map(|j| JobSnapshot {
            id,
            digest: j.digest,
            status: j.status,
            result: j.result.clone(),
        })
    }

    /// Blocks until the job finishes and returns its final snapshot.
    ///
    /// # Panics
    /// On an unknown handle — callers only wait on ids they submitted.
    pub fn wait(&self, id: JobId) -> JobSnapshot {
        let mut st = self.state.lock().expect("serve state");
        loop {
            let j = st.jobs.get(&id).expect("wait on unknown job id");
            if j.status == JobStatus::Done {
                return JobSnapshot {
                    id,
                    digest: j.digest,
                    status: j.status,
                    result: j.result.clone(),
                };
            }
            st = self.done.wait(st).expect("serve state");
        }
    }

    /// Queued-but-not-running depth of (fast, slow) lanes.
    pub fn queue_depths(&self) -> (usize, usize) {
        let st = self.state.lock().expect("serve state");
        (st.fast.len(), st.slow.len())
    }

    /// (verdict-cache entries, parked checkpoints).
    pub fn cache_sizes(&self) -> (usize, usize) {
        let st = self.state.lock().expect("serve state");
        (st.cache.len(), st.checkpoints.len())
    }

    /// Stops accepting submissions; workers drain the queues and exit.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().expect("serve state");
        st.open = false;
        drop(st);
        self.work.notify_all();
        self.done.notify_all();
    }

    /// `false` once [`shutdown`](Self::shutdown) has been called.
    pub fn is_open(&self) -> bool {
        self.state.lock().expect("serve state").open
    }

    fn worker_loop(&self) {
        loop {
            // Claim a job: fast lane first, then slow; park until
            // notified when both are empty.
            let (id, spec, run_cfg, resume) = {
                let mut st = self.state.lock().expect("serve state");
                let id = loop {
                    if let Some(id) = st.fast.pop_front().or_else(|| st.slow.pop_front()) {
                        break id;
                    }
                    if !st.open {
                        return;
                    }
                    st = self.work.wait(st).expect("serve state");
                };
                let pdigest = st.jobs[&id].pdigest;
                let wants_schedules = matches!(st.jobs[&id].spec, JobSpec::Schedules { .. });
                let resume = if self.cfg.reuse_checkpoints && wants_schedules {
                    st.checkpoints.take(pdigest)
                } else {
                    None
                };
                if resume.is_some() {
                    Counter::new(names::CHECKPOINT_RESUME).add(1);
                    st.wal_append(&WalRecord::Take { pdigest });
                }
                let j = st.jobs.get_mut(&id).expect("claimed job exists");
                j.status = JobStatus::Running;
                (id, j.spec.clone(), j.run_cfg, resume)
            };

            // The expensive part runs outside the lock — in a
            // supervised worker process when isolation is on, on this
            // thread otherwise.
            let started = Instant::now();
            let outcome = match &self.cfg.isolation {
                Some(iso) => execute_isolated(iso, &spec, &run_cfg, resume.as_deref()),
                None => execute_blob(&spec, &run_cfg, resume.as_deref()),
            };
            let wall_ns = started.elapsed().as_nanos() as u64;

            let mut st = self.state.lock().expect("serve state");
            match outcome {
                Ok((res, parked)) => {
                    Counter::new(names::STATES_EXPLORED).add(res.states_new as u64);
                    let lost_worker = matches!(
                        &res.verdict,
                        Verdict::Unknown { coverage }
                            if coverage.reason == TruncationReason::WorkerLost
                    );
                    // A lost worker returns no checkpoint; re-park the
                    // walk it was handed so the paid-for frontier
                    // survives the death.
                    let parked = parked.or(if lost_worker { resume } else { None });
                    if let Some(p) = parked {
                        // Park unconditionally — the reuse switch
                        // gates *taking*, so the mutant models a
                        // scheduler that forgets to look, not a store
                        // that was never filled.
                        let pdigest = st.jobs[&id].pdigest;
                        st.wal_append(&WalRecord::Park {
                            pdigest,
                            blob: p.clone(),
                        });
                        st.checkpoints.park(pdigest, p);
                    }
                    let j = st.jobs.get_mut(&id).expect("running job exists");
                    j.acc_states_new += res.states_new;
                    j.acc_wall_ns += wall_ns;
                    j.resumed_any |= res.resumed;
                    if res.verdict.is_unknown() && j.escalations_left > 0 {
                        // Escalate: doubled budget, slow lane. The
                        // next attempt resumes the checkpoint parked
                        // just above (unless the mutant drops it).
                        j.escalations_left -= 1;
                        j.run_cfg.max_states = j.run_cfg.max_states.saturating_mul(2);
                        j.status = JobStatus::Queued;
                        st.slow.push_back(id);
                        Counter::new(names::JOBS_ESCALATED).add(1);
                        self.work.notify_one();
                        continue;
                    }
                    let final_res = JobResult {
                        states_new: j.acc_states_new,
                        wall_ns: j.acc_wall_ns,
                        resumed: j.resumed_any,
                        ..res
                    };
                    let digest = j.digest;
                    j.status = JobStatus::Done;
                    j.result = Some(Ok(final_res.clone()));
                    let entry = CacheEntry {
                        verdict: final_res.verdict,
                        states: final_res.states,
                        wall_ns: final_res.wall_ns,
                        detail: final_res.detail,
                    };
                    st.wal_append(&WalRecord::Verdict {
                        digest,
                        entry: entry.clone(),
                    });
                    st.cache.insert(digest, entry);
                    st.wal_compact_if_needed();
                    Counter::new(names::JOBS_COMPLETED).add(1);
                }
                Err(e) => {
                    // Attempt-level failures (bad program, unknown
                    // name) finish the job but are never cached: they
                    // cost nothing to recompute and a fixed registry
                    // should be re-consulted next time.
                    let j = st.jobs.get_mut(&id).expect("running job exists");
                    j.status = JobStatus::Done;
                    j.result = Some(Err(e));
                    Counter::new(names::JOBS_COMPLETED).add(1);
                }
            }
            self.done.notify_all();
        }
    }
}
