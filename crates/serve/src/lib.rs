//! `vrm-serve` — verification as a service.
//!
//! The rest of the workspace answers one query per process: a litmus
//! file, a wDRF theorem check, an every-schedule machine walk. This
//! crate wraps those checkers in a long-lived daemon so verification
//! becomes a *queryable* resource:
//!
//! - **Content-addressed verdicts.** Every job is keyed by a canonical
//!   digest of the normalized program plus the verdict-relevant config
//!   ([`digest`]). A repeat query — byte-different but semantically
//!   identical input included — is answered from the verdict cache in
//!   O(1) without touching an exploration engine.
//! - **Checkpoint continuation.** An `Unknown` verdict (a walk cut
//!   short by budget) is cached *with* the engine's suspended
//!   checkpoint. A later query for the same program with a larger
//!   budget resumes the paid-for walk instead of restarting
//!   ([`vrm_sekvm::machine::Machine::explore_schedules_from`]).
//! - **Two-lane scheduling.** Fresh queries go to the fast lane;
//!   budget-doubling escalations of `Unknown` verdicts go to the slow
//!   lane. Workers prefer the fast lane, so cheap interactive queries
//!   are never starved behind a big escalated walk ([`service`]).
//! - **A line protocol, not a library.** Clients speak newline-
//!   delimited JSON over TCP or a Unix socket ([`protocol`],
//!   [`server`], [`client`]); the `serve` binary is both the daemon
//!   and the client CLI.
//! - **Crash safety.** With a `--state-dir`, every verdict and parked
//!   checkpoint is written ahead to a checksummed log ([`store`]) and
//!   replayed on restart: a daemon SIGKILLed mid-workload comes back
//!   serving a bit-identical, 100%-cache-hit warm replay.
//! - **Worker isolation.** With `--isolate`, jobs execute in
//!   supervised worker processes ([`supervisor`], [`worker`]): a hung
//!   or crashed exploration is killed at its deadline and degrades to
//!   `Unknown`, never a daemon outage.
//!
//! Everything is std-only; the wire format reuses the workspace's
//! hand-rolled [`vrm_obs::json`].
//!
//! ```
//! use vrm_serve::{JobConfig, JobSpec, ServeConfig, Service, SubmitOutcome};
//!
//! let svc = Service::start(ServeConfig::default());
//! let spec = JobSpec::Schedules { workload: "unmap".into() };
//! let id = match svc.submit(spec.clone(), JobConfig::default()).unwrap() {
//!     SubmitOutcome::Queued(id) => id,
//!     SubmitOutcome::Cached { .. } => unreachable!("cold cache"),
//! };
//! let done = svc.wait(id);
//! assert_eq!(done.result.unwrap().unwrap().verdict, vrm_explore::Verdict::Pass);
//! // The same query again is answered without exploring anything.
//! assert!(matches!(
//!     svc.submit(spec, JobConfig::default()).unwrap(),
//!     SubmitOutcome::Cached { .. }
//! ));
//! svc.shutdown();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod digest;
pub mod job;
pub mod protocol;
pub mod server;
pub mod service;
pub mod store;
pub mod supervisor;
pub mod worker;

pub use cache::{CacheEntry, CheckpointStore, Lookup, VerdictCache};
pub use client::{Client, RetryPolicy};
pub use job::{JobConfig, JobResult, JobSpec};
pub use protocol::{Reply, Request};
pub use server::{Endpoint, ServerHandle};
pub use service::{JobId, JobSnapshot, JobStatus, ServeConfig, Service, SubmitOutcome};
pub use store::{DurableStore, StoreOptions, WalRecord};
pub use supervisor::WorkerIsolation;
