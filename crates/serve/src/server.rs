//! The socket layer: accepts TCP or Unix-socket connections and
//! speaks [`crate::protocol`] over them, one thread per connection.
//!
//! All verification semantics live in [`crate::Service`]; this module
//! only frames lines, counts connection-level telemetry, and turns a
//! `shutdown` request into a drained stop.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use vrm_obs::serve as names;
use vrm_obs::Counter;

use crate::protocol::{
    parse_request, render_error, render_progress, render_queued, render_result, render_status,
    Request,
};
use crate::service::{JobStatus, Service, SubmitOutcome};

/// Where a daemon listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7440`; bind to port `0` for an
    /// ephemeral port (the bound address is reported back).
    Tcp(String),
    /// A Unix-domain socket path. A stale socket file from a previous
    /// daemon is removed before binding.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A running accept loop; dropping the handle does *not* stop the
/// daemon — use [`stop`](ServerHandle::stop), or send the protocol
/// `shutdown` op.
pub struct ServerHandle {
    local: Endpoint,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The actually-bound endpoint (the resolved port for `Tcp(..:0)`).
    pub fn local(&self) -> &Endpoint {
        &self.local
    }

    /// Asks the accept loop to exit and waits for it. Queued jobs are
    /// still drained by the service's workers.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept.join();
    }

    /// Blocks until the accept loop exits (a protocol `shutdown`).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Binds the endpoint and spawns the accept loop over an already-
/// started service.
pub fn serve(svc: Arc<Service>, endpoint: &Endpoint) -> std::io::Result<ServerHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let local = Endpoint::Tcp(listener.local_addr()?.to_string());
            listener.set_nonblocking(true)?;
            let accept = spawn_accept(svc, stop.clone(), move |stop_flag, svc| {
                accept_loop(&listener, stop_flag, svc, |stream, svc, stop| {
                    stream.set_nonblocking(false).ok();
                    let reader = BufReader::new(stream.try_clone()?);
                    handle_conn(&svc, &stop, reader, stream);
                    Ok(())
                })
            });
            Ok(ServerHandle {
                local,
                stop,
                accept,
            })
        }
        Endpoint::Unix(path) => {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            let local = Endpoint::Unix(path.clone());
            listener.set_nonblocking(true)?;
            let cleanup = path.clone();
            let accept = spawn_accept(svc, stop.clone(), move |stop_flag, svc| {
                accept_loop(&listener, stop_flag, svc, |stream, svc, stop| {
                    stream.set_nonblocking(false).ok();
                    let reader = BufReader::new(stream.try_clone()?);
                    handle_conn(&svc, &stop, reader, stream);
                    Ok(())
                });
                let _ = std::fs::remove_file(&cleanup);
            });
            Ok(ServerHandle {
                local,
                stop,
                accept,
            })
        }
    }
}

fn spawn_accept<F>(svc: Arc<Service>, stop: Arc<AtomicBool>, f: F) -> JoinHandle<()>
where
    F: FnOnce(Arc<AtomicBool>, Arc<Service>) + Send + 'static,
{
    std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || f(stop, svc))
        .expect("spawn accept loop")
}

/// Generic nonblocking accept loop: polls the stop flag between
/// accepts so a protocol `shutdown` takes effect within one tick.
fn accept_loop<L, S, H>(listener: &L, stop: Arc<AtomicBool>, svc: Arc<Service>, handler: H)
where
    L: Accept<Stream = S>,
    S: Send + 'static,
    H: Fn(S, Arc<Service>, Arc<AtomicBool>) -> std::io::Result<()> + Send + Sync + Copy + 'static,
{
    while !stop.load(Ordering::SeqCst) {
        match listener.accept_stream() {
            Ok(stream) => {
                Counter::new(names::CONNECTIONS).add(1);
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        let _ = handler(stream, svc, stop);
                    })
                    .expect("spawn connection handler");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

trait Accept {
    type Stream;
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
}

impl Accept for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

impl Accept for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> std::io::Result<UnixStream> {
        self.accept().map(|(s, _)| s)
    }
}

/// One connection: read request lines until EOF (or shutdown), write
/// response lines.
fn handle_conn<R: BufRead, W: Write>(svc: &Service, stop: &AtomicBool, reader: R, mut out: W) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        Counter::new(names::REQUESTS).add(1);
        let quit = match parse_request(&line) {
            Ok(req) => dispatch(svc, stop, req, &mut out),
            Err(e) => {
                Counter::new(names::BAD_REQUESTS).add(1);
                write_line(&mut out, &render_error(&e))
            }
        };
        if quit.is_err() || stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Executes one request; `Err` means the connection is done (client
/// went away mid-write, or shutdown).
fn dispatch<W: Write>(
    svc: &Service,
    stop: &AtomicBool,
    req: Request,
    out: &mut W,
) -> std::io::Result<()> {
    match req {
        Request::Submit { spec, cfg, wait } => match svc.submit(spec, cfg) {
            Ok(SubmitOutcome::Cached { digest, result }) => {
                write_line(out, &render_result(digest, None, &result, true))
            }
            Ok(SubmitOutcome::Queued(id)) => {
                if wait {
                    let snap = svc.wait(id);
                    write_snapshot(out, snap)
                } else {
                    let snap = svc.poll(id).expect("job just submitted");
                    write_line(out, &render_queued(snap.digest, id))
                }
            }
            Err(e) => {
                Counter::new(names::BAD_REQUESTS).add(1);
                write_line(out, &render_error(&e))
            }
        },
        Request::Poll { job } => match svc.poll(job) {
            Some(snap) if snap.status == JobStatus::Done => write_snapshot(out, snap),
            Some(snap) => write_line(
                out,
                &render_progress(
                    snap.digest,
                    job,
                    snap.status,
                    Counter::new(names::STATES_EXPLORED).get(),
                ),
            ),
            None => {
                Counter::new(names::BAD_REQUESTS).add(1);
                write_line(out, &render_error(&format!("unknown job {job}")))
            }
        },
        Request::Watch { job } => loop {
            let Some(snap) = svc.poll(job) else {
                Counter::new(names::BAD_REQUESTS).add(1);
                return write_line(out, &render_error(&format!("unknown job {job}")));
            };
            if snap.status == JobStatus::Done {
                return write_snapshot(out, snap);
            }
            write_line(
                out,
                &render_progress(
                    snap.digest,
                    job,
                    snap.status,
                    Counter::new(names::STATES_EXPLORED).get(),
                ),
            )?;
            std::thread::sleep(Duration::from_millis(25));
        },
        Request::Status => {
            let (fast, slow) = svc.queue_depths();
            let (cache, checkpoints) = svc.cache_sizes();
            let counters: Vec<(&'static str, u64)> = names::ALL
                .iter()
                .map(|&n| (n, Counter::new(n).get()))
                .collect();
            write_line(
                out,
                &render_status(fast, slow, cache, checkpoints, &counters),
            )
        }
        Request::Shutdown => {
            svc.shutdown();
            stop.store(true, Ordering::SeqCst);
            let mut w = vrm_obs::json::ObjWriter::new();
            w.field_str("status", "ok")
                .field_str("detail", "shutting down");
            write_line(out, &w.finish())
        }
    }
}

fn write_snapshot<W: Write>(out: &mut W, snap: crate::service::JobSnapshot) -> std::io::Result<()> {
    match snap.result.as_ref().expect("done job has a result") {
        Ok(res) => write_line(out, &render_result(snap.digest, Some(snap.id), res, false)),
        Err(e) => {
            Counter::new(names::BAD_REQUESTS).add(1);
            write_line(out, &render_error(e))
        }
    }
}

fn write_line<W: Write>(out: &mut W, line: &str) -> std::io::Result<()> {
    if vrm_faults::poll(vrm_faults::Site::ServerFrame) == Some(vrm_faults::FaultKind::Disconnect) {
        // Chaos: flush half the frame without its newline and drop the
        // connection, so the client sees a torn reply and must
        // reconnect-and-resubmit (crate::client::RetryPolicy).
        Counter::new(names::FRAMES_CUT).add(1);
        let _ = out.write_all(&line.as_bytes()[..line.len() / 2]);
        let _ = out.flush();
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "injected frame cut",
        ));
    }
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}
