//! The `serve` binary: daemon and client CLI for verification as a
//! service.
//!
//! ```console
//! $ serve listen --tcp 127.0.0.1:7440 --workers 4        # the daemon
//! $ serve listen --uds /tmp/vrm-serve.sock
//! $ serve submit --tcp 127.0.0.1:7440 --litmus litmus/mp.litmus
//! $ serve submit --tcp 127.0.0.1:7440 --schedules unmap --max-states 65536 --escalate
//! $ serve submit --tcp 127.0.0.1:7440 --wdrf ticket-lock --jobs 4
//! $ serve status --tcp 127.0.0.1:7440
//! $ serve shutdown --tcp 127.0.0.1:7440
//! ```
//!
//! `submit` exits with the verdict's code — 0 pass, 1 fail,
//! 3 unknown — and 2 for usage or protocol errors, the same
//! convention every other binary in the workspace follows.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use vrm_obs::json::{escape_into, ObjWriter};
use vrm_serve::server::Endpoint;
use vrm_serve::{Client, RetryPolicy, ServeConfig, Service, WorkerIsolation};

const USAGE: &str = "usage:\n\
  serve listen   (--tcp HOST:PORT | --uds PATH) [--workers N] [--queue-cap N]\n\
                 [--state-dir DIR] [--isolate] [--deadline-ms N]\n\
  serve submit   (--tcp HOST:PORT | --uds PATH) (--litmus FILE | --wdrf NAME | --schedules WORKLOAD | --refinement WORKLOAD)\n\
                 [--max-states N] [--jobs N] [--escalate] [--no-wait | --watch]\n\
  serve status   (--tcp HOST:PORT | --uds PATH)\n\
  serve shutdown (--tcp HOST:PORT | --uds PATH)\n\
  serve worker   (one job line on stdin, one result line on stdout; used by --isolate)\n\
exit codes (submit): 0 pass, 1 fail, 3 unknown, 2 usage/protocol error";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct Parsed {
    endpoint: Option<Endpoint>,
    workers: usize,
    queue_cap: usize,
    state_dir: Option<PathBuf>,
    isolate: bool,
    deadline_ms: Option<u64>,
    kind: Option<(&'static str, String)>,
    max_states: Option<u64>,
    jobs: Option<u64>,
    escalate: bool,
    no_wait: bool,
    watch: bool,
}

fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut p = Parsed {
        endpoint: None,
        workers: 2,
        queue_cap: 256,
        state_dir: None,
        isolate: false,
        deadline_ms: None,
        kind: None,
        max_states: None,
        jobs: None,
        escalate: false,
        no_wait: false,
        watch: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or(format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                p.endpoint = Some(Endpoint::Tcp(value(args, i, "--tcp")?));
                i += 2;
            }
            "--uds" => {
                p.endpoint = Some(Endpoint::Unix(PathBuf::from(value(args, i, "--uds")?)));
                i += 2;
            }
            "--workers" => {
                p.workers = value(args, i, "--workers")?
                    .parse()
                    .map_err(|_| "numeric --workers".to_string())?;
                i += 2;
            }
            "--queue-cap" => {
                p.queue_cap = value(args, i, "--queue-cap")?
                    .parse()
                    .map_err(|_| "numeric --queue-cap".to_string())?;
                i += 2;
            }
            "--state-dir" => {
                p.state_dir = Some(PathBuf::from(value(args, i, "--state-dir")?));
                i += 2;
            }
            "--isolate" => {
                p.isolate = true;
                i += 1;
            }
            "--deadline-ms" => {
                p.deadline_ms = Some(
                    value(args, i, "--deadline-ms")?
                        .parse()
                        .map_err(|_| "numeric --deadline-ms".to_string())?,
                );
                i += 2;
            }
            "--litmus" => {
                p.kind = Some(("litmus", value(args, i, "--litmus")?));
                i += 2;
            }
            "--wdrf" => {
                p.kind = Some(("wdrf", value(args, i, "--wdrf")?));
                i += 2;
            }
            "--schedules" => {
                p.kind = Some(("schedules", value(args, i, "--schedules")?));
                i += 2;
            }
            "--refinement" => {
                p.kind = Some(("refinement", value(args, i, "--refinement")?));
                i += 2;
            }
            "--max-states" => {
                p.max_states = Some(
                    value(args, i, "--max-states")?
                        .parse()
                        .map_err(|_| "numeric --max-states".to_string())?,
                );
                i += 2;
            }
            "--jobs" => {
                p.jobs = Some(
                    value(args, i, "--jobs")?
                        .parse()
                        .map_err(|_| "numeric --jobs".to_string())?,
                );
                i += 2;
            }
            "--escalate" => {
                p.escalate = true;
                i += 1;
            }
            "--no-wait" => {
                p.no_wait = true;
                i += 1;
            }
            "--watch" => {
                p.watch = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(p)
}

fn build_submit_line(p: &Parsed) -> Result<String, String> {
    let (kind, arg) = p.kind.as_ref().ok_or("submit needs a job flag")?;
    let mut w = ObjWriter::new();
    w.field_str("op", "submit").field_str("kind", kind);
    match *kind {
        "litmus" => {
            let text = std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?;
            w.field_str("program", &text);
        }
        "wdrf" => {
            w.field_str("name", arg);
        }
        _ => {
            w.field_str("workload", arg);
        }
    }
    if let Some(n) = p.max_states {
        w.field_u64("max_states", n);
    }
    if let Some(n) = p.jobs {
        w.field_u64("jobs", n);
    }
    if p.escalate {
        w.field_bool("escalate", true);
    }
    if p.no_wait || p.watch {
        w.field_bool("wait", false);
    }
    Ok(w.finish())
}

fn run_listen(p: &Parsed) -> ExitCode {
    let Some(endpoint) = &p.endpoint else {
        return usage();
    };
    let isolation = p.isolate.then(|| {
        let mut iso = WorkerIsolation::default();
        if let Some(ms) = p.deadline_ms {
            iso.deadline = Duration::from_millis(ms);
        }
        iso
    });
    let svc = Service::start(ServeConfig {
        workers: p.workers.max(1),
        queue_cap: p.queue_cap,
        state_dir: p.state_dir.clone(),
        isolation,
        ..Default::default()
    });
    match vrm_serve::server::serve(svc, endpoint) {
        Ok(handle) => {
            println!("listening on {}", handle.local());
            handle.join();
            println!("shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bind {endpoint}: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_submit(p: &Parsed) -> ExitCode {
    let Some(endpoint) = &p.endpoint else {
        return usage();
    };
    let line = match build_submit_line(p) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let reply = match Client::request_with_retry(endpoint, &line, &RetryPolicy::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request {endpoint}: {e}");
            return ExitCode::from(2);
        }
    };
    let reply = if p.watch && reply.status == "queued" {
        let Some(job) = reply.job else {
            eprintln!("queued reply without a job handle");
            return ExitCode::from(2);
        };
        let mut client = match Client::connect(endpoint) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("connect {endpoint}: {e}");
                return ExitCode::from(2);
            }
        };
        match client.watch(job, |r| {
            eprintln!(
                "job {job}: {} ({} states explored daemon-wide)",
                r.status, r.states_new
            );
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("watch: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        reply
    };
    println!("{}", reply.raw);
    match reply.exit_code {
        Some(c @ 0..=255) => ExitCode::from(c as u8),
        _ if reply.status == "queued" => ExitCode::SUCCESS,
        _ => ExitCode::from(2),
    }
}

fn run_simple(op: &str, p: &Parsed) -> ExitCode {
    let Some(endpoint) = &p.endpoint else {
        return usage();
    };
    let mut line = String::from("{\"op\":");
    escape_into(&mut line, op);
    line.push('}');
    match Client::request_with_retry(endpoint, &line, &RetryPolicy::default()) {
        Ok(reply) => {
            println!("{}", reply.raw);
            if reply.status == "ok" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("{op}: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    if cmd == "worker" {
        return ExitCode::from(vrm_serve::worker::run_worker() as u8);
    }
    let parsed = match parse_args(&args[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match cmd {
        "listen" => run_listen(&parsed),
        "submit" => run_submit(&parsed),
        "status" => run_simple("status", &parsed),
        "shutdown" => run_simple("shutdown", &parsed),
        _ => usage(),
    }
}
