//! Content addressing for verification jobs.
//!
//! Two digests per job, both built on the engine's process-stable
//! [`vrm_explore::digest128`]:
//!
//! - the **job digest** keys the verdict cache: canonical program text
//!   plus the verdict-relevant config fields, rendered in sorted field
//!   order so the key is independent of wire-field ordering;
//! - the **program digest** omits the config and keys the checkpoint
//!   side-store, so a re-query with a *larger* budget (different job
//!   digest — a cache miss) still finds the suspended walk it can
//!   continue.
//!
//! Litmus programs are normalized to their parse→print fixed point
//! ([`vrm_memmodel::parser::ParsedLitmus::canonical_text`]): two
//! byte-different files with the same parse share one cache entry, and
//! the canonicalization is idempotent (pinned by the
//! `serve_digest` property tests).

use vrm_memmodel::parser::parse;

use crate::job::{JobConfig, JobSpec};

/// The canonical text a job's digests are computed over — a kind tag
/// line followed by the normalized program (litmus) or registry name
/// (everything else).
///
/// `Err` carries a protocol-level reason (unparsable litmus text).
pub fn canonical_program(spec: &JobSpec) -> Result<String, String> {
    let body = match spec {
        JobSpec::Litmus { text } => parse(text)
            .map(|p| p.canonical_text())
            .map_err(|e| format!("litmus parse: {e}"))?,
        JobSpec::Wdrf { name } => name.clone(),
        JobSpec::Schedules { workload } | JobSpec::Refinement { workload } => workload.clone(),
    };
    Ok(format!("{}\n{body}", spec.kind()))
}

/// Config-independent digest: keys the checkpoint side-store.
pub fn program_digest(spec: &JobSpec) -> Result<u128, String> {
    Ok(vrm_explore::digest128(&canonical_program(spec)?))
}

/// The full cache key. When `include_config` is false the
/// verdict-relevant config is left out of the key — that is the
/// *mutant* configuration ([`crate::ServeConfig`]'s
/// `digest_includes_config` switch): a budget change then silently
/// aliases to the old budget's cached verdict, which the mutation
/// campaign's serve oracle detects end-to-end.
pub fn job_digest(spec: &JobSpec, cfg: &JobConfig, include_config: bool) -> Result<u128, String> {
    let mut text = canonical_program(spec)?;
    if include_config {
        // Sorted field order; `jobs` is deliberately absent (verdicts
        // are driver-independent — see [`JobConfig::jobs`]).
        text.push_str(&format!(
            "\n#config escalate={} max_states={}",
            cfg.escalate, cfg.max_states
        ));
    }
    Ok(vrm_explore::digest128(&text))
}

/// Renders a digest as the 32-hex-digit wire form.
pub fn hex32(d: u128) -> String {
    format!("{d:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_changes_move_the_job_digest_but_not_the_program_digest() {
        let spec = JobSpec::Schedules {
            workload: "unmap".into(),
        };
        let small = JobConfig {
            max_states: 1 << 8,
            ..Default::default()
        };
        let big = JobConfig {
            max_states: 1 << 16,
            ..Default::default()
        };
        assert_ne!(
            job_digest(&spec, &small, true).unwrap(),
            job_digest(&spec, &big, true).unwrap()
        );
        assert_eq!(
            job_digest(&spec, &small, false).unwrap(),
            job_digest(&spec, &big, false).unwrap(),
            "the mutant switch must alias budgets"
        );
        assert_eq!(
            program_digest(&spec).unwrap(),
            program_digest(&spec).unwrap()
        );
    }

    #[test]
    fn job_kinds_with_the_same_name_do_not_collide() {
        let a = JobSpec::Schedules {
            workload: "unmap".into(),
        };
        let b = JobSpec::Refinement {
            workload: "unmap".into(),
        };
        assert_ne!(program_digest(&a).unwrap(), program_digest(&b).unwrap());
    }

    #[test]
    fn hex_form_is_32_digits() {
        assert_eq!(hex32(0).len(), 32);
        assert_eq!(hex32(u128::MAX).len(), 32);
    }
}
