//! The out-of-process worker: one job over stdio, then exit.
//!
//! `serve worker` reads a single submit-shaped JSON line from stdin
//! (plus an optional `resume` field carrying a hex-encoded VRMSRES1
//! checkpoint), executes it in-process exactly as a daemon worker
//! thread would ([`crate::job::execute_blob`]), writes a single
//! result line to stdout — the [`crate::protocol::render_result`]
//! shape extended with `frontier_len`/`reason_tag` (so an `Unknown`'s
//! coverage survives the process boundary) and a `checkpoint` hex
//! field — and exits with the verdict's code (0 pass / 1 fail /
//! 3 unknown; 2 for protocol errors).
//!
//! The process boundary is the whole point: a pathological generated
//! program that hangs or exhausts memory takes down *this* process,
//! and [`crate::supervisor`] converts the death into a bounded retry
//! or a degraded `Unknown{WorkerLost}` — never a daemon outage.
//!
//! ## Chaos knobs
//!
//! Two environment variables let the supervision tests manufacture
//! pathological workers out of the real binary:
//!
//! | variable | effect |
//! |----------|--------|
//! | `VRM_WORKER_STALL_MS` | sleep this long before executing |
//! | `VRM_WORKER_STALL_MATCH` | only stall when the job line contains this substring |

use std::io::{BufRead, Write};

use vrm_obs::json::{self, Json, ObjWriter};

use crate::job::execute_blob;
use crate::protocol::{parse_request, render_error, verdict_str, Request};

/// Lower-case hex of a byte string (the wire form of checkpoint
/// blobs, chosen over base64 to stay within the workspace's
/// hand-rolled JSON's escape-free ASCII subset).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`to_hex`]; `None` on odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Renders the worker's one stdout line for a finished job.
fn render_worker_done(res: &crate::job::JobResult, checkpoint: Option<&[u8]>) -> String {
    let mut w = ObjWriter::new();
    w.field_str("status", "done")
        .field_str("verdict", verdict_str(&res.verdict))
        .field_u64("exit_code", res.exit_code() as u64)
        .field_bool("resumed", res.resumed)
        .field_u64("states", res.states as u64)
        .field_u64("states_new", res.states_new as u64)
        .field_u64("wall_ns", res.wall_ns)
        .field_str("detail", &res.detail);
    if let vrm_explore::Verdict::Unknown { coverage } = &res.verdict {
        w.field_u64("frontier_len", coverage.frontier_len as u64)
            .field_u64(
                "reason_tag",
                crate::store::reason_tag(coverage.reason) as u64,
            );
    }
    if let Some(blob) = checkpoint {
        w.field_str("checkpoint", &to_hex(blob));
    }
    w.finish()
}

fn stall_if_configured(line: &str) {
    let Some(ms) = std::env::var("VRM_WORKER_STALL_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    else {
        return;
    };
    if let Ok(needle) = std::env::var("VRM_WORKER_STALL_MATCH") {
        if !line.contains(&needle) {
            return;
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// The `serve worker` entry point: one job line in on stdin, one
/// result line out on stdout. Returns the process exit code.
pub fn run_worker() -> i32 {
    let stdin = std::io::stdin();
    let mut line = String::new();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let fail = |out: &mut dyn Write, detail: &str| -> i32 {
        let _ = writeln!(out, "{}", render_error(detail));
        let _ = out.flush();
        2
    };
    if stdin.lock().read_line(&mut line).is_err() || line.trim().is_empty() {
        return fail(&mut out, "worker: no job line on stdin");
    }
    stall_if_configured(&line);
    let req = match parse_request(line.trim()) {
        Ok(r) => r,
        Err(e) => return fail(&mut out, &format!("worker: {e}")),
    };
    let Request::Submit { spec, cfg, .. } = req else {
        return fail(&mut out, "worker: expected a submit-shaped job line");
    };
    let resume_blob = json::parse(line.trim())
        .and_then(|v| v.get("resume").and_then(Json::as_str).map(str::to_owned))
        .and_then(|hex| from_hex(&hex));
    match execute_blob(&spec, &cfg, resume_blob.as_deref()) {
        Ok((res, parked)) => {
            let code = res.exit_code();
            let _ = writeln!(out, "{}", render_worker_done(&res, parked.as_deref()));
            let _ = out.flush();
            code
        }
        Err(e) => fail(&mut out, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).as_deref(), Some(&bytes[..]));
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex(""), Some(Vec::new()));
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex digit");
    }

    #[test]
    fn worker_done_lines_carry_unknown_coverage() {
        use vrm_explore::{Coverage, TruncationReason, Verdict};
        let res = crate::job::JobResult {
            verdict: Verdict::Unknown {
                coverage: Coverage {
                    states: 40,
                    frontier_len: 7,
                    reason: TruncationReason::StateLimit,
                },
            },
            states: 40,
            states_new: 40,
            wall_ns: 5,
            resumed: false,
            detail: "outcomes:0".into(),
        };
        let line = render_worker_done(&res, Some(&[0xab, 0xcd]));
        let v = json::parse(&line).expect("worker line is JSON");
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("unknown"));
        assert_eq!(v.get("frontier_len").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("reason_tag").and_then(Json::as_u64), Some(0));
        assert_eq!(v.get("checkpoint").and_then(Json::as_str), Some("abcd"));
    }
}
