//! Job specifications, per-job configuration, and the execution
//! bridge from a job to the workspace's checkers.

use std::time::Instant;

use vrm_core::paper_examples::wdrf_by_name;
use vrm_core::spec::KernelSpec;
use vrm_core::theorem::{check_wdrf, WdrfCheckConfig};
use vrm_explore::{ExploreConfig, Verdict};
use vrm_memmodel::parser::parse;
use vrm_memmodel::runner::{run_litmus, RunOverrides};
use vrm_sekvm::machine::{ExhaustiveConfig, Machine, ScheduleResume};
use vrm_sekvm::{workloads, KCoreConfig};

/// What a client asks the daemon to verify.
///
/// Litmus programs travel by value (the daemon normalizes the text);
/// kernel-side workloads travel by *name* into the shared registries
/// ([`vrm_core::paper_examples::wdrf_by_name`],
/// [`vrm_sekvm::workloads::by_name`]) so a workload name means the
/// same program to the daemon, the bench harness and the mutation
/// campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// A litmus program (the full `.litmus` file text) run through the
    /// shared [`vrm_memmodel::runner`] pipeline — the exact pipeline
    /// behind the `litmus` CLI, so verdicts bit-match it.
    Litmus {
        /// The litmus file text.
        text: String,
    },
    /// A wDRF theorem check ([`check_wdrf`]) over a named program from
    /// the paper-examples catalog.
    Wdrf {
        /// Catalog name, e.g. `"example1"` or `"ticket-lock"`.
        name: String,
    },
    /// An every-schedule machine walk
    /// ([`Machine::explore_schedules_from`]) over a named workload.
    /// The only job kind with checkpoint continuation.
    Schedules {
        /// Workload registry name, e.g. `"unmap"`.
        workload: String,
    },
    /// A per-transition refinement check
    /// ([`Machine::check_refinement`]) over a named workload.
    Refinement {
        /// Workload registry name, e.g. `"unmap"`.
        workload: String,
    },
}

impl JobSpec {
    /// The wire-protocol kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Litmus { .. } => "litmus",
            JobSpec::Wdrf { .. } => "wdrf",
            JobSpec::Schedules { .. } => "schedules",
            JobSpec::Refinement { .. } => "refinement",
        }
    }
}

/// Per-job verdict-relevant knobs, supplied by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// State budget for the job's enumerations. Exhausting it yields
    /// an `Unknown` verdict (with a parked checkpoint for schedule
    /// walks), never a wrong one.
    pub max_states: usize,
    /// Worker threads for the exploration engines. Deliberately *not*
    /// part of the job digest: verdicts are driver-independent (a
    /// cross-driver invariant the engine tests pin), so a parallel
    /// query may be answered from a sequential query's cache entry.
    pub jobs: usize,
    /// Ask the daemon to escalate an `Unknown` verdict through the
    /// slow lane (budget doubling, checkpoint continuation) before
    /// answering.
    pub escalate: bool,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            max_states: 1 << 18,
            jobs: ExploreConfig::jobs_from_env(),
            escalate: false,
        }
    }
}

/// What a finished job reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The sound three-valued verdict.
    pub verdict: Verdict,
    /// Total distinct states backing this verdict (including any
    /// resumed prior walk's states).
    pub states: usize,
    /// States freshly explored answering *this* query: `0` for a pure
    /// cache hit, and less than a from-scratch walk when a checkpoint
    /// was resumed.
    pub states_new: usize,
    /// Wall-clock nanoseconds spent executing (0 for a cache hit).
    pub wall_ns: u64,
    /// Whether a parked checkpoint from an earlier truncated walk was
    /// resumed.
    pub resumed: bool,
    /// Human-oriented one-line detail (outcome counts, violation
    /// counts, truncation reason).
    pub detail: String,
}

impl JobResult {
    /// Process exit-code image of the verdict (0 pass / 1 fail /
    /// 3 unknown), shared with every CLI in the workspace.
    pub fn exit_code(&self) -> i32 {
        self.verdict.exit_code()
    }
}

/// The budgeted wDRF config the bench harness and mutation campaign
/// use, with this job's budget and worker count applied.
fn wdrf_config(cfg: &JobConfig) -> WdrfCheckConfig {
    let mut w = WdrfCheckConfig {
        skip_sync_conditions: true,
        ..Default::default()
    };
    w.jobs = cfg.jobs;
    w.promising.max_promises_per_thread = 1;
    w.promising.value_cfg.max_rounds = 3;
    w.promising.max_states = cfg.max_states;
    w.sc.max_states = cfg.max_states;
    w
}

/// Serializes a parked schedule walk into its durable VRMSRES1 image
/// (`None` for the foreign-typed checkpoints that cannot travel —
/// which [`Machine::explore_schedules`] never produces).
pub fn encode_resume(resume: &ScheduleResume) -> Option<Vec<u8>> {
    resume.to_bytes()
}

/// Rebuilds a parked walk from its VRMSRES1 image, replaying the
/// serialized schedule paths under the job's own scripts. `Err` means
/// the blob is corrupt — or parked by a different workload — and must
/// be discarded, never resumed.
pub fn decode_resume(spec: &JobSpec, bytes: &[u8]) -> Result<ScheduleResume, String> {
    let JobSpec::Schedules { workload } = spec else {
        return Err(format!("{} jobs have no checkpoints", spec.kind()));
    };
    let scripts =
        workloads::by_name(workload).ok_or_else(|| format!("unknown workload {workload:?}"))?;
    ScheduleResume::from_bytes(KCoreConfig::default(), scripts, bytes)
        .map_err(|e| format!("decode checkpoint: {e}"))
}

/// [`execute`] over serialized checkpoints: the form the service, the
/// write-ahead log and the out-of-process worker all share. A blob
/// that no longer decodes is counted on `serve/checkpoint_corrupt`
/// and the walk restarts from scratch — corruption costs work, never
/// a wrong verdict.
pub fn execute_blob(
    spec: &JobSpec,
    cfg: &JobConfig,
    resume_blob: Option<&[u8]>,
) -> Result<(JobResult, Option<Vec<u8>>), String> {
    let resume = match resume_blob {
        Some(bytes) => match decode_resume(spec, bytes) {
            Ok(r) => Some(r),
            Err(_) => {
                vrm_obs::Counter::new(vrm_obs::serve::CHECKPOINT_CORRUPT).add(1);
                None
            }
        },
        None => None,
    };
    let (res, parked) = execute(spec, cfg, resume)?;
    Ok((res, parked.as_ref().and_then(encode_resume)))
}

/// Runs one job to completion under its config, optionally resuming a
/// parked schedule checkpoint.
///
/// Returns the result plus, for a truncated schedule walk, the new
/// parked checkpoint to store for the next larger-budget query.
/// `Err` means the job could not be *attempted* (unparsable program,
/// unknown catalog name) — a protocol-level error (exit 2), distinct
/// from a `Fail` verdict.
pub fn execute(
    spec: &JobSpec,
    cfg: &JobConfig,
    resume: Option<ScheduleResume>,
) -> Result<(JobResult, Option<ScheduleResume>), String> {
    let started = Instant::now();
    match spec {
        JobSpec::Litmus { text } => {
            let parsed = parse(text).map_err(|e| format!("litmus parse: {e}"))?;
            let ov = RunOverrides {
                jobs: Some(cfg.jobs),
                max_states: Some(cfg.max_states),
            };
            let run = run_litmus(&parsed, &ov).map_err(|e| format!("litmus run: {e}"))?;
            Ok((
                JobResult {
                    verdict: run.verdict,
                    states: run.stats.states,
                    states_new: run.stats.states,
                    wall_ns: started.elapsed().as_nanos() as u64,
                    resumed: false,
                    detail: format!(
                        "sc:{} arm:{} conform:{}",
                        run.sc_outcomes, run.rm_outcomes, run.conform
                    ),
                },
                None,
            ))
        }
        JobSpec::Wdrf { name } => {
            let prog =
                wdrf_by_name(name).ok_or_else(|| format!("unknown wdrf program {name:?}"))?;
            let wcfg = wdrf_config(cfg);
            let spec = KernelSpec::for_kernel_threads(0..prog.threads.len());
            let v = check_wdrf(&prog, &spec, &wcfg).map_err(|e| format!("check_wdrf: {e}"))?;
            Ok((
                JobResult {
                    verdict: v.verdict(),
                    states: v.stats.states,
                    states_new: v.stats.states,
                    wall_ns: started.elapsed().as_nanos() as u64,
                    resumed: false,
                    detail: format!(
                        "conditions:{} counterexamples:{}",
                        v.conditions.len(),
                        v.counterexamples.len()
                    ),
                },
                None,
            ))
        }
        JobSpec::Schedules { workload } => {
            let scripts = workloads::by_name(workload)
                .ok_or_else(|| format!("unknown workload {workload:?}"))?;
            let ecfg = ExhaustiveConfig {
                max_states: cfg.max_states,
                jobs: cfg.jobs,
                ..ExhaustiveConfig::default()
            };
            let resumed = resume.is_some();
            let prior_states = resume.as_ref().map_or(0, |r| r.states_visited());
            let report = Machine::explore_schedules_from(
                KCoreConfig::default(),
                scripts.clone(),
                &ecfg,
                resume,
            )
            .or_else(|e| match e {
                // A checkpoint that no longer deserializes must never
                // poison the query: count it and restart from scratch.
                vrm_explore::ExploreError::CorruptCheckpoint(_) => {
                    vrm_obs::Counter::new(vrm_obs::serve::CHECKPOINT_CORRUPT).add(1);
                    Machine::explore_schedules(KCoreConfig::default(), scripts, &ecfg)
                }
                e => Err(e),
            })
            .map_err(|e| format!("explore_schedules: {e}"))?;
            let verdict = report.verdict();
            let states = report.stats.states;
            Ok((
                JobResult {
                    verdict,
                    states,
                    states_new: states.saturating_sub(prior_states),
                    wall_ns: started.elapsed().as_nanos() as u64,
                    resumed,
                    detail: format!("outcomes:{}", report.outcomes.len()),
                },
                report.resume,
            ))
        }
        JobSpec::Refinement { workload } => {
            let scripts = workloads::by_name(workload)
                .ok_or_else(|| format!("unknown workload {workload:?}"))?;
            let ecfg = ExhaustiveConfig {
                max_states: cfg.max_states,
                jobs: cfg.jobs,
                ..ExhaustiveConfig::default()
            };
            let report = Machine::check_refinement(KCoreConfig::default(), scripts, &ecfg)
                .map_err(|e| format!("check_refinement: {e}"))?;
            Ok((
                JobResult {
                    verdict: report.verdict(),
                    states: report.stats.states,
                    states_new: report.stats.states,
                    wall_ns: started.elapsed().as_nanos() as u64,
                    resumed: false,
                    detail: format!(
                        "outcomes:{} violations:{}",
                        report.outcomes.len(),
                        report.violations.len()
                    ),
                },
                None,
            ))
        }
    }
}
