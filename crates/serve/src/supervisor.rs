//! Process-tier worker supervision: fork/exec a worker per job,
//! enforce a wall-clock deadline, and convert every failure mode into
//! a degraded verdict instead of a daemon outage.
//!
//! The supervisor's state machine, per job:
//!
//! ```text
//!            spawn ──────────────► running
//!                                    │
//!        ┌─────────────┬─────────────┼──────────────┐
//!        ▼             ▼             ▼              ▼
//!   done line     error line     crash/garbage   deadline hit
//!        │             │             │              │ grace, then SIGKILL
//!        ▼             ▼             ▼              ▼
//!    verdict     Err (exit 2,   retry with      Unknown{WorkerLost}
//!   + checkpoint  no retry)     backoff ≤N      (no retry: a hang
//!                                │              would just repeat)
//!                                ▼
//!                        budget exhausted →
//!                        Unknown{WorkerLost}
//! ```
//!
//! A deterministic error line (unparsable program, unknown name) is
//! *not* retried — the registry will answer the same way every time.
//! A crash (nonzero exit without a usable line, an injected
//! [`vrm_faults::FaultKind::WorkerKill`], spawn failure) is retried
//! with exponential backoff up to [`WorkerIsolation::restarts`]; a
//! hang is killed once and never retried. Both exhaustion paths
//! degrade to `Unknown` with
//! [`vrm_explore::TruncationReason::WorkerLost`] — a sound "don't
//! know", never a wrong verdict and never a hang, counted on
//! `serve/worker_lost`.

use std::io::{Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use vrm_explore::{Coverage, TruncationReason, Verdict};
use vrm_obs::json::{self, Json, ObjWriter};
use vrm_obs::serve as names;
use vrm_obs::Counter;

use crate::job::{JobConfig, JobResult, JobSpec};
use crate::protocol::parse_reply;
use crate::store::tag_reason;
use crate::worker::{from_hex, to_hex};

/// Supervision policy for out-of-process job execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerIsolation {
    /// The worker command line; empty means the daemon's own binary
    /// re-invoked in `worker` mode (the production configuration —
    /// overriding it is how the supervision tests substitute
    /// pathological workers like `sleep`).
    pub worker_cmd: Vec<String>,
    /// Per-job wall-clock deadline; a worker still running past it is
    /// given [`grace`](Self::grace) and then SIGKILLed.
    pub deadline: Duration,
    /// Extra time after the deadline before the SIGKILL lands, so a
    /// worker mid-answer can finish its write.
    pub grace: Duration,
    /// Crash retries before the job degrades to `Unknown{WorkerLost}`.
    pub restarts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// **Always `false` in production**; `true` is the
    /// `serve-supervisor-ignores-deadline` mutant, under which a hung
    /// worker is waited on forever — the outage this module exists to
    /// prevent, which the mutation campaign detects as a timeout.
    pub ignore_deadline: bool,
}

impl Default for WorkerIsolation {
    fn default() -> Self {
        WorkerIsolation {
            worker_cmd: Vec::new(),
            deadline: Duration::from_secs(30),
            grace: Duration::from_millis(500),
            restarts: 2,
            backoff_base: Duration::from_millis(50),
            ignore_deadline: false,
        }
    }
}

/// The submit-shaped line the supervisor feeds a worker's stdin,
/// extended with the hex checkpoint when one is resumed.
fn job_line(spec: &JobSpec, cfg: &JobConfig, resume: Option<&[u8]>) -> String {
    let mut w = ObjWriter::new();
    w.field_str("op", "submit").field_str("kind", spec.kind());
    match spec {
        JobSpec::Litmus { text } => w.field_str("program", text),
        JobSpec::Wdrf { name } => w.field_str("name", name),
        JobSpec::Schedules { workload } | JobSpec::Refinement { workload } => {
            w.field_str("workload", workload)
        }
    };
    w.field_u64("max_states", cfg.max_states as u64)
        .field_u64("jobs", cfg.jobs as u64);
    if let Some(blob) = resume {
        w.field_str("resume", &to_hex(blob));
    }
    w.finish()
}

/// The degraded result every exhausted supervision path converges to.
fn worker_lost(detail: String, wall_ns: u64) -> JobResult {
    Counter::new(names::WORKER_LOST).add(1);
    JobResult {
        verdict: Verdict::Unknown {
            coverage: Coverage {
                states: 0,
                frontier_len: 0,
                reason: TruncationReason::WorkerLost,
            },
        },
        states: 0,
        states_new: 0,
        wall_ns,
        resumed: false,
        detail,
    }
}

enum Attempt {
    /// The worker answered; result + optional checkpoint blob.
    Done(JobResult, Option<Vec<u8>>),
    /// The worker reported a deterministic protocol error: final.
    Refused(String),
    /// The worker died without a usable answer: retryable.
    Crashed(String),
    /// The worker hung past its deadline and was killed: final.
    Hung,
}

/// Executes one job in a supervised worker process. The signature
/// mirrors [`crate::job::execute_blob`], so the service dispatches to
/// either interchangeably; every supervision failure mode maps onto
/// the same three-valued verdict the in-process path uses.
pub fn execute_isolated(
    iso: &WorkerIsolation,
    spec: &JobSpec,
    cfg: &JobConfig,
    resume_blob: Option<&[u8]>,
) -> Result<(JobResult, Option<Vec<u8>>), String> {
    let started = Instant::now();
    let line = job_line(spec, cfg, resume_blob);
    for attempt in 0..=iso.restarts {
        match run_attempt(iso, &line) {
            Attempt::Done(res, blob) => return Ok((res, blob)),
            Attempt::Refused(e) => return Err(e),
            Attempt::Hung => {
                // No retry: the job itself is pathological, and a
                // second worker would hang exactly the same way.
                return Ok((
                    worker_lost(
                        format!("worker killed after {:?} deadline", iso.deadline),
                        started.elapsed().as_nanos() as u64,
                    ),
                    None,
                ));
            }
            Attempt::Crashed(why) => {
                Counter::new(names::WORKER_CRASHED).add(1);
                if attempt == iso.restarts {
                    return Ok((
                        worker_lost(
                            format!("worker lost after {} attempts: {why}", attempt + 1),
                            started.elapsed().as_nanos() as u64,
                        ),
                        None,
                    ));
                }
                std::thread::sleep(iso.backoff_base * 2u32.saturating_pow(attempt));
            }
        }
    }
    unreachable!("the final attempt returns from the loop");
}

fn run_attempt(iso: &WorkerIsolation, line: &str) -> Attempt {
    let mut cmd = if iso.worker_cmd.is_empty() {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => return Attempt::Crashed(format!("current_exe: {e}")),
        };
        let mut c = Command::new(exe);
        c.arg("worker");
        c
    } else {
        let mut c = Command::new(&iso.worker_cmd[0]);
        c.args(&iso.worker_cmd[1..]);
        c
    };
    let mut child = match cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return Attempt::Crashed(format!("spawn worker: {e}")),
    };
    Counter::new(names::WORKER_SPAWNED).add(1);
    let injected_kill =
        vrm_faults::poll(vrm_faults::Site::Supervisor) == Some(vrm_faults::FaultKind::WorkerKill);
    if injected_kill {
        // Chaos: the worker dies before it can answer; the crash path
        // below must absorb it.
        let _ = child.kill();
    }
    if let Some(mut stdin) = child.stdin.take() {
        let _ = stdin.write_all(line.as_bytes());
        let _ = stdin.write_all(b"\n");
        // Dropping closes the pipe: a worker that reads to EOF
        // terminates instead of blocking.
    }
    let mut stdout = child.stdout.take().expect("stdout piped");
    let reader = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stdout.read_to_string(&mut buf);
        buf
    });
    if wait_with_deadline(iso, &mut child) {
        // Do NOT join the reader here: an orphaned grandchild of the
        // killed worker may hold the stdout pipe open indefinitely
        // (`sh -c 'sleep 30'` leaves `sleep` alive), and the hung
        // path never needs the output anyway. The reader thread
        // drains on its own once every writer is gone.
        drop(reader);
        return Attempt::Hung;
    }
    let output = reader.join().unwrap_or_default();
    parse_attempt(&output)
}

/// Polls the child against the deadline. Returns `true` when the
/// deadline (plus grace) expired and the child was SIGKILLed.
fn wait_with_deadline(iso: &WorkerIsolation, child: &mut Child) -> bool {
    let started = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return false,
            Ok(None) => {}
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return false;
            }
        }
        if !iso.ignore_deadline && started.elapsed() >= iso.deadline + iso.grace {
            let _ = child.kill();
            let _ = child.wait();
            Counter::new(names::WORKER_KILLED).add(1);
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn parse_attempt(output: &str) -> Attempt {
    let Some(line) = output.lines().next().filter(|l| !l.trim().is_empty()) else {
        return Attempt::Crashed("no output".into());
    };
    let Ok(reply) = parse_reply(line) else {
        return Attempt::Crashed(format!("unparsable worker line: {line:?}"));
    };
    match reply.status.as_str() {
        "done" => {}
        "error" => return Attempt::Refused(reply.detail),
        other => return Attempt::Crashed(format!("unexpected worker status {other:?}")),
    }
    let raw = json::parse(&reply.raw);
    let verdict = match reply.verdict.as_deref() {
        Some("pass") => Verdict::Pass,
        Some("fail") => Verdict::Fail,
        Some("unknown") => {
            let field = |k: &str| {
                raw.as_ref()
                    .and_then(|v| v.get(k).and_then(Json::as_u64))
                    .unwrap_or(0)
            };
            let reason =
                tag_reason(field("reason_tag") as u8).unwrap_or(TruncationReason::WorkerLost);
            Verdict::Unknown {
                coverage: Coverage {
                    states: reply.states as usize,
                    frontier_len: field("frontier_len") as usize,
                    reason,
                },
            }
        }
        other => return Attempt::Crashed(format!("unknown worker verdict {other:?}")),
    };
    let blob = raw
        .as_ref()
        .and_then(|v| v.get("checkpoint").and_then(Json::as_str))
        .and_then(from_hex);
    Attempt::Done(
        JobResult {
            verdict,
            states: reply.states as usize,
            states_new: reply.states_new as usize,
            wall_ns: reply.wall_ns,
            resumed: reply.resumed,
            detail: reply.detail,
        },
        blob,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(iso_script: &str) -> Vec<String> {
        vec!["sh".into(), "-c".into(), iso_script.into()]
    }

    fn spec() -> JobSpec {
        JobSpec::Schedules {
            workload: "unmap".into(),
        }
    }

    fn fast_iso(worker_cmd: Vec<String>) -> WorkerIsolation {
        WorkerIsolation {
            worker_cmd,
            deadline: Duration::from_millis(200),
            grace: Duration::from_millis(50),
            restarts: 1,
            backoff_base: Duration::from_millis(5),
            ignore_deadline: false,
        }
    }

    #[test]
    fn a_hung_worker_is_killed_and_degrades_to_worker_lost() {
        if vrm_faults::armed() {
            // An injected WorkerKill would turn the hang into a crash
            // and void the exact counter assertions below.
            return;
        }
        let killed = Counter::new(names::WORKER_KILLED);
        let lost = Counter::new(names::WORKER_LOST);
        let (k0, l0) = (killed.get(), lost.get());
        let started = Instant::now();
        let (res, blob) = execute_isolated(
            &fast_iso(sh("sleep 30")),
            &spec(),
            &JobConfig::default(),
            None,
        )
        .expect("a hang is a degraded verdict, not an error");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the kill must land near the deadline, not hang"
        );
        match res.verdict {
            Verdict::Unknown { coverage } => {
                assert_eq!(coverage.reason, TruncationReason::WorkerLost)
            }
            v => panic!("expected WorkerLost Unknown, got {v:?}"),
        }
        assert!(blob.is_none());
        assert!(killed.get() > k0, "the kill must be counted");
        assert!(lost.get() > l0);
    }

    #[test]
    fn a_crashing_worker_is_retried_then_degraded() {
        if vrm_faults::armed() {
            return;
        }
        let crashed = Counter::new(names::WORKER_CRASHED);
        let c0 = crashed.get();
        let (res, _) = execute_isolated(
            &fast_iso(sh("exit 7")),
            &spec(),
            &JobConfig::default(),
            None,
        )
        .expect("a crash is a degraded verdict, not an error");
        assert!(res.verdict.is_unknown());
        assert!(
            res.detail.contains("worker lost after 2 attempts"),
            "{}",
            res.detail
        );
        assert!(
            crashed.get() - c0 >= 2,
            "both attempts must count as crashes"
        );
    }

    #[test]
    fn a_fake_done_line_is_accepted_through_the_framing() {
        if vrm_faults::armed() {
            return;
        }
        // Proves the stdio protocol end to end without the real
        // binary: a worker that just echoes a well-formed done line.
        let line = r#"{\"status\":\"done\",\"verdict\":\"pass\",\"exit_code\":0,\"resumed\":false,\"states\":9,\"states_new\":9,\"wall_ns\":1,\"detail\":\"outcomes:1\",\"checkpoint\":\"0102\"}"#;
        let (res, blob) = execute_isolated(
            &fast_iso(sh(&format!("echo \"{line}\""))),
            &spec(),
            &JobConfig::default(),
            None,
        )
        .expect("done line parses");
        assert_eq!(res.verdict, Verdict::Pass);
        assert_eq!(res.states, 9);
        assert_eq!(blob.as_deref(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn an_error_line_is_final_and_not_retried() {
        if vrm_faults::armed() {
            return;
        }
        let spawned = Counter::new(names::WORKER_SPAWNED);
        let s0 = spawned.get();
        let line = r#"{\"status\":\"error\",\"exit_code\":2,\"detail\":\"unknown workload\"}"#;
        let err = execute_isolated(
            &fast_iso(sh(&format!("echo \"{line}\""))),
            &spec(),
            &JobConfig::default(),
            None,
        )
        .expect_err("an error line is a protocol error");
        assert!(err.contains("unknown workload"));
        assert_eq!(
            spawned.get() - s0,
            1,
            "deterministic refusals must not be retried"
        );
    }

    #[test]
    fn job_lines_carry_the_resume_blob_in_hex() {
        let line = job_line(
            &spec(),
            &JobConfig {
                max_states: 64,
                jobs: 1,
                escalate: false,
            },
            Some(&[0xde, 0xad]),
        );
        let v = json::parse(&line).expect("job line is JSON");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("schedules"));
        assert_eq!(v.get("workload").and_then(Json::as_str), Some("unmap"));
        assert_eq!(v.get("max_states").and_then(Json::as_u64), Some(64));
        assert_eq!(v.get("resume").and_then(Json::as_str), Some("dead"));
    }
}
