//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one (or, for `watch`, several) response
//! line(s) per request, both plain JSON objects over
//! [`vrm_obs::json`]. Full field reference in `docs/SERVE.md`.
//!
//! ## Requests
//!
//! | `op`       | fields                                                                 |
//! |------------|------------------------------------------------------------------------|
//! | `submit`   | `kind` (`litmus`\|`wdrf`\|`schedules`\|`refinement`), `program` (litmus text) *or* `name`/`workload`, optional `max_states`, `jobs`, `escalate`, `wait` (default `true`) |
//! | `poll`     | `job`                                                                  |
//! | `watch`    | `job` — streams status lines until the job finishes                    |
//! | `status`   | —                                                                      |
//! | `shutdown` | —                                                                      |
//!
//! ## Responses
//!
//! Every response carries `status`; finished jobs add `digest`,
//! `verdict` (`pass`/`fail`/`unknown`), `exit_code` (0/1/3; protocol
//! errors use 2), `cached`, `resumed`, `states`, `states_new`,
//! `wall_ns` and `detail`.

use vrm_explore::Verdict;
use vrm_obs::json::{self, Json, ObjWriter};

use crate::digest::hex32;
use crate::job::{JobConfig, JobResult, JobSpec};
use crate::service::{JobId, JobStatus};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job; when `wait` the connection blocks until the
    /// verdict is ready.
    Submit {
        /// What to verify.
        spec: JobSpec,
        /// Verdict-relevant knobs.
        cfg: JobConfig,
        /// Block until done (the default) instead of returning a
        /// `queued` handle immediately.
        wait: bool,
    },
    /// Ask for a job's current snapshot.
    Poll {
        /// The handle from a non-waiting submit.
        job: JobId,
    },
    /// Stream status lines until the job finishes.
    Watch {
        /// The handle from a non-waiting submit.
        job: JobId,
    },
    /// Daemon health: queue depths, cache sizes, all `serve/*`
    /// counters.
    Status,
    /// Stop accepting work and exit once the queues drain.
    Shutdown,
}

/// Parses one request line. `Err` carries the reason echoed back to
/// the client as a `status:"error"` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).ok_or("malformed JSON")?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field \"op\"")?;
    match op {
        "submit" => {
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("submit needs string field \"kind\"")?;
            let named = |field: &str| -> Result<String, String> {
                v.get(field)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or(format!("kind {kind:?} needs string field {field:?}"))
            };
            let spec = match kind {
                "litmus" => JobSpec::Litmus {
                    text: named("program")?,
                },
                "wdrf" => JobSpec::Wdrf {
                    name: named("name")?,
                },
                "schedules" => JobSpec::Schedules {
                    workload: named("workload")?,
                },
                "refinement" => JobSpec::Refinement {
                    workload: named("workload")?,
                },
                other => return Err(format!("unknown kind {other:?}")),
            };
            let mut cfg = JobConfig::default();
            if let Some(n) = v.get("max_states").and_then(Json::as_u64) {
                cfg.max_states = n as usize;
            }
            if let Some(n) = v.get("jobs").and_then(Json::as_u64) {
                cfg.jobs = (n as usize).max(1);
            }
            if let Some(Json::Bool(b)) = v.get("escalate") {
                cfg.escalate = *b;
            }
            let wait = match v.get("wait") {
                Some(Json::Bool(b)) => *b,
                _ => true,
            };
            Ok(Request::Submit { spec, cfg, wait })
        }
        "poll" | "watch" => {
            let job = v
                .get("job")
                .and_then(Json::as_u64)
                .ok_or("poll/watch needs numeric field \"job\"")?;
            Ok(if op == "poll" {
                Request::Poll { job }
            } else {
                Request::Watch { job }
            })
        }
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// The wire verdict string.
pub fn verdict_str(v: &Verdict) -> &'static str {
    match v {
        Verdict::Pass => "pass",
        Verdict::Fail => "fail",
        Verdict::Unknown { .. } => "unknown",
    }
}

/// Renders a finished job's response line.
pub fn render_result(digest: u128, job: Option<JobId>, res: &JobResult, cached: bool) -> String {
    let mut w = ObjWriter::new();
    w.field_str("status", "done");
    if let Some(id) = job {
        w.field_u64("job", id);
    }
    w.field_str("digest", &hex32(digest))
        .field_str("verdict", verdict_str(&res.verdict))
        .field_u64("exit_code", res.exit_code() as u64)
        .field_bool("cached", cached)
        .field_bool("resumed", res.resumed)
        .field_u64("states", res.states as u64)
        .field_u64("states_new", res.states_new as u64)
        .field_u64("wall_ns", res.wall_ns)
        .field_str("detail", &res.detail);
    w.finish()
}

/// Renders the handle response of a non-waiting submit.
pub fn render_queued(digest: u128, job: JobId) -> String {
    let mut w = ObjWriter::new();
    w.field_str("status", "queued")
        .field_u64("job", job)
        .field_str("digest", &hex32(digest));
    w.finish()
}

/// Renders an in-flight job's snapshot (poll/watch stream lines).
pub fn render_progress(
    digest: u128,
    job: JobId,
    status: JobStatus,
    states_explored: u64,
) -> String {
    let mut w = ObjWriter::new();
    w.field_str("status", status.as_str())
        .field_u64("job", job)
        .field_str("digest", &hex32(digest))
        .field_u64("states_explored", states_explored);
    w.finish()
}

/// Renders a protocol-level error (`exit_code` 2 — the usage-error
/// code, distinct from a `fail` verdict's 1).
pub fn render_error(detail: &str) -> String {
    let mut w = ObjWriter::new();
    w.field_str("status", "error")
        .field_u64("exit_code", 2)
        .field_str("detail", detail);
    w.finish()
}

/// Renders the `status` op's reply: lanes, cache sizes and every
/// `serve/*` counter (under a `"counters"` object).
pub fn render_status(
    fast: usize,
    slow: usize,
    cache: usize,
    checkpoints: usize,
    counters: &[(&'static str, u64)],
) -> String {
    let mut inner = ObjWriter::new();
    for (name, val) in counters {
        inner.field_u64(name, *val);
    }
    let inner = inner.finish();
    let mut w = ObjWriter::new();
    w.field_str("status", "ok")
        .field_u64("fast_lane", fast as u64)
        .field_u64("slow_lane", slow as u64)
        .field_u64("cache_entries", cache as u64)
        .field_u64("checkpoints", checkpoints as u64)
        .field_raw("counters", &inner);
    w.finish()
}

/// A parsed daemon response, as seen by [`crate::Client`] and the
/// CLI.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Reply {
    /// `done`, `queued`, `running`, `ok` or `error`.
    pub status: String,
    /// Job handle, when present.
    pub job: Option<JobId>,
    /// 32-hex content digest, when present.
    pub digest: Option<String>,
    /// `pass`/`fail`/`unknown`, when the job finished.
    pub verdict: Option<String>,
    /// Exit-code image (0/1/3; 2 for protocol errors).
    pub exit_code: Option<i32>,
    /// Whether the answer came from the verdict cache.
    pub cached: bool,
    /// Whether a parked checkpoint was resumed.
    pub resumed: bool,
    /// Total states backing the verdict.
    pub states: u64,
    /// States freshly explored for this query.
    pub states_new: u64,
    /// Execution wall time in nanoseconds.
    pub wall_ns: u64,
    /// Human-oriented detail line.
    pub detail: String,
    /// The raw response line, for fields not lifted here (e.g. the
    /// `status` op's counters object).
    pub raw: String,
}

/// Parses one response line into a [`Reply`].
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let v = json::parse(line).ok_or("malformed response JSON")?;
    let bool_field = |key: &str| matches!(v.get(key), Some(Json::Bool(true)));
    Ok(Reply {
        status: v
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response missing \"status\"")?
            .to_owned(),
        job: v.get("job").and_then(Json::as_u64),
        digest: v.get("digest").and_then(Json::as_str).map(str::to_owned),
        verdict: v.get("verdict").and_then(Json::as_str).map(str::to_owned),
        exit_code: v.get("exit_code").and_then(Json::as_u64).map(|c| c as i32),
        cached: bool_field("cached"),
        resumed: bool_field("resumed"),
        states: v.get("states").and_then(Json::as_u64).unwrap_or(0),
        states_new: v.get("states_new").and_then(Json::as_u64).unwrap_or(0),
        wall_ns: v.get("wall_ns").and_then(Json::as_u64).unwrap_or(0),
        detail: v
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned(),
        raw: line.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_roundtrip() {
        let line = r#"{"op":"submit","kind":"schedules","workload":"unmap","max_states":512,"jobs":2,"escalate":true,"wait":false}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(
            req,
            Request::Submit {
                spec: JobSpec::Schedules {
                    workload: "unmap".into()
                },
                cfg: JobConfig {
                    max_states: 512,
                    jobs: 2,
                    escalate: true,
                },
                wait: false,
            }
        );
    }

    #[test]
    fn bad_requests_name_their_defect() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"submit"}"#)
            .unwrap_err()
            .contains("kind"));
        assert!(parse_request(r#"{"op":"submit","kind":"litmus"}"#)
            .unwrap_err()
            .contains("program"));
        assert!(parse_request(r#"{"op":"frobnicate"}"#)
            .unwrap_err()
            .contains("unknown op"));
    }

    #[test]
    fn result_lines_roundtrip_through_reply() {
        let res = JobResult {
            verdict: Verdict::Pass,
            states: 42,
            states_new: 40,
            wall_ns: 1234,
            resumed: true,
            detail: "outcomes:3".into(),
        };
        let line = render_result(0xabc, Some(7), &res, false);
        let reply = parse_reply(&line).unwrap();
        assert_eq!(reply.status, "done");
        assert_eq!(reply.job, Some(7));
        assert_eq!(reply.verdict.as_deref(), Some("pass"));
        assert_eq!(reply.exit_code, Some(0));
        assert!(reply.resumed && !reply.cached);
        assert_eq!((reply.states, reply.states_new), (42, 40));
        assert_eq!(
            reply.digest.as_deref(),
            Some(&crate::digest::hex32(0xabc)[..])
        );
    }

    #[test]
    fn error_lines_carry_the_usage_exit_code() {
        let reply = parse_reply(&render_error("unknown kind \"x\"")).unwrap();
        assert_eq!(reply.status, "error");
        assert_eq!(reply.exit_code, Some(2));
        assert!(reply.detail.contains("unknown kind"));
    }
}
