//! The verdict cache and the checkpoint side-store.
//!
//! Both are plain maps — interior locking lives in
//! [`crate::Service`]'s one mutex, so the cache itself stays trivially
//! auditable. The soundness-relevant policy is concentrated in
//! [`VerdictCache::insert`]: a cached entry can only ever get *worse*
//! (via [`Verdict::merge`]'s `Fail > Unknown > Pass` ordering) — a
//! cached `Unknown` is never upgraded to `Pass` by cache bookkeeping;
//! only a fresh exploration, stored under its own (different) key, may
//! answer `Pass`.

use std::collections::HashMap;

use vrm_explore::Verdict;
use vrm_sekvm::machine::ScheduleResume;

/// A finished job's answer, as remembered by the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The verdict served to every future identical query.
    pub verdict: Verdict,
    /// Total distinct states that backed the verdict.
    pub states: usize,
    /// Wall-clock nanoseconds the original computation took (what a
    /// cache hit saves).
    pub wall_ns: u64,
    /// The original result's one-line detail.
    pub detail: String,
}

/// Job-digest → verdict map.
#[derive(Debug, Default)]
pub struct VerdictCache {
    map: HashMap<u128, CacheEntry>,
}

impl VerdictCache {
    /// Looks up a cached verdict.
    pub fn get(&self, digest: u128) -> Option<&CacheEntry> {
        self.map.get(&digest)
    }

    /// Records a verdict. Identical queries are deterministic, so a
    /// racing duplicate insert carries the same verdict and the
    /// worst-wins merge is the identity; the merge is kept as the
    /// policy anyway so no future caller can weaken a cached verdict.
    pub fn insert(&mut self, digest: u128, entry: CacheEntry) {
        match self.map.entry(digest) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let old = o.get().clone();
                let verdict = old.verdict.merge(entry.verdict);
                // Keep the bookkeeping of whichever side supplied the
                // surviving verdict.
                let keep = if verdict == old.verdict { old } else { entry };
                o.insert(CacheEntry { verdict, ..keep });
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(entry);
            }
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Program-digest → suspended schedule walk.
///
/// Checkpoints are single-use: [`take`](CheckpointStore::take) removes
/// the entry, because resuming consumes the parked frontier. A walk
/// that is *still* truncated after resuming parks its new checkpoint
/// right back.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    map: HashMap<u128, ScheduleResume>,
}

impl CheckpointStore {
    /// Removes and returns the parked walk for a program, if any.
    pub fn take(&mut self, program_digest: u128) -> Option<ScheduleResume> {
        self.map.remove(&program_digest)
    }

    /// Parks a suspended walk for a program, replacing any older (and
    /// necessarily smaller) one.
    pub fn park(&mut self, program_digest: u128, resume: ScheduleResume) {
        self.map.insert(program_digest, resume);
    }

    /// Number of parked walks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_explore::{Coverage, TruncationReason};

    fn entry(verdict: Verdict) -> CacheEntry {
        CacheEntry {
            verdict,
            states: 10,
            wall_ns: 1,
            detail: String::new(),
        }
    }

    #[test]
    fn cache_inserts_never_upgrade_a_verdict() {
        let unknown = Verdict::Unknown {
            coverage: Coverage {
                states: 10,
                frontier_len: 3,
                reason: TruncationReason::StateLimit,
            },
        };
        let mut c = VerdictCache::default();
        c.insert(7, entry(unknown));
        c.insert(7, entry(Verdict::Pass));
        assert!(
            c.get(7).unwrap().verdict.is_unknown(),
            "a second insert must not upgrade Unknown to Pass"
        );
        c.insert(7, entry(Verdict::Fail));
        assert_eq!(c.get(7).unwrap().verdict, Verdict::Fail);
    }
}
