//! The verdict cache and the checkpoint side-store.
//!
//! Both are plain maps — interior locking lives in
//! [`crate::Service`]'s one mutex, so the cache itself stays trivially
//! auditable. The soundness-relevant policy is concentrated in
//! [`VerdictCache::insert`]: a cached entry can only ever get *worse*
//! (via [`Verdict::merge`]'s `Fail > Unknown > Pass` ordering) — a
//! cached `Unknown` is never upgraded to `Pass` by cache bookkeeping;
//! only a fresh exploration, stored under its own (different) key, may
//! answer `Pass`.

use std::collections::{HashMap, VecDeque};

use vrm_explore::Verdict;
use vrm_obs::Counter;
use vrm_sekvm::machine::ScheduleResume;

/// A finished job's answer, as remembered by the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The verdict served to every future identical query.
    pub verdict: Verdict,
    /// Total distinct states that backed the verdict.
    pub states: usize,
    /// Wall-clock nanoseconds the original computation took (what a
    /// cache hit saves).
    pub wall_ns: u64,
    /// The original result's one-line detail.
    pub detail: String,
}

/// Job-digest → verdict map.
#[derive(Debug, Default)]
pub struct VerdictCache {
    map: HashMap<u128, CacheEntry>,
}

impl VerdictCache {
    /// Looks up a cached verdict.
    pub fn get(&self, digest: u128) -> Option<&CacheEntry> {
        self.map.get(&digest)
    }

    /// Records a verdict. Identical queries are deterministic, so a
    /// racing duplicate insert carries the same verdict and the
    /// worst-wins merge is the identity; the merge is kept as the
    /// policy anyway so no future caller can weaken a cached verdict.
    pub fn insert(&mut self, digest: u128, entry: CacheEntry) {
        match self.map.entry(digest) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let old = o.get().clone();
                let verdict = old.verdict.merge(entry.verdict);
                // Keep the bookkeeping of whichever side supplied the
                // surviving verdict.
                let keep = if verdict == old.verdict { old } else { entry };
                o.insert(CacheEntry { verdict, ..keep });
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(entry);
            }
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Program-digest → suspended schedule walk, bounded by an LRU cap.
///
/// Checkpoints are single-use: [`take`](CheckpointStore::take) removes
/// the entry, because resuming consumes the parked frontier. A walk
/// that is *still* truncated after resuming parks its new checkpoint
/// right back.
///
/// Parked frontiers are the daemon's only unbounded-in-the-input state:
/// a long-lived daemon fed a generated corpus (the fuzz suite replays
/// programs nobody will ever re-query) would otherwise grow the store
/// without limit. [`park`](CheckpointStore::park) therefore evicts the
/// least-recently-parked entry beyond [`CheckpointStore::DEFAULT_CAP`],
/// counting each eviction on `serve/checkpoint_evicted`. Eviction is
/// sound: losing a checkpoint only costs re-exploration, never a wrong
/// verdict.
#[derive(Debug)]
pub struct CheckpointStore {
    map: HashMap<u128, ScheduleResume>,
    /// Park order, least recently parked at the front. Re-parking a
    /// digest refreshes its position.
    order: VecDeque<u128>,
    cap: usize,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::with_cap(Self::DEFAULT_CAP)
    }
}

impl CheckpointStore {
    /// Production cap on parked walks. Each parked frontier can hold
    /// thousands of serialized states, so the store is bounded well
    /// below anything the verdict cache (which stores one small entry
    /// per digest, and is naturally bounded by distinct queries) needs.
    pub const DEFAULT_CAP: usize = 256;

    /// A store that evicts least-recently-parked beyond `cap` entries.
    pub fn with_cap(cap: usize) -> CheckpointStore {
        CheckpointStore {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Removes and returns the parked walk for a program, if any.
    pub fn take(&mut self, program_digest: u128) -> Option<ScheduleResume> {
        let hit = self.map.remove(&program_digest);
        if hit.is_some() {
            self.order.retain(|d| *d != program_digest);
        }
        hit
    }

    /// Parks a suspended walk for a program, replacing any older (and
    /// necessarily smaller) one, and evicting the least-recently-parked
    /// entry if the store is over its cap.
    pub fn park(&mut self, program_digest: u128, resume: ScheduleResume) {
        if self.map.insert(program_digest, resume).is_some() {
            self.order.retain(|d| *d != program_digest);
        }
        self.order.push_back(program_digest);
        while self.map.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
            Counter::new(vrm_obs::serve::CHECKPOINT_EVICTED).add(1);
        }
    }

    /// Number of parked walks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_explore::{Coverage, TruncationReason};
    use vrm_sekvm::machine::ExhaustiveConfig;
    use vrm_sekvm::{KCoreConfig, Machine, Op, Script};

    /// A real parked walk, produced the only way one can be: by
    /// starving a schedule exploration.
    fn parked_walk() -> ScheduleResume {
        let scripts: Vec<Script> = (0..2).map(|_| vec![Op::RegisterVm]).collect();
        Machine::explore_schedules(
            KCoreConfig::default(),
            scripts,
            &ExhaustiveConfig {
                max_states: 2,
                jobs: 1,
            },
        )
        .expect("starved walk")
        .resume
        .expect("a starved walk parks a resume")
    }

    fn entry(verdict: Verdict) -> CacheEntry {
        CacheEntry {
            verdict,
            states: 10,
            wall_ns: 1,
            detail: String::new(),
        }
    }

    #[test]
    fn cache_inserts_never_upgrade_a_verdict() {
        let unknown = Verdict::Unknown {
            coverage: Coverage {
                states: 10,
                frontier_len: 3,
                reason: TruncationReason::StateLimit,
            },
        };
        let mut c = VerdictCache::default();
        c.insert(7, entry(unknown));
        c.insert(7, entry(Verdict::Pass));
        assert!(
            c.get(7).unwrap().verdict.is_unknown(),
            "a second insert must not upgrade Unknown to Pass"
        );
        c.insert(7, entry(Verdict::Fail));
        assert_eq!(c.get(7).unwrap().verdict, Verdict::Fail);
    }

    #[test]
    fn checkpoint_store_evicts_least_recently_parked() {
        let evicted = Counter::new(vrm_obs::serve::CHECKPOINT_EVICTED);
        let before = evicted.get();
        let mut s = CheckpointStore::with_cap(2);
        s.park(1, parked_walk());
        s.park(2, parked_walk());
        // Re-parking digest 1 must refresh its recency, so the next
        // eviction falls on digest 2 instead.
        s.park(1, parked_walk());
        s.park(3, parked_walk());
        assert_eq!(s.len(), 2, "the cap must hold after an over-cap park");
        assert!(
            s.take(2).is_none(),
            "the least-recently-parked entry must be the one evicted"
        );
        assert!(s.take(1).is_some(), "re-parking must refresh recency");
        assert!(s.take(3).is_some());
        assert!(s.is_empty());
        // Counters are process-global, so concurrent tests may also
        // bump this one: assert at-least, not exactly.
        assert!(
            evicted.get() - before >= 1,
            "evictions must advance serve/checkpoint_evicted"
        );
    }

    #[test]
    fn checkpoint_take_frees_capacity_without_evicting() {
        let mut s = CheckpointStore::with_cap(2);
        s.park(1, parked_walk());
        s.park(2, parked_walk());
        assert!(s.take(1).is_some());
        // The freed slot absorbs the next park: nothing is evicted and
        // both survivors stay retrievable.
        s.park(3, parked_walk());
        assert_eq!(s.len(), 2);
        assert!(
            s.take(2).is_some(),
            "taking must free a slot instead of forcing an eviction"
        );
        assert!(s.take(3).is_some());
    }

    #[test]
    fn checkpoint_default_store_carries_the_production_cap() {
        // SchedState builds its store via Default, so the production
        // bound must live there — an unbounded Default would silently
        // reopen the leak.
        let mut s = CheckpointStore::default();
        for digest in 0..(CheckpointStore::DEFAULT_CAP as u128 + 4) {
            s.park(digest, parked_walk());
        }
        assert_eq!(s.len(), CheckpointStore::DEFAULT_CAP);
        assert!(
            s.take(0).is_none(),
            "the oldest parks must have been evicted"
        );
        assert!(s.take(CheckpointStore::DEFAULT_CAP as u128 + 3).is_some());
    }
}
