//! The verdict cache and the checkpoint side-store.
//!
//! Both are plain maps — interior locking lives in
//! [`crate::Service`]'s one mutex, so the cache itself stays trivially
//! auditable. The soundness-relevant policy is concentrated in
//! [`VerdictCache::insert`]: a cached entry can only ever get *worse*
//! (via [`Verdict::merge`]'s `Fail > Unknown > Pass` ordering) — a
//! cached `Unknown` is never upgraded to `Pass` by cache bookkeeping;
//! only a fresh exploration, stored under its own (different) key, may
//! answer `Pass`.
//!
//! Both stores are **bounded**: least-recently-used entries beyond the
//! cap are evicted (counted on `serve/verdict_evicted` and
//! `serve/checkpoint_evicted`), which is sound — losing an entry only
//! costs recomputation, never a wrong verdict. Cached `Unknown`
//! verdicts additionally carry a **staleness TTL**
//! ([`VerdictCache::lookup`]): an `Unknown` is a statement about a
//! budget, not about the program, so serving it forever would pin a
//! "don't know" past the point where re-exploring (resuming the parked
//! checkpoint) could do better.
//!
//! The checkpoint store holds *serialized* walks — VRMSRES1 blobs from
//! [`vrm_sekvm::machine::ScheduleResume::to_bytes`] — rather than live
//! `ScheduleResume` values, so the same bytes flow to the in-memory
//! store, the write-ahead log, and the out-of-process worker protocol,
//! and the decode path is exercised on every resume instead of only
//! after a restart.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use vrm_explore::Verdict;
use vrm_obs::Counter;

/// A finished job's answer, as remembered by the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The verdict served to every future identical query.
    pub verdict: Verdict,
    /// Total distinct states that backed the verdict.
    pub states: usize,
    /// Wall-clock nanoseconds the original computation took (what a
    /// cache hit saves).
    pub wall_ns: u64,
    /// The original result's one-line detail.
    pub detail: String,
}

/// What [`VerdictCache::lookup`] found.
#[derive(Debug, PartialEq, Eq)]
pub enum Lookup<'a> {
    /// A live entry; serve it.
    Hit(&'a CacheEntry),
    /// A cached `Unknown` past its TTL: the entry was just dropped
    /// (counted on `serve/unknown_expired`) and the caller should
    /// treat the query as a miss — and log the removal durably.
    Expired,
    /// Nothing cached under this digest.
    Miss,
}

/// Job-digest → verdict map, bounded by an LRU cap, with a staleness
/// TTL on `Unknown` entries.
#[derive(Debug)]
pub struct VerdictCache {
    map: HashMap<u128, (CacheEntry, Instant)>,
    /// Use order, least recently used at the front.
    order: VecDeque<u128>,
    cap: usize,
    unknown_ttl: Option<Duration>,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::with_policy(Self::DEFAULT_CAP, Some(Self::DEFAULT_UNKNOWN_TTL))
    }
}

impl VerdictCache {
    /// Production cap on cached verdicts, matching the checkpoint
    /// store's bound.
    pub const DEFAULT_CAP: usize = 256;

    /// Production staleness bound on cached `Unknown` verdicts.
    pub const DEFAULT_UNKNOWN_TTL: Duration = Duration::from_secs(600);

    /// A cache that evicts least-recently-used beyond `cap` entries.
    pub fn with_cap(cap: usize) -> VerdictCache {
        VerdictCache::with_policy(cap, Some(Self::DEFAULT_UNKNOWN_TTL))
    }

    /// Full policy control: LRU cap plus the `Unknown` staleness TTL
    /// (`None` disables expiry).
    pub fn with_policy(cap: usize, unknown_ttl: Option<Duration>) -> VerdictCache {
        VerdictCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
            unknown_ttl,
        }
    }

    /// Looks up a cached verdict without touching recency or TTL
    /// state (tests and diagnostics; the serving path is
    /// [`lookup`](Self::lookup)).
    pub fn get(&self, digest: u128) -> Option<&CacheEntry> {
        self.map.get(&digest).map(|(e, _)| e)
    }

    /// The serving-path lookup: refreshes the entry's recency on a
    /// hit, and expires a stale `Unknown` (dropping it and reporting
    /// [`Lookup::Expired`] so the caller re-explores — resuming any
    /// parked checkpoint — instead of serving "don't know" forever).
    pub fn lookup(&mut self, digest: u128) -> Lookup<'_> {
        let Some((entry, stamped)) = self.map.get(&digest) else {
            return Lookup::Miss;
        };
        if let Some(ttl) = self.unknown_ttl {
            if entry.verdict.is_unknown() && stamped.elapsed() >= ttl {
                self.map.remove(&digest);
                self.order.retain(|d| *d != digest);
                Counter::new(vrm_obs::serve::UNKNOWN_EXPIRED).add(1);
                return Lookup::Expired;
            }
        }
        self.touch(digest);
        Lookup::Hit(&self.map[&digest].0)
    }

    /// Records a verdict. Identical queries are deterministic, so a
    /// racing duplicate insert carries the same verdict and the
    /// worst-wins merge is the identity; the merge is kept as the
    /// policy anyway so no future caller can weaken a cached verdict.
    /// Over-cap inserts evict the least-recently-used entry, counted
    /// on `serve/verdict_evicted`.
    pub fn insert(&mut self, digest: u128, entry: CacheEntry) {
        let now = Instant::now();
        match self.map.entry(digest) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let old = o.get().0.clone();
                let verdict = old.verdict.merge(entry.verdict);
                // Keep the bookkeeping of whichever side supplied the
                // surviving verdict.
                let keep = if verdict == old.verdict { old } else { entry };
                o.insert((CacheEntry { verdict, ..keep }, now));
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((entry, now));
            }
        }
        self.touch(digest);
        while self.map.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
            Counter::new(vrm_obs::serve::VERDICT_EVICTED).add(1);
        }
    }

    /// Drops a cached verdict (WAL replay of a TTL removal).
    pub fn remove(&mut self, digest: u128) {
        if self.map.remove(&digest).is_some() {
            self.order.retain(|d| *d != digest);
        }
    }

    /// Entries in least-recently-used-first order, for compaction
    /// snapshots (replaying the snapshot re-inserts in this order and
    /// reproduces the same recency order).
    pub fn iter_lru(&self) -> impl Iterator<Item = (u128, &CacheEntry)> {
        self.order
            .iter()
            .filter_map(|d| self.map.get(d).map(|(e, _)| (*d, e)))
    }

    fn touch(&mut self, digest: u128) {
        self.order.retain(|d| *d != digest);
        self.order.push_back(digest);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Program-digest → suspended schedule walk (as a serialized VRMSRES1
/// blob), bounded by an LRU cap.
///
/// Checkpoints are single-use: [`take`](CheckpointStore::take) removes
/// the entry, because resuming consumes the parked frontier. A walk
/// that is *still* truncated after resuming parks its new checkpoint
/// right back.
///
/// Parked frontiers are the daemon's only unbounded-in-the-input state:
/// a long-lived daemon fed a generated corpus (the fuzz suite replays
/// programs nobody will ever re-query) would otherwise grow the store
/// without limit. [`park`](CheckpointStore::park) therefore evicts the
/// least-recently-parked entry beyond [`CheckpointStore::DEFAULT_CAP`],
/// counting each eviction on `serve/checkpoint_evicted`. Eviction is
/// sound: losing a checkpoint only costs re-exploration, never a wrong
/// verdict.
#[derive(Debug)]
pub struct CheckpointStore {
    map: HashMap<u128, Vec<u8>>,
    /// Park order, least recently parked at the front. Re-parking a
    /// digest refreshes its position.
    order: VecDeque<u128>,
    cap: usize,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::with_cap(Self::DEFAULT_CAP)
    }
}

impl CheckpointStore {
    /// Production cap on parked walks. Each parked frontier can hold
    /// thousands of serialized states, so the store is bounded well
    /// below anything the verdict cache needs.
    pub const DEFAULT_CAP: usize = 256;

    /// A store that evicts least-recently-parked beyond `cap` entries.
    pub fn with_cap(cap: usize) -> CheckpointStore {
        CheckpointStore {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Removes and returns the parked walk for a program, if any.
    pub fn take(&mut self, program_digest: u128) -> Option<Vec<u8>> {
        let hit = self.map.remove(&program_digest);
        if hit.is_some() {
            self.order.retain(|d| *d != program_digest);
        }
        hit
    }

    /// Parks a suspended walk for a program, replacing any older (and
    /// necessarily smaller) one, and evicting the least-recently-parked
    /// entry if the store is over its cap.
    pub fn park(&mut self, program_digest: u128, blob: Vec<u8>) {
        if self.map.insert(program_digest, blob).is_some() {
            self.order.retain(|d| *d != program_digest);
        }
        self.order.push_back(program_digest);
        while self.map.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
            Counter::new(vrm_obs::serve::CHECKPOINT_EVICTED).add(1);
        }
    }

    /// Entries in least-recently-parked-first order, for compaction
    /// snapshots.
    pub fn iter_lru(&self) -> impl Iterator<Item = (u128, &Vec<u8>)> {
        self.order
            .iter()
            .filter_map(|d| self.map.get(d).map(|b| (*d, b)))
    }

    /// Number of parked walks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_explore::{Coverage, TruncationReason};
    use vrm_sekvm::machine::{ExhaustiveConfig, ScheduleResume};
    use vrm_sekvm::{KCoreConfig, Machine, Op, Script};

    /// A real parked walk's serialized image, produced the only way
    /// one can be: by starving a schedule exploration.
    fn parked_walk() -> Vec<u8> {
        let scripts: Vec<Script> = (0..2).map(|_| vec![Op::RegisterVm]).collect();
        let resume: ScheduleResume = Machine::explore_schedules(
            KCoreConfig::default(),
            scripts,
            &ExhaustiveConfig {
                max_states: 2,
                jobs: 1,
                ..ExhaustiveConfig::default()
            },
        )
        .expect("starved walk")
        .resume
        .expect("a starved walk parks a resume");
        resume.to_bytes().expect("own checkpoints serialize")
    }

    fn entry(verdict: Verdict) -> CacheEntry {
        CacheEntry {
            verdict,
            states: 10,
            wall_ns: 1,
            detail: String::new(),
        }
    }

    fn unknown() -> Verdict {
        Verdict::Unknown {
            coverage: Coverage {
                states: 10,
                frontier_len: 3,
                reason: TruncationReason::StateLimit,
            },
        }
    }

    #[test]
    fn cache_inserts_never_upgrade_a_verdict() {
        let mut c = VerdictCache::default();
        c.insert(7, entry(unknown()));
        c.insert(7, entry(Verdict::Pass));
        assert!(
            c.get(7).unwrap().verdict.is_unknown(),
            "a second insert must not upgrade Unknown to Pass"
        );
        c.insert(7, entry(Verdict::Fail));
        assert_eq!(c.get(7).unwrap().verdict, Verdict::Fail);
    }

    #[test]
    fn verdict_cache_evicts_least_recently_used() {
        let evicted = Counter::new(vrm_obs::serve::VERDICT_EVICTED);
        let before = evicted.get();
        let mut c = VerdictCache::with_cap(2);
        c.insert(1, entry(Verdict::Pass));
        c.insert(2, entry(Verdict::Pass));
        // A lookup refreshes recency: digest 1 becomes the most
        // recently used, so the over-cap insert evicts digest 2.
        assert!(matches!(c.lookup(1), Lookup::Hit(_)));
        c.insert(3, entry(Verdict::Pass));
        assert_eq!(c.len(), 2, "the cap must hold after an over-cap insert");
        assert!(c.get(2).is_none(), "the LRU entry must be the one evicted");
        assert!(c.get(1).is_some(), "a lookup must refresh recency");
        assert!(c.get(3).is_some());
        assert!(
            evicted.get() - before >= 1,
            "evictions must advance serve/verdict_evicted"
        );
    }

    #[test]
    fn stale_unknowns_expire_but_settled_verdicts_do_not() {
        let mut c = VerdictCache::with_policy(8, Some(Duration::from_millis(30)));
        c.insert(1, entry(unknown()));
        c.insert(2, entry(Verdict::Pass));
        assert!(
            matches!(c.lookup(1), Lookup::Hit(_)),
            "fresh Unknown serves"
        );
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            c.lookup(1),
            Lookup::Expired,
            "a stale Unknown must expire so the query re-explores"
        );
        assert_eq!(c.lookup(1), Lookup::Miss, "expiry drops the entry");
        assert!(
            matches!(c.lookup(2), Lookup::Hit(_)),
            "Pass/Fail are facts about the program, not a budget: no TTL"
        );
    }

    #[test]
    fn re_inserting_after_expiry_restarts_the_clock() {
        let mut c = VerdictCache::with_policy(8, Some(Duration::from_millis(25)));
        c.insert(1, entry(unknown()));
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(c.lookup(1), Lookup::Expired);
        c.insert(1, entry(unknown()));
        assert!(
            matches!(c.lookup(1), Lookup::Hit(_)),
            "the re-explored Unknown is fresh again"
        );
    }

    #[test]
    fn checkpoint_store_evicts_least_recently_parked() {
        let evicted = Counter::new(vrm_obs::serve::CHECKPOINT_EVICTED);
        let before = evicted.get();
        let mut s = CheckpointStore::with_cap(2);
        s.park(1, parked_walk());
        s.park(2, parked_walk());
        // Re-parking digest 1 must refresh its recency, so the next
        // eviction falls on digest 2 instead.
        s.park(1, parked_walk());
        s.park(3, parked_walk());
        assert_eq!(s.len(), 2, "the cap must hold after an over-cap park");
        assert!(
            s.take(2).is_none(),
            "the least-recently-parked entry must be the one evicted"
        );
        assert!(s.take(1).is_some(), "re-parking must refresh recency");
        assert!(s.take(3).is_some());
        assert!(s.is_empty());
        // Counters are process-global, so concurrent tests may also
        // bump this one: assert at-least, not exactly.
        assert!(
            evicted.get() - before >= 1,
            "evictions must advance serve/checkpoint_evicted"
        );
    }

    #[test]
    fn checkpoint_take_frees_capacity_without_evicting() {
        let mut s = CheckpointStore::with_cap(2);
        s.park(1, parked_walk());
        s.park(2, parked_walk());
        assert!(s.take(1).is_some());
        // The freed slot absorbs the next park: nothing is evicted and
        // both survivors stay retrievable.
        s.park(3, parked_walk());
        assert_eq!(s.len(), 2);
        assert!(
            s.take(2).is_some(),
            "taking must free a slot instead of forcing an eviction"
        );
        assert!(s.take(3).is_some());
    }

    #[test]
    fn checkpoint_default_store_carries_the_production_cap() {
        // SchedState builds its store via Default, so the production
        // bound must live there — an unbounded Default would silently
        // reopen the leak.
        let blob = parked_walk();
        let mut s = CheckpointStore::default();
        for digest in 0..(CheckpointStore::DEFAULT_CAP as u128 + 4) {
            s.park(digest, blob.clone());
        }
        assert_eq!(s.len(), CheckpointStore::DEFAULT_CAP);
        assert!(
            s.take(0).is_none(),
            "the oldest parks must have been evicted"
        );
        assert!(s.take(CheckpointStore::DEFAULT_CAP as u128 + 3).is_some());
    }

    #[test]
    fn lru_iteration_orders_by_recency() {
        let mut c = VerdictCache::with_cap(8);
        c.insert(1, entry(Verdict::Pass));
        c.insert(2, entry(Verdict::Pass));
        c.insert(3, entry(Verdict::Pass));
        assert!(matches!(c.lookup(1), Lookup::Hit(_)));
        let order: Vec<u128> = c.iter_lru().map(|(d, _)| d).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }
}
