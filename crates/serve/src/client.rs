//! A small blocking client for the daemon's line protocol, used by
//! the `serve` CLI, the bench load driver and the end-to-end tests.
//!
//! [`Client::request_with_retry`] is the resilient entry point: every
//! request in the protocol is **idempotent** — submits are keyed by
//! content digest, so resubmitting one the daemon already finished is
//! a cache hit, not duplicated work — which makes
//! reconnect-and-resend on *any* transport failure (a torn reply
//! frame, a dropped connection, a daemon mid-restart) safe. Retries
//! back off exponentially with deterministic jitter (splitmix64 of
//! the policy seed and attempt index, so chaos runs are
//! reproducible) and are counted on `serve/client_retries`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::protocol::{parse_reply, Reply};
use crate::server::Endpoint;

/// Reconnect-and-resubmit policy for [`Client::request_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).
    pub attempts: u32,
    /// First retry delay; doubles per attempt, plus jitter.
    pub base: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(50),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): exponential
    /// backoff with deterministic jitter in `[0, base)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let backoff = self.base * 2u32.saturating_pow(attempt);
        let base_ms = self.base.as_millis().max(1) as u64;
        let jitter = vrm_faults::splitmix64(self.seed ^ u64::from(attempt)) % base_ms;
        backoff + Duration::from_millis(jitter)
    }
}

enum Conn {
    Tcp(TcpStream, BufReader<TcpStream>),
    Unix(UnixStream, BufReader<UnixStream>),
}

/// One connection to a daemon; requests are serialized on it in
/// order (open several clients for concurrency).
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connects to a daemon endpoint.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Client> {
        let conn = match endpoint {
            Endpoint::Tcp(addr) => {
                let w = TcpStream::connect(addr.as_str())?;
                let r = BufReader::new(w.try_clone()?);
                Conn::Tcp(w, r)
            }
            Endpoint::Unix(path) => {
                let w = UnixStream::connect(path)?;
                let r = BufReader::new(w.try_clone()?);
                Conn::Unix(w, r)
            }
        };
        Ok(Client { conn })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        let w: &mut dyn Write = match &mut self.conn {
            Conn::Tcp(w, _) => w,
            Conn::Unix(w, _) => w,
        };
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    }

    fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = match &mut self.conn {
            Conn::Tcp(_, r) => r.read_line(&mut line)?,
            Conn::Unix(_, r) => r.read_line(&mut line)?,
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// Sends one request line and reads one response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<Reply> {
        self.send(line)?;
        let resp = self.recv_line()?;
        parse_reply(&resp).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// One request with reconnect-and-resubmit resilience: each
    /// attempt opens a fresh connection (a torn frame poisons the old
    /// stream's framing), and failures back off per `policy`. Safe
    /// because the protocol is idempotent: a resubmitted job the
    /// daemon already finished is answered from the verdict cache.
    pub fn request_with_retry(
        endpoint: &Endpoint,
        line: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<Reply> {
        let mut last_err = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                vrm_obs::Counter::new(vrm_obs::serve::CLIENT_RETRIES).add(1);
                std::thread::sleep(policy.delay(attempt - 1));
            }
            match Client::connect(endpoint).and_then(|mut c| c.request(line)) {
                Ok(reply) => return Ok(reply),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// Sends a `watch` request and reads status lines until the final
    /// (`done` or `error`) one, invoking `progress` on each
    /// intermediate line. Returns the final reply.
    pub fn watch(&mut self, job: u64, mut progress: impl FnMut(&Reply)) -> std::io::Result<Reply> {
        self.send(&format!("{{\"op\":\"watch\",\"job\":{job}}}"))?;
        loop {
            let line = self.recv_line()?;
            let reply = parse_reply(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            match reply.status.as_str() {
                "done" | "error" => return Ok(reply),
                _ => progress(&reply),
            }
        }
    }
}
