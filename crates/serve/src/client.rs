//! A small blocking client for the daemon's line protocol, used by
//! the `serve` CLI, the bench load driver and the end-to-end tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::protocol::{parse_reply, Reply};
use crate::server::Endpoint;

enum Conn {
    Tcp(TcpStream, BufReader<TcpStream>),
    Unix(UnixStream, BufReader<UnixStream>),
}

/// One connection to a daemon; requests are serialized on it in
/// order (open several clients for concurrency).
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connects to a daemon endpoint.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Client> {
        let conn = match endpoint {
            Endpoint::Tcp(addr) => {
                let w = TcpStream::connect(addr.as_str())?;
                let r = BufReader::new(w.try_clone()?);
                Conn::Tcp(w, r)
            }
            Endpoint::Unix(path) => {
                let w = UnixStream::connect(path)?;
                let r = BufReader::new(w.try_clone()?);
                Conn::Unix(w, r)
            }
        };
        Ok(Client { conn })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        let w: &mut dyn Write = match &mut self.conn {
            Conn::Tcp(w, _) => w,
            Conn::Unix(w, _) => w,
        };
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    }

    fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = match &mut self.conn {
            Conn::Tcp(_, r) => r.read_line(&mut line)?,
            Conn::Unix(_, r) => r.read_line(&mut line)?,
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// Sends one request line and reads one response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<Reply> {
        self.send(line)?;
        let resp = self.recv_line()?;
        parse_reply(&resp).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends a `watch` request and reads status lines until the final
    /// (`done` or `error`) one, invoking `progress` on each
    /// intermediate line. Returns the final reply.
    pub fn watch(&mut self, job: u64, mut progress: impl FnMut(&Reply)) -> std::io::Result<Reply> {
        self.send(&format!("{{\"op\":\"watch\",\"job\":{job}}}"))?;
        loop {
            let line = self.recv_line()?;
            let reply = parse_reply(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            match reply.status.as_str() {
                "done" | "error" => return Ok(reply),
                _ => progress(&reply),
            }
        }
    }
}
