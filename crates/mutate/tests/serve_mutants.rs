//! Fast regression guard for the serve-layer mutants: both must stay
//! Killed without running the full curated campaign.

use vrm_mutate::{curated, run, CampaignConfig};

#[test]
fn serve_mutants_killed() {
    let specs: Vec<_> = curated()
        .into_iter()
        .filter(|s| s.name.starts_with("serve-"))
        .collect();
    assert_eq!(specs.len(), 2, "expected 2 serve mutants");
    let report = run(&specs, &CampaignConfig::default());
    for r in &report.results {
        eprintln!("{}: {} — {}", r.name, r.status.as_str(), r.detail);
    }
    assert!(report.all_killed(), "serve mutants not all killed");
}
