//! Fast regression guard for the serve-layer mutants: all must stay
//! Killed without running the full curated campaign.

use vrm_mutate::{curated, run, CampaignConfig};

#[test]
fn serve_mutants_killed() {
    if std::env::var_os("VRM_FAULT_SEED").is_some() {
        // An injected WorkerKill voids the supervisor timing oracle.
        return;
    }
    let specs: Vec<_> = curated()
        .into_iter()
        .filter(|s| s.name.starts_with("serve-"))
        .collect();
    assert_eq!(specs.len(), 4, "expected 4 serve mutants");
    let report = run(&specs, &CampaignConfig::default());
    for r in &report.results {
        eprintln!("{}: {} — {}", r.name, r.status.as_str(), r.detail);
    }
    assert!(report.all_killed(), "serve mutants not all killed");
}
