//! Syntactic mutation operators over the memory-model IR.
//!
//! Each operator injects one classic relaxed-memory bug into a
//! [`Program`]: deleting or demoting a fence, downgrading an
//! acquire/release access to a plain one, severing an address or control
//! dependency, or splitting an atomic into a non-atomic load + store.
//! [`find_sites`] enumerates every applicable `(operator, thread, pc)`
//! site; [`apply`] produces the mutated program. All operators other than
//! the atomicity weakenings are *SC-neutral*: they change only ordering,
//! never sequential semantics, so a verdict flip under the relaxed models
//! is attributable to the injected reordering alone.

use vrm_memmodel::ir::{BinOp, Cond, Expr, Fence, Inst, Program, Reg, RmwOp};

/// One kind of injected relaxed-memory bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutationKind {
    /// Replace a fence with `nop`.
    DeleteFence,
    /// Demote `dmb sy` to `dmb ld` (loses store→store/store→load order).
    DemoteFence,
    /// Clear the acquire flag on a load / load-exclusive / RMW.
    DropAcquire,
    /// Clear the release flag on a store / store-exclusive / RMW.
    DropRelease,
    /// Replace a register-insensitive address expression (the
    /// `base + r * 0` artificial-dependency idiom) with its constant.
    DropAddrDep,
    /// Replace a never-taken branch (`bne rA rA`) with `nop`.
    DropCtrlDep,
    /// Split an atomic RMW into a plain load followed by a plain store.
    WeakenRmw,
    /// Make a store-exclusive unconditional (status := 0, plain store),
    /// severing it from its load-exclusive's monitor.
    WeakenExclusive,
}

impl MutationKind {
    /// Short kebab-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MutationKind::DeleteFence => "delete-fence",
            MutationKind::DemoteFence => "demote-fence",
            MutationKind::DropAcquire => "drop-acquire",
            MutationKind::DropRelease => "drop-release",
            MutationKind::DropAddrDep => "drop-addr-dep",
            MutationKind::DropCtrlDep => "drop-ctrl-dep",
            MutationKind::WeakenRmw => "weaken-rmw",
            MutationKind::WeakenExclusive => "weaken-exclusive",
        }
    }
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One applicable mutation site in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutation {
    /// Which operator.
    pub kind: MutationKind,
    /// Thread index.
    pub tid: usize,
    /// Instruction index within the thread.
    pub pc: usize,
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at T{}@{}", self.kind, self.tid, self.pc)
    }
}

/// Evaluates an expression under a register assignment.
fn eval(e: &Expr, rf: &impl Fn(Reg) -> u64) -> u64 {
    match e {
        Expr::Imm(v) => *v,
        Expr::Reg(r) => rf(*r),
        Expr::Bin(op, l, r) => {
            let a = eval(l, rf);
            let b = eval(r, rf);
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32),
                BinOp::Shr => a.wrapping_shr(b as u32),
                BinOp::Eq => (a == b) as u64,
                BinOp::Ne => (a != b) as u64,
                BinOp::Lt => (a < b) as u64,
            }
        }
    }
}

/// If `e` mentions registers but always evaluates to the same constant
/// (the artificial-dependency idiom `base + r * 0`), returns that
/// constant.
fn insensitive_const(e: &Expr) -> Option<u64> {
    if e.regs().is_empty() {
        return None; // no dependency to sever
    }
    let probes: [&dyn Fn(Reg) -> u64; 3] = [&|_| 0, &|_| 1, &|r: Reg| u64::from(r.0) * 13 + 5];
    let v0 = eval(e, &probes[0]);
    probes[1..].iter().all(|p| eval(e, p) == v0).then_some(v0)
}

/// `true` for `bne rA rA`-style never-taken branches (the pure
/// control-dependency idiom).
fn never_taken(cond: &Cond, lhs: &Expr, rhs: &Expr) -> bool {
    matches!(cond, Cond::Ne) && matches!((lhs, rhs), (Expr::Reg(a), Expr::Reg(b)) if a == b)
}

/// Enumerates every applicable mutation site in `prog`, in `(tid, pc)`
/// order (several operators may share a site).
pub fn find_sites(prog: &Program) -> Vec<Mutation> {
    let mut out = Vec::new();
    for (tid, t) in prog.threads.iter().enumerate() {
        for (pc, inst) in t.code.iter().enumerate() {
            let mut push = |kind| out.push(Mutation { kind, tid, pc });
            match inst {
                Inst::Fence(f) => {
                    push(MutationKind::DeleteFence);
                    if matches!(f, Fence::Sy) {
                        push(MutationKind::DemoteFence);
                    }
                }
                Inst::Load { addr, acq, .. } | Inst::LoadEx { addr, acq, .. } => {
                    if *acq {
                        push(MutationKind::DropAcquire);
                    }
                    if insensitive_const(addr).is_some() {
                        push(MutationKind::DropAddrDep);
                    }
                }
                Inst::LoadVirt { va, acq, .. } => {
                    if *acq {
                        push(MutationKind::DropAcquire);
                    }
                    if insensitive_const(va).is_some() {
                        push(MutationKind::DropAddrDep);
                    }
                }
                Inst::Store { addr, rel, .. } => {
                    if *rel {
                        push(MutationKind::DropRelease);
                    }
                    if insensitive_const(addr).is_some() {
                        push(MutationKind::DropAddrDep);
                    }
                }
                Inst::StoreVirt { va, rel, .. } => {
                    if *rel {
                        push(MutationKind::DropRelease);
                    }
                    if insensitive_const(va).is_some() {
                        push(MutationKind::DropAddrDep);
                    }
                }
                Inst::StoreEx { addr, rel, .. } => {
                    if *rel {
                        push(MutationKind::DropRelease);
                    }
                    if insensitive_const(addr).is_some() {
                        push(MutationKind::DropAddrDep);
                    }
                    push(MutationKind::WeakenExclusive);
                }
                Inst::Rmw { addr, acq, rel, .. } => {
                    if *acq {
                        push(MutationKind::DropAcquire);
                    }
                    if *rel {
                        push(MutationKind::DropRelease);
                    }
                    if insensitive_const(addr).is_some() {
                        push(MutationKind::DropAddrDep);
                    }
                    push(MutationKind::WeakenRmw);
                }
                Inst::Br { cond, lhs, rhs, .. } if never_taken(cond, lhs, rhs) => {
                    push(MutationKind::DropCtrlDep);
                }
                _ => {}
            }
        }
    }
    out
}

/// Shifts branch targets after an instruction was inserted at `pc + 1`.
fn shift_targets(code: &mut [Inst], pc: usize) {
    for inst in code.iter_mut() {
        match inst {
            Inst::Br { target, .. } | Inst::Jmp(target) if *target > pc => {
                *target += 1;
            }
            _ => {}
        }
    }
}

/// The value an RMW writes back, as a plain expression over the loaded
/// old value (`dst`) and the right-hand side.
fn rmw_writeback(op: RmwOp, dst: Reg, rhs: &Expr) -> Expr {
    match op {
        RmwOp::Add => Expr::bin(BinOp::Add, Expr::Reg(dst), rhs.clone()),
        RmwOp::Swap => rhs.clone(),
        RmwOp::And => Expr::bin(BinOp::And, Expr::Reg(dst), rhs.clone()),
        RmwOp::Or => Expr::bin(BinOp::Or, Expr::Reg(dst), rhs.clone()),
    }
}

/// Applies `m` to a copy of `prog`, or `None` if the site no longer
/// matches (wrong instruction kind at `(tid, pc)`).
pub fn apply(prog: &Program, m: &Mutation) -> Option<Program> {
    let mut out = prog.clone();
    out.name = format!("{}~{m}", prog.name);
    let code = &mut out.threads.get_mut(m.tid)?.code;
    let inst = code.get(m.pc)?.clone();
    match (m.kind, inst) {
        (MutationKind::DeleteFence, Inst::Fence(_)) => code[m.pc] = Inst::Nop,
        (MutationKind::DemoteFence, Inst::Fence(Fence::Sy)) => {
            code[m.pc] = Inst::Fence(Fence::Ld);
        }
        (
            MutationKind::DropAcquire,
            Inst::Load {
                dst,
                addr,
                acq: true,
            },
        ) => {
            code[m.pc] = Inst::Load {
                dst,
                addr,
                acq: false,
            };
        }
        (
            MutationKind::DropAcquire,
            Inst::LoadEx {
                dst,
                addr,
                acq: true,
            },
        ) => {
            code[m.pc] = Inst::LoadEx {
                dst,
                addr,
                acq: false,
            };
        }
        (MutationKind::DropAcquire, Inst::LoadVirt { dst, va, acq: true }) => {
            code[m.pc] = Inst::LoadVirt {
                dst,
                va,
                acq: false,
            };
        }
        (
            MutationKind::DropAcquire,
            Inst::Rmw {
                dst,
                addr,
                op,
                rhs,
                acq: true,
                rel,
            },
        ) => {
            code[m.pc] = Inst::Rmw {
                dst,
                addr,
                op,
                rhs,
                acq: false,
                rel,
            };
        }
        (
            MutationKind::DropRelease,
            Inst::Store {
                val,
                addr,
                rel: true,
            },
        ) => {
            code[m.pc] = Inst::Store {
                val,
                addr,
                rel: false,
            };
        }
        (
            MutationKind::DropRelease,
            Inst::StoreEx {
                status,
                val,
                addr,
                rel: true,
            },
        ) => {
            code[m.pc] = Inst::StoreEx {
                status,
                val,
                addr,
                rel: false,
            };
        }
        (MutationKind::DropRelease, Inst::StoreVirt { val, va, rel: true }) => {
            code[m.pc] = Inst::StoreVirt {
                val,
                va,
                rel: false,
            };
        }
        (
            MutationKind::DropRelease,
            Inst::Rmw {
                dst,
                addr,
                op,
                rhs,
                acq,
                rel: true,
            },
        ) => {
            code[m.pc] = Inst::Rmw {
                dst,
                addr,
                op,
                rhs,
                acq,
                rel: false,
            };
        }
        (MutationKind::DropAddrDep, Inst::Load { dst, addr, acq }) => {
            code[m.pc] = Inst::Load {
                dst,
                addr: Expr::Imm(insensitive_const(&addr)?),
                acq,
            };
        }
        (MutationKind::DropAddrDep, Inst::LoadEx { dst, addr, acq }) => {
            code[m.pc] = Inst::LoadEx {
                dst,
                addr: Expr::Imm(insensitive_const(&addr)?),
                acq,
            };
        }
        (MutationKind::DropAddrDep, Inst::LoadVirt { dst, va, acq }) => {
            code[m.pc] = Inst::LoadVirt {
                dst,
                va: Expr::Imm(insensitive_const(&va)?),
                acq,
            };
        }
        (MutationKind::DropAddrDep, Inst::Store { val, addr, rel }) => {
            code[m.pc] = Inst::Store {
                val,
                addr: Expr::Imm(insensitive_const(&addr)?),
                rel,
            };
        }
        (MutationKind::DropAddrDep, Inst::StoreVirt { val, va, rel }) => {
            code[m.pc] = Inst::StoreVirt {
                val,
                va: Expr::Imm(insensitive_const(&va)?),
                rel,
            };
        }
        (MutationKind::DropCtrlDep, Inst::Br { cond, lhs, rhs, .. })
            if never_taken(&cond, &lhs, &rhs) =>
        {
            code[m.pc] = Inst::Nop;
        }
        (
            MutationKind::WeakenRmw,
            Inst::Rmw {
                dst, addr, op, rhs, ..
            },
        ) => {
            code[m.pc] = Inst::Load {
                dst,
                addr: addr.clone(),
                acq: false,
            };
            let wb = rmw_writeback(op, dst, &rhs);
            code.insert(
                m.pc + 1,
                Inst::Store {
                    val: wb,
                    addr,
                    rel: false,
                },
            );
            shift_targets(code, m.pc);
        }
        (
            MutationKind::WeakenExclusive,
            Inst::StoreEx {
                status,
                val,
                addr,
                rel,
            },
        ) => {
            // Always "succeeds": status := 0, then an unconditional store
            // that ignores the exclusive monitor entirely.
            code[m.pc] = Inst::Mov {
                dst: status,
                src: Expr::Imm(0),
            };
            code.insert(m.pc + 1, Inst::Store { val, addr, rel });
            shift_targets(code, m.pc);
        }
        _ => return None,
    }
    Some(out)
}

/// Convenience: the first site in `prog` matching `kind` (and `tid` when
/// given).
pub fn site(prog: &Program, kind: MutationKind, tid: Option<usize>) -> Option<Mutation> {
    find_sites(prog)
        .into_iter()
        .find(|m| m.kind == kind && tid.is_none_or(|t| m.tid == t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrm_memmodel::builder::ProgramBuilder;
    use vrm_memmodel::sc::enumerate_sc;

    fn mp_rel_acq() -> Program {
        let mut p = ProgramBuilder::new("mp");
        p.thread("T0", |t| {
            t.store(0x10u64, 1u64, false);
            t.store(0x20u64, 1u64, true);
        });
        p.thread("T1", |t| {
            t.load(Reg(0), 0x20u64, true);
            t.load(Reg(1), 0x10u64, false);
        });
        p.observe_reg("f", 1, Reg(0));
        p.observe_reg("d", 1, Reg(1));
        p.build()
    }

    #[test]
    fn sites_cover_acquire_and_release() {
        let prog = mp_rel_acq();
        let sites = find_sites(&prog);
        assert!(sites
            .iter()
            .any(|m| m.kind == MutationKind::DropRelease && m.tid == 0 && m.pc == 1));
        assert!(sites
            .iter()
            .any(|m| m.kind == MutationKind::DropAcquire && m.tid == 1 && m.pc == 0));
    }

    #[test]
    fn drop_release_is_sc_neutral() {
        let prog = mp_rel_acq();
        let m = site(&prog, MutationKind::DropRelease, Some(0)).unwrap();
        let mutated = apply(&prog, &m).unwrap();
        assert_eq!(
            enumerate_sc(&prog).unwrap(),
            enumerate_sc(&mutated).unwrap()
        );
    }

    #[test]
    fn weaken_rmw_splits_and_patches_targets() {
        let mut p = ProgramBuilder::new("t");
        p.thread("T0", |t| {
            t.rmw(Reg(0), 0x10u64, RmwOp::Add, 1u64, true, false);
            t.label("end");
            t.jmp("end"); // target 1, after the rmw: must shift to 2
        });
        let prog = p.build();
        let m = site(&prog, MutationKind::WeakenRmw, Some(0)).unwrap();
        let mutated = apply(&prog, &m).unwrap();
        let code = &mutated.threads[0].code;
        assert!(matches!(code[0], Inst::Load { acq: false, .. }));
        assert!(matches!(code[1], Inst::Store { .. }));
        assert!(matches!(code[2], Inst::Jmp(2)));
    }

    #[test]
    fn addr_dep_idiom_detected_and_dropped() {
        let dep = Expr::bin(
            BinOp::Add,
            Expr::Imm(0x10),
            Expr::bin(BinOp::Mul, Expr::Reg(Reg(0)), Expr::Imm(0)),
        );
        assert_eq!(insensitive_const(&dep), Some(0x10));
        // A real dependency is left alone.
        let real = Expr::bin(BinOp::Add, Expr::Imm(0x10), Expr::Reg(Reg(0)));
        assert_eq!(insensitive_const(&real), None);
        // Pure constants have no dependency to drop.
        assert_eq!(insensitive_const(&Expr::Imm(0x10)), None);
    }

    #[test]
    fn stale_site_returns_none() {
        let prog = mp_rel_acq();
        let bogus = Mutation {
            kind: MutationKind::DeleteFence,
            tid: 0,
            pc: 0,
        };
        assert!(apply(&prog, &bogus).is_none());
    }
}
