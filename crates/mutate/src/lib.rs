//! # vrm-mutate — mutation testing for the wDRF verification stack
//!
//! The paper's argument only matters if the checkers would actually
//! notice a relaxed-memory bug. This crate injects such bugs on purpose,
//! at every layer of the stack, and runs each **mutant** through the
//! oracle that is supposed to reject it:
//!
//! | layer   | mutation operators                          | kill oracle |
//! |---------|---------------------------------------------|-------------|
//! | litmus  | delete/demote fence, drop acquire/release, drop addr/ctrl dependency, weaken RMW/exclusives | three-model conformance verdict flip |
//! | kernel  | the same operators on paper examples and the Figure 7 ticket lock | `check_wdrf` / `check_pushpull` failure |
//! | machine | `KCoreConfig` switches (skip TLBI, reorder barrier, skip lock, …) | `validate_log` over all schedules, `check_invariants`, confidentiality read-back |
//! | engine  | guard-stripped degradation rules (ignore truncation, last-stage-wins merge, Unknown exits 0) | disagreement with the sound engine on a budget-starved check |
//! | serve   | `ServeConfig` switches (config-blind cache key, checkpoint-dropping escalation) | behavioural divergence from the sound daemon on the same queries |
//! | gen     | `GenConfig` switches (cycle-free generator, recheck-free shrinker) | the differential-fuzz pipeline losing its relaxed-behaviour signal |
//!
//! [`ir`] holds the program-level mutation engine (site discovery and
//! application), [`campaign`] the curated mutant set and driver, and
//! [`report`] the human table / JSON renderers. The `mutate` binary in
//! `crates/bench` fronts all of it; `tests/mutation_campaign.rs` pins
//! the curated set to a 100% kill rate.

#![warn(missing_docs)]

pub mod campaign;
pub mod ir;
pub mod report;

pub use campaign::{
    curated, run, CampaignConfig, CampaignReport, DegradationVariant, GenVariant, Layer,
    MutantResult, MutantSpec, Oracle, ServeVariant, Status,
};
pub use ir::{apply, find_sites, site, Mutation, MutationKind};
pub use report::{not_killed, to_json, to_table};
