//! Rendering a [`CampaignReport`] for humans (aligned table) and for
//! machines (JSON, hand-rolled — the workspace carries no serde).

use vrm_explore::ExploreStats;

use crate::campaign::{CampaignReport, MutantResult, Status};

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_stats(s: &ExploreStats) -> String {
    format!(
        "{{\"states\":{},\"frontier_peak\":{},\"dedup_hits\":{},\"wall_ns\":{},\"jobs\":{}}}",
        s.states, s.frontier_peak, s.dedup_hits, s.wall_ns, s.jobs
    )
}

fn json_mutant(r: &MutantResult) -> String {
    format!(
        "{{\"name\":\"{}\",\"layer\":\"{}\",\"oracle\":\"{}\",\"mutation\":\"{}\",\
         \"status\":\"{}\",\"detail\":\"{}\",\"stats\":{}}}",
        json_escape(&r.name),
        r.layer.as_str(),
        r.oracle.as_str(),
        json_escape(&r.mutation),
        r.status.as_str(),
        json_escape(&r.detail),
        json_stats(&r.stats)
    )
}

/// The full campaign as a JSON document: summary counters, aggregate
/// exploration stats, and one entry per mutant (name, layer, killing
/// oracle, injected mutation, status, detail, per-mutant stats).
pub fn to_json(report: &CampaignReport) -> String {
    let mutants: Vec<String> = report.results.iter().map(json_mutant).collect();
    format!(
        "{{\n  \"total\": {},\n  \"killed\": {},\n  \"survived\": {},\n  \"timeout\": {},\n  \
         \"unknown\": {},\n  \
         \"kill_rate\": {:.4},\n  \"stats\": {},\n  \"mutants\": [\n    {}\n  ]\n}}\n",
        report.results.len(),
        report.killed(),
        report.survived(),
        report.timeouts(),
        report.unknowns(),
        report.kill_rate(),
        json_stats(&report.stats),
        mutants.join(",\n    ")
    )
}

/// The campaign as an aligned human-readable table plus a summary line.
pub fn to_table(report: &CampaignReport) -> String {
    let name_w = report
        .results
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let oracle_w = report
        .results
        .iter()
        .map(|r| r.oracle.as_str().len())
        .max()
        .unwrap_or(6)
        .max(6);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:<7}  {:<oracle_w$}  {:<8}  {:>9}  {:>8}\n",
        "name", "layer", "oracle", "status", "states", "ms"
    ));
    out.push_str(&format!(
        "{:-<name_w$}  {:-<7}  {:-<oracle_w$}  {:-<8}  {:->9}  {:->8}\n",
        "", "", "", "", "", ""
    ));
    for r in &report.results {
        out.push_str(&format!(
            "{:<name_w$}  {:<7}  {:<oracle_w$}  {:<8}  {:>9}  {:>8.1}\n",
            r.name,
            r.layer.as_str(),
            r.oracle.as_str(),
            r.status.as_str(),
            r.stats.states,
            r.stats.wall_ns as f64 / 1e6,
        ));
    }
    out.push_str(&format!(
        "\n{} mutants: {} killed, {} survived, {} timeout, {} unknown — kill rate {:.1}% \
         ({} states explored, {:.1} ms total)\n",
        report.results.len(),
        report.killed(),
        report.survived(),
        report.timeouts(),
        report.unknowns(),
        report.kill_rate() * 100.0,
        report.stats.states,
        report.stats.wall_ns as f64 / 1e6,
    ));
    out
}

/// Mutants that were not killed, for failure diagnostics.
pub fn not_killed(report: &CampaignReport) -> Vec<&MutantResult> {
    report
        .results
        .iter()
        .filter(|r| r.status != Status::Killed)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_report_renders() {
        let report = CampaignReport {
            results: Vec::new(),
            stats: ExploreStats::default(),
        };
        let j = to_json(&report);
        assert!(j.contains("\"total\": 0"));
        assert!(j.contains("\"kill_rate\": 1.0000"));
        assert!(to_table(&report).contains("0 mutants"));
    }
}
